//! Seeded, composable fault injection for acquisition-side failures.
//!
//! The segmentation pipeline already faces the *scene-side* artefacts of
//! the paper (lighting noise, clutter spots, camouflage holes, shadows)
//! via [`crate::scene::NoiseConfig`]. This module covers what the paper
//! silently assumes away: the **camera and transport** can fail too.
//! A [`FaultInjector`] perturbs a finished [`Video`] with the failure
//! modes of cheap playground footage:
//!
//! * **Dropped frames** — the recorder missed a frame; downstream sees
//!   the previous frame again (a freeze), so motion stalls.
//! * **Duplicated frames** — the recorder stuttered and delivered a
//!   frame twice, shifting the rest of the clip late (the tail is
//!   truncated to preserve clip length).
//! * **Illumination flicker** — per-frame global brightness swings well
//!   beyond the scene's own flicker (auto-exposure hunting).
//! * **Sensor-noise bursts** — windows of frames with heavy per-pixel
//!   channel noise (gain spikes, compression glitches).
//! * **Camera jitter** — per-frame integer translation with edge
//!   replication (a shaky hand on a "fixed" camera).
//! * **Horizontal motion blur** — a box filter along x with seeded
//!   per-frame strength (a rolling pan or a too-slow shutter tracking
//!   the jump direction smears the subject into the background).
//! * **Occlusion bars** — static vertical poles between camera and
//!   scene that cut the silhouette into pieces.
//!
//! Faults compose in acquisition order: transport (drop/duplicate),
//! scene occluders, camera pose (jitter), optics (motion blur),
//! illumination (flicker), and sensor noise last. Every fault family draws from its **own**
//! seed-derived per-frame stream, so enabling one fault never changes
//! the realisation of another — configurations compose without
//! cross-talk, and the same [`FaultConfig`] (same seed included) always
//! produces the bitwise-identical video.

use crate::video::{Frame, Video};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use slj_imgproc::image::ImageBuffer;
use slj_imgproc::noise::{add_channel_jitter, apply_global_flicker};
use slj_imgproc::pixel::Rgb;

/// Domain-separation tags: one stream per fault family.
mod tag {
    pub const TRANSPORT: u64 = 0x7261_6e73_706f_7274;
    pub const OCCLUSION: u64 = 0x6f63_636c_7564_6572;
    pub const JITTER: u64 = 0x6a69_7474_6572_6a6a;
    pub const BLUR: u64 = 0x6d6f_7469_6f6e_626c;
    pub const FLICKER: u64 = 0x666c_6963_6b65_7266;
    pub const NOISE: u64 = 0x6e6f_6973_6562_7273;
}

/// A window of frames with heavy sensor noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoiseBurst {
    /// Number of burst windows, placed by the seed.
    pub count: usize,
    /// Length of each window, frames.
    pub len: usize,
    /// Per-channel uniform jitter amplitude inside a window (intensity
    /// levels, 0–255).
    pub amplitude: u8,
}

/// What to inject. The default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for every fault stream; same config + seed → same output.
    pub seed: u64,
    /// Per-frame probability that the recorder drops the frame
    /// (frame 0 is never dropped — the clip needs an anchor).
    pub drop_prob: f64,
    /// Per-frame probability that the recorder delivers the frame
    /// twice.
    pub duplicate_prob: f64,
    /// Auto-exposure flicker amplitude: each frame's brightness is
    /// scaled by a factor from `[1 - flicker, 1 + flicker]`.
    pub flicker: f64,
    /// Sensor-noise bursts, if any.
    pub burst: Option<NoiseBurst>,
    /// Maximum camera shake per frame, pixels (translation drawn
    /// uniformly from `[-jitter_px, jitter_px]` per axis).
    pub jitter_px: usize,
    /// Maximum horizontal motion-blur radius, pixels: each frame is
    /// box-filtered along x with a radius drawn uniformly from
    /// `[0, blur_px]` (0 disables the config; a per-frame draw of 0
    /// leaves that frame sharp). Blur severity in real footage tracks
    /// the subject's apparent speed, so sharp frames interleaved with
    /// heavily smeared ones are the expected realisation. The window is
    /// `2 × radius + 1` pixels wide, so large radii smear the narrow
    /// body into the background.
    pub blur_px: usize,
    /// Number of static occlusion bars (vertical poles).
    pub occlusion_bars: usize,
    /// Width of each occlusion bar, pixels. 0 picks the default
    /// (frame width / 40, at least 2) — a thin pole the tracker sees
    /// through. Widths at or above the subject's apparent width hide
    /// the subject completely while it passes behind the bar, which is
    /// the classic transient-dropout scenario for gap recovery.
    pub bar_width_px: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA_017,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            flicker: 0.0,
            burst: None,
            jitter_px: 0,
            blur_px: 0,
            occlusion_bars: 0,
            bar_width_px: 0,
        }
    }
}

/// A malformed `--inject-faults` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    msg: String,
}

impl FaultSpecError {
    fn new(msg: impl Into<String>) -> Self {
        FaultSpecError { msg: msg.into() }
    }
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.msg)
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultConfig {
    /// Whether this configuration changes anything at all.
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.flicker <= 0.0
            && self
                .burst
                .is_none_or(|b| b.count == 0 || b.len == 0 || b.amplitude == 0)
            && self.jitter_px == 0
            && self.blur_px == 0
            && self.occlusion_bars == 0
    }

    /// Parses a compact comma-separated spec, e.g.
    /// `drop=0.1,dup=0.05,flicker=0.08,burst=2:3:40,jitter=2,bars=1,seed=7`.
    ///
    /// Keys: `drop` and `dup` (probabilities in `[0, 1]`), `flicker`
    /// (amplitude ≥ 0), `burst=count:len:amplitude`, `jitter` (pixels),
    /// `blur` (max horizontal motion-blur radius, pixels), `bars`
    /// (count), `barw` (bar width in pixels, 0 = default), `seed`.
    /// Unknown keys and out-of-range values are errors; omitted keys
    /// keep their no-fault defaults.
    pub fn parse(spec: &str) -> Result<FaultConfig, FaultSpecError> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError::new(format!("`{part}` is not key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "drop" => cfg.drop_prob = parse_prob(key, value)?,
                "dup" => cfg.duplicate_prob = parse_prob(key, value)?,
                "flicker" => {
                    let f: f64 = parse_num(key, value)?;
                    if !(0.0..=1.0).contains(&f) {
                        return Err(FaultSpecError::new(format!(
                            "flicker must be in [0, 1], got {f}"
                        )));
                    }
                    cfg.flicker = f;
                }
                "burst" => {
                    let mut it = value.split(':');
                    let (c, l, a) = (it.next(), it.next(), it.next());
                    if it.next().is_some() {
                        return Err(FaultSpecError::new(format!(
                            "burst takes count:len:amplitude, got `{value}`"
                        )));
                    }
                    match (c, l, a) {
                        (Some(c), Some(l), Some(a)) => {
                            cfg.burst = Some(NoiseBurst {
                                count: parse_num(key, c)?,
                                len: parse_num(key, l)?,
                                amplitude: parse_num(key, a)?,
                            });
                        }
                        _ => {
                            return Err(FaultSpecError::new(format!(
                                "burst takes count:len:amplitude, got `{value}`"
                            )))
                        }
                    }
                }
                "jitter" => cfg.jitter_px = parse_num(key, value)?,
                "blur" => cfg.blur_px = parse_num(key, value)?,
                "bars" => cfg.occlusion_bars = parse_num(key, value)?,
                "barw" => cfg.bar_width_px = parse_num(key, value)?,
                "seed" => cfg.seed = parse_num(key, value)?,
                other => {
                    return Err(FaultSpecError::new(format!(
                        "unknown key `{other}` (expected drop, dup, flicker, burst, jitter, blur, bars, barw, seed)"
                    )))
                }
            }
        }
        Ok(cfg)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, FaultSpecError> {
    value
        .parse()
        .map_err(|_| FaultSpecError::new(format!("`{key}` value `{value}` does not parse")))
}

fn parse_prob(key: &str, value: &str) -> Result<f64, FaultSpecError> {
    let p: f64 = parse_num(key, value)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultSpecError::new(format!(
            "`{key}` must be a probability in [0, 1], got {p}"
        )));
    }
    Ok(p)
}

/// One fault applied to one output frame, for the injection report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FrameFault {
    /// The source frame was lost in transport; this frame repeats an
    /// earlier one (a freeze).
    Frozen {
        /// The input frame shown instead.
        source: usize,
    },
    /// This frame is a transport stutter: the same input frame as its
    /// predecessor.
    Duplicated {
        /// The input frame delivered twice.
        source: usize,
    },
    /// Global brightness was scaled by this factor.
    Flicker {
        /// The multiplier applied (1.0 = unchanged).
        factor: f64,
    },
    /// Heavy sensor noise of this amplitude was added.
    NoiseBurst {
        /// Per-channel jitter amplitude, intensity levels.
        amplitude: u8,
    },
    /// The camera shook: the frame content moved by this translation.
    CameraJitter {
        /// Pixels right (negative = left).
        dx: i32,
        /// Pixels down (negative = up).
        dy: i32,
    },
    /// Horizontal motion blur: a box filter along x of this radius
    /// (window `2 × radius + 1` pixels).
    MotionBlur {
        /// Blur radius, pixels.
        radius: usize,
    },
    /// One or more occlusion bars overlap this frame (bars are static,
    /// so this marks every frame when bars are configured).
    Occluded,
}

/// What the injector actually did, frame by frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionReport {
    /// Input frame indices that were lost in transport.
    pub dropped_inputs: Vec<usize>,
    /// Input frame indices the tail truncation cut after stutters.
    pub truncated_inputs: Vec<usize>,
    /// Faults applied to each output frame (same length as the output
    /// video).
    pub frame_faults: Vec<Vec<FrameFault>>,
}

impl InjectionReport {
    /// Output frames with at least one fault recorded.
    pub fn faulty_frames(&self) -> usize {
        self.frame_faults.iter().filter(|f| !f.is_empty()).count()
    }
}

/// Applies a [`FaultConfig`] to videos. Stateless; every call with the
/// same config and input produces the same output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    config: FaultConfig,
}

impl FaultInjector {
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector { config }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Perturbs a video. The output has the same frame count, frame
    /// dimensions and fps as the input. Returns the perturbed video and
    /// a per-frame report of what was injected.
    pub fn inject(&self, video: &Video) -> (Video, InjectionReport) {
        let n = video.len();
        if n == 0 {
            return (
                video.clone(),
                InjectionReport {
                    dropped_inputs: Vec::new(),
                    truncated_inputs: Vec::new(),
                    frame_faults: Vec::new(),
                },
            );
        }
        let cfg = &self.config;

        // --- Transport: map each output slot to a source input frame.
        let mut sources: Vec<usize> = Vec::with_capacity(n);
        let mut faults: Vec<Vec<FrameFault>> = Vec::with_capacity(n);
        let mut dropped_inputs = Vec::new();
        let mut last_delivered = 0usize;
        let mut k = 0usize;
        while sources.len() < n && k < n {
            let mut rng = self.stream(tag::TRANSPORT, k);
            let dropped = k > 0 && cfg.drop_prob > 0.0 && rng.gen_bool(cfg.drop_prob);
            let duplicated = cfg.duplicate_prob > 0.0 && rng.gen_bool(cfg.duplicate_prob);
            if dropped {
                dropped_inputs.push(k);
                sources.push(last_delivered);
                faults.push(vec![FrameFault::Frozen {
                    source: last_delivered,
                }]);
            } else {
                last_delivered = k;
                sources.push(k);
                faults.push(Vec::new());
                if duplicated && sources.len() < n {
                    sources.push(k);
                    faults.push(vec![FrameFault::Duplicated { source: k }]);
                }
            }
            k += 1;
        }
        // Stutters shift the clip late; inputs past `k` never made it
        // into the output. Drops can also leave the list short — pad
        // with freezes.
        let truncated_inputs: Vec<usize> = (k..n).collect();
        while sources.len() < n {
            sources.push(last_delivered);
            faults.push(vec![FrameFault::Frozen {
                source: last_delivered,
            }]);
        }

        // --- Scene occluders: static bars, placed once per clip.
        let (w, h) = video.dims();
        let bars = self.make_bars(w);

        // --- Burst windows, placed once per clip.
        let burst_frames = self.burst_window_membership(n);

        let mut out_frames: Vec<Frame> = Vec::with_capacity(n);
        for (j, &src) in sources.iter().enumerate() {
            let mut frame = video.frames()[src].clone();

            if !bars.is_empty() {
                for &(x0, bw, color) in &bars {
                    draw_bar(&mut frame, x0, bw, color);
                }
                faults[j].push(FrameFault::Occluded);
            }

            if cfg.jitter_px > 0 {
                let mut rng = self.stream(tag::JITTER, j);
                let a = cfg.jitter_px as i32;
                let dx = rng.gen_range(-a..=a);
                let dy = rng.gen_range(-a..=a);
                if dx != 0 || dy != 0 {
                    frame = translate_replicate(&frame, dx, dy);
                    faults[j].push(FrameFault::CameraJitter { dx, dy });
                }
            }

            if cfg.blur_px > 0 {
                let mut rng = self.stream(tag::BLUR, j);
                let radius = rng.gen_range(0..=cfg.blur_px);
                if radius > 0 {
                    frame = motion_blur_x(&frame, radius);
                    faults[j].push(FrameFault::MotionBlur { radius });
                }
            }

            if cfg.flicker > 0.0 {
                let mut rng = self.stream(tag::FLICKER, j);
                let factor = apply_global_flicker(&mut frame, cfg.flicker, &mut rng);
                faults[j].push(FrameFault::Flicker { factor });
            }

            if let Some(burst) = cfg.burst {
                if burst.amplitude > 0 && burst_frames.get(j).copied().unwrap_or(false) {
                    let mut rng = self.stream(tag::NOISE, j);
                    add_channel_jitter(&mut frame, burst.amplitude, &mut rng);
                    faults[j].push(FrameFault::NoiseBurst {
                        amplitude: burst.amplitude,
                    });
                }
            }

            out_frames.push(frame);
        }
        debug_assert_eq!(out_frames.len(), n);
        debug_assert!(out_frames.iter().all(|f| f.dims() == (w, h)));

        (
            Video::new(out_frames, video.fps()),
            InjectionReport {
                dropped_inputs,
                truncated_inputs,
                frame_faults: faults,
            },
        )
    }

    /// The seed-derived RNG for one fault family at one frame.
    fn stream(&self, tag: u64, frame: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(tag)
                .wrapping_add((frame as u64).wrapping_mul(0x100_0000_01B3)),
        )
    }

    /// Static vertical bars: `(x0, width, colour)` per bar.
    fn make_bars(&self, frame_width: usize) -> Vec<(usize, usize, Rgb)> {
        if self.config.occlusion_bars == 0 || frame_width == 0 {
            return Vec::new();
        }
        let mut rng = self.stream(tag::OCCLUSION, 0);
        (0..self.config.occlusion_bars)
            .map(|_| {
                let bw = if self.config.bar_width_px > 0 {
                    self.config.bar_width_px.min(frame_width)
                } else {
                    (frame_width / 40).clamp(2, frame_width)
                };
                let x0 = rng.gen_range(0..frame_width.saturating_sub(bw).max(1));
                let shade = rng.gen_range(25u8..70);
                (x0, bw, Rgb::new(shade, shade, shade.saturating_add(8)))
            })
            .collect()
    }

    /// Which output frames fall inside a noise-burst window.
    fn burst_window_membership(&self, n: usize) -> Vec<bool> {
        let mut member = vec![false; n];
        if let Some(burst) = self.config.burst {
            if burst.count > 0 && burst.len > 0 && n > 0 {
                let mut rng = self.stream(tag::NOISE, usize::MAX);
                for _ in 0..burst.count {
                    let start = rng.gen_range(0..n);
                    for slot in member.iter_mut().skip(start).take(burst.len) {
                        *slot = true;
                    }
                }
            }
        }
        member
    }
}

/// Draws a full-height vertical bar.
fn draw_bar(frame: &mut Frame, x0: usize, width: usize, color: Rgb) {
    let (w, h) = frame.dims();
    for y in 0..h {
        for x in x0..(x0 + width).min(w) {
            frame.set(x, y, color);
        }
    }
}

/// Box-filters the frame along x with the given radius (window
/// `2 × radius + 1`, clamped at the frame edges), per channel with a
/// running sum — the smear of a horizontal pan during exposure.
fn motion_blur_x(frame: &Frame, radius: usize) -> Frame {
    let (w, h) = frame.dims();
    if radius == 0 || w == 0 {
        return frame.clone();
    }
    let mut out = frame.clone();
    for y in 0..h {
        // Running per-channel sums over the clamped window.
        let mut sum = [0u32; 3];
        let mut lo = 0usize; // inclusive
        let mut hi = 0usize; // exclusive
        for x in 0..w {
            let want_lo = x.saturating_sub(radius);
            let want_hi = (x + radius + 1).min(w);
            while hi < want_hi {
                let p = frame.get(hi, y);
                sum[0] += p.r as u32;
                sum[1] += p.g as u32;
                sum[2] += p.b as u32;
                hi += 1;
            }
            while lo < want_lo {
                let p = frame.get(lo, y);
                sum[0] -= p.r as u32;
                sum[1] -= p.g as u32;
                sum[2] -= p.b as u32;
                lo += 1;
            }
            let n = (hi - lo) as u32;
            out.set(
                x,
                y,
                Rgb::new(
                    ((sum[0] + n / 2) / n) as u8,
                    ((sum[1] + n / 2) / n) as u8,
                    ((sum[2] + n / 2) / n) as u8,
                ),
            );
        }
    }
    out
}

/// Translates the frame content by `(dx, dy)`, replicating edge pixels
/// into the uncovered border (camera shake, not a black border).
fn translate_replicate(frame: &Frame, dx: i32, dy: i32) -> Frame {
    let (w, h) = frame.dims();
    ImageBuffer::from_fn(w, h, |x, y| {
        let sx = (x as i32 - dx).clamp(0, w as i32 - 1) as usize;
        let sy = (y as i32 - dy).clamp(0, h as i32 - 1) as usize;
        frame.get(sx, sy)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imgproc::image::ImageBuffer;

    fn tiny_video(frames: usize) -> Video {
        let make = |k: usize| {
            ImageBuffer::from_fn(16, 12, |x, y| {
                Rgb::new((x * 16) as u8, (y * 20) as u8, (k * 10) as u8)
            })
        };
        Video::new((0..frames).map(make).collect(), 10.0)
    }

    fn everything() -> FaultConfig {
        FaultConfig {
            seed: 7,
            drop_prob: 0.2,
            duplicate_prob: 0.2,
            flicker: 0.1,
            burst: Some(NoiseBurst {
                count: 2,
                len: 2,
                amplitude: 40,
            }),
            jitter_px: 2,
            blur_px: 2,
            occlusion_bars: 1,
            bar_width_px: 0,
        }
    }

    #[test]
    fn noop_config_is_identity() {
        let video = tiny_video(6);
        let (out, report) = FaultInjector::new(FaultConfig::default()).inject(&video);
        assert_eq!(out, video);
        assert_eq!(report.faulty_frames(), 0);
        assert!(FaultConfig::default().is_noop());
        assert!(!everything().is_noop());
    }

    #[test]
    fn output_shape_is_preserved() {
        let video = tiny_video(9);
        let (out, report) = FaultInjector::new(everything()).inject(&video);
        assert_eq!(out.len(), video.len());
        assert_eq!(out.dims(), video.dims());
        assert_eq!(out.fps(), video.fps());
        assert_eq!(report.frame_faults.len(), video.len());
        assert!(report.faulty_frames() > 0);
    }

    #[test]
    fn dropped_frames_freeze_the_previous_frame() {
        let cfg = FaultConfig {
            seed: 3,
            drop_prob: 0.5,
            ..FaultConfig::default()
        };
        let video = tiny_video(10);
        let (out, report) = FaultInjector::new(cfg).inject(&video);
        assert!(!report.dropped_inputs.is_empty(), "p=0.5 over 9 frames");
        for (j, faults) in report.frame_faults.iter().enumerate() {
            for f in faults {
                if let FrameFault::Frozen { source } = f {
                    assert_eq!(out.frames()[j], video.frames()[*source]);
                }
            }
        }
    }

    #[test]
    fn duplicates_shift_the_clip_late() {
        let cfg = FaultConfig {
            seed: 5,
            duplicate_prob: 0.5,
            ..FaultConfig::default()
        };
        let video = tiny_video(10);
        let (_, report) = FaultInjector::new(cfg).inject(&video);
        assert!(!report.truncated_inputs.is_empty(), "p=0.5 over 10 frames");
        let dup = report
            .frame_faults
            .iter()
            .flatten()
            .any(|f| matches!(f, FrameFault::Duplicated { .. }));
        assert!(dup);
    }

    #[test]
    fn occlusion_bars_paint_every_frame() {
        let cfg = FaultConfig {
            seed: 1,
            occlusion_bars: 2,
            ..FaultConfig::default()
        };
        let video = tiny_video(4);
        let (out, report) = FaultInjector::new(cfg).inject(&video);
        for faults in &report.frame_faults {
            assert!(faults.contains(&FrameFault::Occluded));
        }
        assert_ne!(out.frames()[0], video.frames()[0]);
    }

    #[test]
    fn fault_families_do_not_cross_talk() {
        // Adding bars must not change which frames flicker or by how
        // much: each family draws from its own stream.
        let base = FaultConfig {
            seed: 11,
            flicker: 0.2,
            ..FaultConfig::default()
        };
        let with_bars = FaultConfig {
            occlusion_bars: 1,
            ..base
        };
        let video = tiny_video(8);
        let (_, r1) = FaultInjector::new(base).inject(&video);
        let (_, r2) = FaultInjector::new(with_bars).inject(&video);
        let flickers = |r: &InjectionReport| -> Vec<(usize, f64)> {
            r.frame_faults
                .iter()
                .enumerate()
                .flat_map(|(j, fs)| {
                    fs.iter().filter_map(move |f| match f {
                        FrameFault::Flicker { factor } => Some((j, *factor)),
                        _ => None,
                    })
                })
                .collect()
        };
        assert_eq!(flickers(&r1), flickers(&r2));
    }

    #[test]
    fn motion_blur_smears_along_x_only() {
        let cfg = FaultConfig {
            seed: 13,
            blur_px: 3,
            ..FaultConfig::default()
        };
        let video = tiny_video(4);
        let (out, report) = FaultInjector::new(cfg).inject(&video);
        // Recorded radii stay inside the configured range; a frame with
        // no record drew radius 0 and stays sharp.
        let mut blurred_frames = 0usize;
        for (j, faults) in report.frame_faults.iter().enumerate() {
            let radius = faults.iter().find_map(|f| match f {
                FrameFault::MotionBlur { radius } => Some(*radius),
                _ => None,
            });
            match radius {
                Some(radius) => {
                    blurred_frames += 1;
                    assert!((1..=3).contains(&radius), "radius {radius}");
                    assert_ne!(out.frames()[j], video.frames()[j]);
                }
                None => assert_eq!(out.frames()[j], video.frames()[j]),
            }
        }
        assert!(blurred_frames > 0, "seed 13 blurs at least one frame");
        // On a blurred frame the x-gradient is averaged away, but the
        // pure-y gradient of the green channel is untouched (the filter
        // never mixes rows).
        let j = report
            .frame_faults
            .iter()
            .position(|faults| {
                faults
                    .iter()
                    .any(|f| matches!(f, FrameFault::MotionBlur { .. }))
            })
            .unwrap();
        let (w, h) = video.dims();
        for y in 0..h {
            for x in 0..w {
                assert_eq!(out.frames()[j].get(x, y).g, video.frames()[j].get(x, y).g);
            }
        }
        assert_ne!(out.frames()[j], video.frames()[j]);
        // Deterministic: same config, same output.
        let (again, _) = FaultInjector::new(cfg).inject(&video);
        assert_eq!(out, again);
    }

    #[test]
    fn motion_blur_preserves_a_uniform_frame() {
        let flat: Frame = ImageBuffer::from_fn(9, 5, |_, _| Rgb::new(120, 30, 200));
        let blurred = motion_blur_x(&flat, 4);
        assert_eq!(blurred, flat);
    }

    #[test]
    fn spec_round_trip_and_errors() {
        let cfg = FaultConfig::parse(
            "drop=0.1, dup=0.05, flicker=0.08, burst=2:3:40, jitter=2, blur=3, bars=1, seed=9",
        )
        .unwrap();
        assert_eq!(cfg.drop_prob, 0.1);
        assert_eq!(cfg.duplicate_prob, 0.05);
        assert_eq!(cfg.flicker, 0.08);
        assert_eq!(
            cfg.burst,
            Some(NoiseBurst {
                count: 2,
                len: 3,
                amplitude: 40
            })
        );
        assert_eq!(cfg.jitter_px, 2);
        assert_eq!(cfg.blur_px, 3);
        assert_eq!(cfg.occlusion_bars, 1);
        assert_eq!(cfg.seed, 9);

        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::default());
        assert!(FaultConfig::parse("drop=1.5").is_err());
        assert!(FaultConfig::parse("drop").is_err());
        assert!(FaultConfig::parse("burst=2:3").is_err());
        assert!(FaultConfig::parse("warp=1").is_err());
    }

    #[test]
    fn translate_replicates_edges() {
        let img: Frame = ImageBuffer::from_fn(4, 3, |x, y| Rgb::new(x as u8, y as u8, 0));
        let shifted = translate_replicate(&img, 1, 0);
        // Column 0 replicates the old column 0; column 1 is old column 0.
        assert_eq!(shifted.get(0, 1), img.get(0, 1));
        assert_eq!(shifted.get(1, 1), img.get(0, 1));
        assert_eq!(shifted.get(3, 1), img.get(2, 1));
    }
}
