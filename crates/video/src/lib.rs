//! Synthetic side-view jump video with ground truth.
//!
//! The paper's input is a short clip of a child's standing long jump shot
//! from the side with a fixed camera. No such footage ships with this
//! reproduction, so this crate *is* the camera: it renders an articulated
//! jumper (one filled capsule per stick of the `slj-motion` model) over a
//! procedurally textured static background, casts a photometrically
//! consistent shadow on the ground, and injects the three artefacts the
//! paper's pipeline is built to repair — per-pixel lighting noise,
//! drifting small clutter spots, and low-contrast "camouflage" patches
//! that punch holes into the extracted foreground.
//!
//! Because the scene is synthetic, every quantity the paper can only
//! show qualitatively comes with ground truth: the clean background
//! (Fig. 1), the exact silhouette per frame (Figs. 2–3, 6) and the exact
//! pose per frame (Fig. 7).
//!
//! * [`camera`] — the world (metres, y-up) ↔ image (pixels, y-down)
//!   transform.
//! * [`background`] — deterministic background texture generator.
//! * [`scene`] — scene configuration: geometry, colours, shadow, noise.
//! * [`render`] — silhouette, shadow and frame rendering.
//! * [`synthjump`] — the one-call generator bundling video + ground
//!   truth.
//! * [`io`] — clip persistence (PPM frame directories) for feeding the
//!   analyzer real footage.
//! * [`faults`] — seeded acquisition-fault injection (dropped frames,
//!   flicker, noise bursts, camera jitter, motion blur, occlusion bars)
//!   for robustness testing.
//! * [`truth`] — the `truth.json` ground-truth sidecar a clip directory
//!   carries alongside its frames.
//!
//! # Example
//!
//! ```
//! use slj_video::scene::SceneConfig;
//! use slj_video::synthjump::SyntheticJump;
//! use slj_motion::JumpConfig;
//!
//! let jump = SyntheticJump::generate(&SceneConfig::default(), &JumpConfig::default(), 7);
//! assert_eq!(jump.video.len(), 20);
//! assert_eq!(jump.silhouettes.len(), 20);
//! // Every frame has a non-trivial true silhouette.
//! assert!(jump.silhouettes.iter().all(|s| s.count() > 200));
//! ```

pub mod background;
pub mod camera;
pub mod faults;
pub mod io;
pub mod render;
pub mod scene;
pub mod synthjump;
pub mod truth;
pub mod video;

pub use camera::Camera;
pub use faults::{FaultConfig, FaultInjector, FrameFault, InjectionReport, NoiseBurst};
pub use scene::SceneConfig;
pub use synthjump::SyntheticJump;
pub use truth::{ClipTruth, TruthError, TRUTH_FILE};
pub use video::{Frame, Video};
