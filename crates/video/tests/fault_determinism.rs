//! Fault injection is a pure function of (config, input): the same
//! `FaultConfig` — seed included — must produce the bitwise-identical
//! perturbed video and report, no matter how often or where it runs.

use proptest::prelude::*;
use slj_imgproc::image::ImageBuffer;
use slj_imgproc::pixel::Rgb;
use slj_video::faults::{FaultConfig, FaultInjector, NoiseBurst};
use slj_video::video::Video;

fn test_video(frames: usize, seed: u64) -> Video {
    let make = |k: usize| {
        ImageBuffer::from_fn(24, 18, |x, y| {
            let v = (x * 7 + y * 11 + k * 13 + seed as usize) as u8;
            Rgb::new(v, v.wrapping_add(40), v.wrapping_add(90))
        })
    };
    Video::new((0..frames).map(make).collect(), 10.0)
}

fn arb_config() -> impl Strategy<Value = FaultConfig> {
    (
        any::<u64>(),
        0.0..0.4f64,
        0.0..0.4f64,
        0.0..0.3f64,
        0usize..3,
        0usize..4,
        0usize..4,
        (0usize..3, 0usize..12),
    )
        .prop_map(
            |(seed, drop, dup, flicker, bursts, jitter, blur, (bars, barw))| FaultConfig {
                seed,
                drop_prob: drop,
                duplicate_prob: dup,
                flicker,
                burst: if bursts > 0 {
                    Some(NoiseBurst {
                        count: bursts,
                        len: 3,
                        amplitude: 35,
                    })
                } else {
                    None
                },
                jitter_px: jitter,
                blur_px: blur,
                occlusion_bars: bars,
                bar_width_px: barw,
            },
        )
}

proptest! {
    #[test]
    fn same_config_same_seed_is_bitwise_identical(cfg in arb_config(), clip_seed in 0u64..32) {
        let video = test_video(12, clip_seed);
        let (out1, rep1) = FaultInjector::new(cfg).inject(&video);
        let (out2, rep2) = FaultInjector::new(cfg).inject(&video);
        prop_assert_eq!(out1, out2);
        prop_assert_eq!(rep1, rep2);
    }

    #[test]
    fn shape_invariants_hold(cfg in arb_config(), clip_seed in 0u64..32) {
        let video = test_video(10, clip_seed);
        let (out, report) = FaultInjector::new(cfg).inject(&video);
        prop_assert_eq!(out.len(), video.len());
        prop_assert_eq!(out.dims(), video.dims());
        prop_assert_eq!(out.fps(), video.fps());
        prop_assert_eq!(report.frame_faults.len(), video.len());
        // Every recorded freeze/duplicate points at a real input frame.
        for i in report.dropped_inputs.iter().chain(&report.truncated_inputs) {
            prop_assert!(*i < video.len());
        }
    }

    #[test]
    fn different_seeds_differ_when_faults_are_active(seed in 0u64..64) {
        // With strong flicker, two different seeds should essentially
        // never realise the same perturbation.
        let cfg1 = FaultConfig { seed, flicker: 0.2, ..FaultConfig::default() };
        let cfg2 = FaultConfig { seed: seed.wrapping_add(1), ..cfg1 };
        let video = test_video(8, 0);
        let (out1, _) = FaultInjector::new(cfg1).inject(&video);
        let (out2, _) = FaultInjector::new(cfg2).inject(&video);
        prop_assert_ne!(out1, out2);
    }
}
