//! Criterion benches for the end-to-end system: whole-clip analysis at
//! the compact and default resolutions, plus scene generation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use slj::prelude::*;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);

    g.bench_function("generate_clip_320x240_20f", |b| {
        let scene = SceneConfig::default();
        b.iter(|| SyntheticJump::generate(black_box(&scene), &JumpConfig::default(), 5))
    });

    let compact = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::default()
    };
    let jump_small = SyntheticJump::generate(&compact, &JumpConfig::default(), 5);
    g.bench_function("analyze_fast_160x120_20f", |b| {
        let analyzer = JumpAnalyzer::new(AnalyzerConfig::fast());
        b.iter(|| {
            analyzer
                .analyze(
                    black_box(&jump_small.video),
                    &compact.camera,
                    jump_small.poses.poses()[0],
                )
                .unwrap()
        })
    });

    let scene = SceneConfig::default();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 5);
    g.bench_function("analyze_default_320x240_20f", |b| {
        let analyzer = JumpAnalyzer::new(AnalyzerConfig::default());
        b.iter(|| {
            analyzer
                .analyze(black_box(&jump.video), &scene.camera, jump.poses.poses()[0])
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
