//! Criterion benches for the GA: per-frame temporal estimation, the
//! non-temporal baseline of [5], and the serial vs parallel fitness
//! evaluation of the engine.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slj_ga::engine::{evolve, GaConfig};
use slj_ga::pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig, DEFAULT_DELTA_ANGLES};
use slj_motion::{synthesize_jump, JumpConfig};
use slj_video::render::render_silhouette;
use slj_video::Camera;
use std::hint::black_box;

fn bench_ga(c: &mut Criterion) {
    let jump_cfg = JumpConfig::default();
    let truth = synthesize_jump(&jump_cfg);
    let camera = Camera::default();
    let prev = truth.poses()[0];
    let target = truth.poses()[1];
    let sil = render_silhouette(&target, &jump_cfg.dims, &camera);
    let init = InitStrategy::Temporal {
        previous: prev,
        delta_center: 0.12,
        delta_angles: DEFAULT_DELTA_ANGLES,
    };
    let problem_cfg = PoseProblemConfig::default();

    let mut g = c.benchmark_group("ga");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    g.bench_function("temporal_frame_default_budget", |b| {
        let problem = PoseProblem::new(&sil, &jump_cfg.dims, &camera, init, problem_cfg).unwrap();
        let ga = GaConfig {
            population_size: 100,
            max_generations: 40,
            patience: Some(10),
            ..GaConfig::default()
        };
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            evolve(black_box(&problem), &ga, &mut rng).unwrap()
        })
    });
    g.bench_function("single_generation_pop100", |b| {
        let problem = PoseProblem::new(&sil, &jump_cfg.dims, &camera, init, problem_cfg).unwrap();
        let ga = GaConfig {
            population_size: 100,
            max_generations: 1,
            patience: None,
            ..GaConfig::default()
        };
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            evolve(black_box(&problem), &ga, &mut rng).unwrap()
        })
    });
    for threads in [1usize, 4] {
        g.bench_function(format!("ten_generations_pop200_threads{threads}"), |b| {
            let problem =
                PoseProblem::new(&sil, &jump_cfg.dims, &camera, init, problem_cfg).unwrap();
            let ga = GaConfig {
                population_size: 200,
                max_generations: 10,
                patience: None,
                threads,
                ..GaConfig::default()
            };
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                evolve(black_box(&problem), &ga, &mut rng).unwrap()
            })
        });
    }
    g.bench_function("particle_filter_frame_400p", |b| {
        use slj_ga::particle::{ParticleFilter, ParticleFilterConfig};
        let sils = [sil.clone(), sil.clone()];
        let pf = ParticleFilter::new(ParticleFilterConfig {
            particles: 400,
            seed: 7,
            ..ParticleFilterConfig::default()
        });
        b.iter(|| {
            pf.track(black_box(&sils), prev, &jump_cfg.dims, &camera)
                .unwrap()
        })
    });
    g.bench_function("full_range_frame_50gens", |b| {
        let problem = PoseProblem::new(
            &sil,
            &jump_cfg.dims,
            &camera,
            InitStrategy::FullRange,
            problem_cfg,
        )
        .unwrap();
        let ga = GaConfig {
            population_size: 100,
            max_generations: 50,
            patience: None,
            ..GaConfig::default()
        };
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            evolve(black_box(&problem), &ga, &mut rng).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ga);
criterion_main!(benches);
