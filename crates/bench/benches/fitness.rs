//! Criterion benches for the Eq. 3 fitness function: cost per
//! evaluation at different subsampling strides, and the split between
//! the Eq. 3 term and the coverage penalty.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slj_ga::fitness::SilhouetteFitness;
use slj_motion::{BodyDims, Pose};
use slj_video::render::render_silhouette;
use slj_video::Camera;
use std::hint::black_box;

fn bench_fitness(c: &mut Criterion) {
    let dims = BodyDims::default();
    let camera = Camera::default();
    let mut pose = Pose::standing(&dims);
    pose.center.x = 0.6;
    let sil = render_silhouette(&pose, &dims, &camera);

    let mut g = c.benchmark_group("fitness");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(3));
    for stride in [1usize, 2, 4, 8] {
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, stride).unwrap();
        g.bench_with_input(
            BenchmarkId::new("evaluate_stride", stride),
            &stride,
            |b, _| b.iter(|| fit.evaluate(black_box(&pose), &dims)),
        );
    }
    let fit = SilhouetteFitness::new(&sil, &dims, &camera, 2).unwrap();
    g.bench_function("eq3_only_stride2", |b| {
        b.iter(|| fit.evaluate_eq3(black_box(&pose), &dims))
    });
    g.bench_function("outside_penalty_only", |b| {
        b.iter(|| fit.outside_penalty(black_box(&pose), &dims))
    });
    g.bench_function("prepare_evaluator", |b| {
        b.iter(|| SilhouetteFitness::new(black_box(&sil), &dims, &camera, 2).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_fitness);
criterion_main!(benches);
