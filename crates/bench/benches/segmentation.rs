//! Criterion benches for the Section 2 segmentation pipeline: cost of
//! each step and of the composed pipeline, per frame.

use criterion::{criterion_group, criterion_main, Criterion};
use slj_motion::JumpConfig;
use slj_segment::background::{BackgroundConfig, BackgroundEstimator, UpdateMode};
use slj_segment::cleanup::{HoleFiller, NoiseFilter, SpotRemover};
use slj_segment::foreground::ForegroundExtractor;
use slj_segment::pipeline::{PipelineConfig, SegmentPipeline};
use slj_segment::shadow::ShadowDetector;
use slj_video::{SceneConfig, SyntheticJump};
use std::hint::black_box;

fn bench_segmentation(c: &mut Criterion) {
    let scene = SceneConfig::default();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 77);
    let background = BackgroundEstimator::new(BackgroundConfig::default())
        .estimate(&jump.video)
        .unwrap();
    let frame = &jump.video.frames()[10];
    let extractor = ForegroundExtractor::default();
    let raw = extractor.extract(frame, &background.image);
    let denoised = NoiseFilter::default().apply(&raw);
    let despotted = SpotRemover::default().apply(&denoised);
    let filled = HoleFiller::default().apply(&despotted);

    let mut g = c.benchmark_group("segmentation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("background_last_stable_20f", |b| {
        let est = BackgroundEstimator::new(BackgroundConfig {
            mode: UpdateMode::LastStable,
            ..BackgroundConfig::default()
        });
        b.iter(|| est.estimate(black_box(&jump.video)).unwrap())
    });
    g.bench_function("background_median_20f", |b| {
        let est = BackgroundEstimator::new(BackgroundConfig::default());
        b.iter(|| est.estimate(black_box(&jump.video)).unwrap())
    });
    g.bench_function("subtract_frame", |b| {
        b.iter(|| extractor.extract(black_box(frame), black_box(&background.image)))
    });
    g.bench_function("noise_filter_frame", |b| {
        let f = NoiseFilter::default();
        b.iter(|| f.apply(black_box(&raw)))
    });
    g.bench_function("spot_removal_frame", |b| {
        let f = SpotRemover::default();
        b.iter(|| f.apply(black_box(&denoised)))
    });
    g.bench_function("hole_fill_flood_frame", |b| {
        let f = HoleFiller::default();
        b.iter(|| f.apply(black_box(&despotted)))
    });
    g.bench_function("hole_fill_paper_frame", |b| {
        let f = HoleFiller::paper();
        b.iter(|| f.apply(black_box(&despotted)))
    });
    g.bench_function("box_blur_r1_frame", |b| {
        b.iter(|| slj_imgproc::filter::box_blur(black_box(frame), 1))
    });
    g.bench_function("median_filter_frame", |b| {
        b.iter(|| slj_imgproc::filter::median_filter(black_box(frame)))
    });
    g.bench_function("ghost_suppression_frame", |b| {
        let det = slj_segment::ghosts::GhostDetector::default();
        let prev = &jump.video.frames()[9];
        b.iter(|| {
            det.suppress(black_box(&despotted), black_box(frame), Some(prev))
                .unwrap()
        })
    });
    g.bench_function("shadow_removal_frame", |b| {
        let det = ShadowDetector::default();
        b.iter(|| det.remove_shadows(black_box(frame), black_box(&background.image), &filled))
    });
    g.bench_function("full_pipeline_20f", |b| {
        let pipeline = SegmentPipeline::new(PipelineConfig::default());
        b.iter(|| pipeline.run(black_box(&jump.video)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_segmentation);
criterion_main!(benches);
