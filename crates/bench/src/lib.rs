//! Shared harness for the experiment binaries that regenerate every
//! table and figure of the paper.
//!
//! Each binary under `src/bin/` reproduces one artefact (see DESIGN.md's
//! per-experiment index) and prints a markdown table; figure binaries
//! additionally write PPM/PGM panels under `target/figures/`. All
//! experiments are deterministic: they print their seeds.
//!
//! Run them with, e.g.:
//!
//! ```sh
//! cargo run --release -p slj-bench --bin fig1_background
//! ```

use std::path::PathBuf;

pub mod scalar;

/// Prints an aligned markdown table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    println!("{}", fmt_row(&header_cells));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// The directory figure panels are written to.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, what: &str, seed: u64) {
    println!("== {id}: {what}");
    println!("   (deterministic; master seed {seed})\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_does_not_panic_and_aligns() {
        print_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
    }
}
