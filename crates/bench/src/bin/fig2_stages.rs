//! Figure 2 — foreground extraction, panel by panel.
//!
//! The paper's Fig. 2 shows the foreground (a) after background
//! subtraction, (b) after noise removal, (c) after small-spot removal,
//! (d) after hole filling. Against ground-truth silhouettes each panel
//! becomes a precision/recall/IoU row, micro-averaged over the clip
//! (edge frames skipped). Panels for the middle frame are written to
//! `target/figures/`.

use slj::prelude::*;
use slj_bench::{banner, f3, figures_dir, print_table};
use slj_segment::metrics::evaluate_clip;
use slj_segment::pipeline::SegmentPipeline;

fn main() {
    let seed = 1002;
    banner(
        "Figure 2",
        "per-stage foreground quality vs ground truth (micro-averaged, edge frames skipped)",
        seed,
    );

    let scene = SceneConfig::default();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), seed);
    let result = SegmentPipeline::new(PipelineConfig::default())
        .run(&jump.video)
        .expect("pipeline");
    let clip = evaluate_clip(&result, &jump.silhouettes, 2).expect("metrics");

    let s = &clip.stages;
    let row = |label: &str, m: &slj_imgproc::mask::MaskMetrics| {
        vec![
            label.to_owned(),
            f3(m.precision()),
            f3(m.recall()),
            f3(m.iou()),
            f3(m.f1()),
        ]
    };
    print_table(
        &["stage (Fig. 2 panel)", "precision", "recall", "IoU", "F1"],
        &[
            row("(a) raw subtraction", &s.raw),
            row("(b) 8-neighbour noise filter", &s.denoised),
            row("(c) small-spot removal", &s.despotted),
            row("(d) hole fill", &s.filled),
            row("(-) + shadow removal (Fig. 3)", &s.final_mask),
        ],
    );

    let k = jump.len() / 2;
    let dir = figures_dir();
    let st = &result.frames[k];
    slj_imgproc::io::save_ppm(&jump.video.frames()[k], dir.join("fig2_frame.ppm")).unwrap();
    slj_imgproc::io::save_mask_pgm(&st.raw, dir.join("fig2a_raw.pgm")).unwrap();
    slj_imgproc::io::save_mask_pgm(&st.denoised, dir.join("fig2b_denoised.pgm")).unwrap();
    slj_imgproc::io::save_mask_pgm(&st.despotted, dir.join("fig2c_despotted.pgm")).unwrap();
    slj_imgproc::io::save_mask_pgm(&st.filled, dir.join("fig2d_filled.pgm")).unwrap();
    slj_imgproc::io::save_mask_pgm(&jump.silhouettes[k], dir.join("fig2_truth.pgm")).unwrap();
    println!("\npanels (frame {k}) written to {}", dir.display());
    println!(
        "\nReading: precision climbs panel by panel exactly as the paper's\n\
         imagery suggests; the residual gap to IoU 1.0 is the cast shadow,\n\
         removed in Fig. 3's step."
    );
}
