//! Figure 1 — background estimation by change detection.
//!
//! The paper shows, qualitatively, the first frame of a jump clip next
//! to the background recovered by change detection. With ground truth
//! available this becomes quantitative: per-pixel mean absolute error
//! (MAE) against the true background and the fraction of pixels that
//! ever stabilised, as a function of clip length, for the paper's
//! last-stable update rule and this reproduction's median extension.
//!
//! Panels `fig1_*.ppm/pgm` are written to `target/figures/`.

use slj::prelude::*;
use slj_bench::{banner, f3, figures_dir, print_table};
use slj_segment::background::{BackgroundConfig, BackgroundEstimator, UpdateMode};

fn main() {
    let seed = 1001;
    banner(
        "Figure 1",
        "background estimation: MAE (intensity levels) and coverage vs clip length",
        seed,
    );

    let scene = SceneConfig::default();
    let mut rows = Vec::new();
    for frames in [5usize, 10, 20, 40] {
        let jump_cfg = JumpConfig {
            frames,
            ..JumpConfig::default()
        };
        let jump = SyntheticJump::generate(&scene, &jump_cfg, seed);
        for (label, mode) in [
            ("last-stable (paper)", UpdateMode::LastStable),
            ("median (ours)", UpdateMode::MedianOfStable),
        ] {
            let est = BackgroundEstimator::new(BackgroundConfig {
                mode,
                ..BackgroundConfig::default()
            })
            .estimate(&jump.video)
            .expect("clip has at least two frames");
            let mae = est.mae_against(&jump.true_background).expect("same dims");
            rows.push(vec![
                frames.to_string(),
                label.to_owned(),
                f3(mae),
                f3(est.coverage()),
            ]);
        }
    }
    print_table(&["frames", "update rule", "MAE", "coverage"], &rows);

    // Panels: first frame, estimated background (both modes), truth.
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), seed);
    let dir = figures_dir();
    slj_imgproc::io::save_ppm(&jump.video.frames()[0], dir.join("fig1_first_frame.ppm"))
        .expect("write panel");
    slj_imgproc::io::save_ppm(&jump.true_background, dir.join("fig1_true_background.ppm"))
        .expect("write panel");
    for (name, mode) in [
        ("fig1_background_last_stable.ppm", UpdateMode::LastStable),
        ("fig1_background_median.ppm", UpdateMode::MedianOfStable),
    ] {
        let est = BackgroundEstimator::new(BackgroundConfig {
            mode,
            ..BackgroundConfig::default()
        })
        .estimate(&jump.video)
        .expect("estimate");
        slj_imgproc::io::save_ppm(&est.image, dir.join(name)).expect("write panel");
    }
    println!("\npanels written to {}", dir.display());
    println!(
        "\nReading: both rules recover the occluded background; the paper's\n\
         last-stable rule burns the landed jumper into the estimate on longer\n\
         clips (rising MAE), the median rule does not."
    );
}
