//! Figure 3 — HSV shadow removal (Eqs. 1–2).
//!
//! The paper shows the silhouette before/after shadow suppression and
//! notes that the parameters α, β, τ_S, τ_H "are determined via
//! experiments". This binary reports (1) the with/without comparison as
//! numbers and (2) that experiment: a one-at-a-time sensitivity sweep of
//! each parameter around the defaults, measuring final-mask IoU,
//! shadow-pixel false positives surviving in the mask, and body pixels
//! wrongly eaten by the shadow mask.

use slj::prelude::*;
use slj_bench::{banner, f3, figures_dir, print_table};
use slj_segment::metrics::evaluate_clip;
use slj_segment::pipeline::SegmentPipeline;
use slj_segment::shadow::ShadowParams;
use slj_video::render::render_shadow_mask;

fn run(scene: &SceneConfig, jump: &SyntheticJump, shadow: Option<ShadowParams>) -> (f64, f64, f64) {
    let cfg = PipelineConfig {
        shadow,
        ..PipelineConfig::default()
    };
    let result = SegmentPipeline::new(cfg)
        .run(&jump.video)
        .expect("pipeline");
    let clip = evaluate_clip(&result, &jump.silhouettes, 2).expect("metrics");

    // Shadow-ground-truth diagnostics on the middle frame.
    let k = jump.len() / 2;
    let true_shadow = render_shadow_mask(&jump.silhouettes[k], &scene.camera, &scene.shadow);
    let final_mask = &result.frames[k].final_mask;
    let surviving_shadow = final_mask
        .intersect(&true_shadow)
        .expect("dims")
        .difference(&jump.silhouettes[k])
        .expect("dims")
        .count() as f64
        / true_shadow.count().max(1) as f64;
    let eaten_body = result.frames[k]
        .shadow
        .intersect(&jump.silhouettes[k])
        .expect("dims")
        .count() as f64
        / jump.silhouettes[k].count().max(1) as f64;
    (clip.stages.final_mask.iou(), surviving_shadow, eaten_body)
}

fn main() {
    let seed = 1003;
    banner(
        "Figure 3",
        "HSV shadow removal: with/without + parameter sensitivity",
        seed,
    );
    let scene = SceneConfig::default();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), seed);

    let mut rows = Vec::new();
    let (iou, surv, eaten) = run(&scene, &jump, None);
    rows.push(vec![
        "shadow removal OFF".into(),
        f3(iou),
        f3(surv),
        f3(eaten),
    ]);
    let (iou, surv, eaten) = run(&scene, &jump, Some(ShadowParams::default()));
    rows.push(vec![
        "shadow removal ON (defaults)".into(),
        f3(iou),
        f3(surv),
        f3(eaten),
    ]);
    print_table(
        &["condition", "final IoU", "shadow surviving", "body eaten"],
        &rows,
    );

    println!("\nsensitivity (one parameter at a time; defaults α=0.40 β=0.90 τS=0.15 τH=60):\n");
    let mut rows = Vec::new();
    let d = ShadowParams::default();
    let variants: Vec<(String, ShadowParams)> = vec![
        ("α=0.20".into(), ShadowParams { alpha: 0.20, ..d }),
        ("α=0.55".into(), ShadowParams { alpha: 0.55, ..d }),
        ("β=0.75".into(), ShadowParams { beta: 0.75, ..d }),
        ("β=0.98".into(), ShadowParams { beta: 0.98, ..d }),
        ("τS=0.05".into(), ShadowParams { tau_s: 0.05, ..d }),
        ("τS=0.40".into(), ShadowParams { tau_s: 0.40, ..d }),
        ("τH=20".into(), ShadowParams { tau_h: 20.0, ..d }),
        ("τH=120".into(), ShadowParams { tau_h: 120.0, ..d }),
    ];
    for (label, params) in variants {
        let (iou, surv, eaten) = run(&scene, &jump, Some(params));
        rows.push(vec![label, f3(iou), f3(surv), f3(eaten)]);
    }
    print_table(
        &["variant", "final IoU", "shadow surviving", "body eaten"],
        &rows,
    );

    // Panels: before/after, like the paper's Fig. 3 (a)(b).
    let result = SegmentPipeline::new(PipelineConfig::default())
        .run(&jump.video)
        .expect("pipeline");
    let k = jump.len() / 2;
    let dir = figures_dir();
    slj_imgproc::io::save_mask_pgm(&result.frames[k].filled, dir.join("fig3_before.pgm")).unwrap();
    slj_imgproc::io::save_mask_pgm(&result.frames[k].final_mask, dir.join("fig3_after.pgm"))
        .unwrap();
    slj_imgproc::io::save_mask_pgm(&result.frames[k].shadow, dir.join("fig3_shadow_mask.pgm"))
        .unwrap();
    println!("\npanels (frame {k}) written to {}", dir.display());
    println!(
        "\nReading: β is the sharp parameter — too high and the un-darkened\n\
         pixels start matching; τH too low stops matching real shadows on the\n\
         textured ground. The defaults sit on the plateau, as the paper's\n\
         'determined via experiments' implies."
    );
}
