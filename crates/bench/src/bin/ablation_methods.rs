//! Ablation E — the paper's GA tracker vs a particle filter.
//!
//! The paper chose a per-frame GA with temporal seeding; the standard
//! alternative in 2006 tracking literature was the particle filter
//! (Condensation). Both are run here over the same ground-truth
//! silhouettes with the same Eq. 3 cost, at three matched
//! evaluations-per-frame budgets, reporting pose accuracy and cost.

use slj::prelude::*;
use slj_bench::{banner, f1, f3, print_table};
use slj_ga::engine::GaConfig;
use slj_ga::particle::{ParticleFilter, ParticleFilterConfig};
use slj_ga::pose_problem::PoseProblemConfig;
use slj_ga::tracker::TemporalTracker;
use slj_video::render::render_silhouette;

fn main() {
    let seed = 1105;
    banner(
        "Ablation E",
        "temporal GA vs particle filter at matched per-frame budgets (GT silhouettes)",
        seed,
    );
    let jump_cfg = JumpConfig::default();
    let truth = synthesize_jump(&jump_cfg);
    let camera = Camera::default();
    let silhouettes: Vec<_> = truth
        .poses()
        .iter()
        .map(|p| render_silhouette(p, &jump_cfg.dims, &camera))
        .collect();

    let mut rows = Vec::new();
    for budget in [800usize, 2000, 4000] {
        // GA: population x generations ~= budget.
        {
            let config = TrackerConfig {
                ga: GaConfig {
                    population_size: 100,
                    max_generations: budget / 100,
                    patience: None,
                    ..GaConfig::default()
                },
                problem: PoseProblemConfig::default(),
                seed,
                ..TrackerConfig::default()
            };
            let run = TemporalTracker::new(config)
                .track(&silhouettes, truth.poses()[0], &jump_cfg.dims, &camera)
                .expect("ga tracking");
            let (mean_err, max_err) = errors(&run.to_pose_seq(10.0), &truth);
            rows.push(vec![
                format!("temporal GA ({budget}/frame)"),
                f3(mean_fitness(run.frames.iter().map(|f| f.fitness))),
                f1(mean_err),
                f1(max_err),
            ]);
        }
        // PF: particles == budget (one evaluation per particle per
        // frame).
        {
            let config = ParticleFilterConfig {
                particles: budget,
                seed,
                ..ParticleFilterConfig::default()
            };
            let run = ParticleFilter::new(config)
                .track(&silhouettes, truth.poses()[0], &jump_cfg.dims, &camera)
                .expect("pf tracking");
            let (mean_err, max_err) = errors(&run.to_pose_seq(10.0), &truth);
            rows.push(vec![
                format!("particle filter ({budget}/frame)"),
                f3(mean_fitness(run.frames.iter().map(|f| f.fitness))),
                f1(mean_err),
                f1(max_err),
            ]);
        }
    }
    print_table(
        &[
            "method (evals/frame)",
            "mean Eq.3 fitness",
            "mean angle err (deg)",
            "worst-frame angle err (deg)",
        ],
        &rows,
    );
    println!(
        "\nReading: the GA dominates on the paper's own criterion (Eq.3\n\
         fitness, roughly 2x better at every budget) and wins clearly at the\n\
         small per-frame budgets the paper actually uses. Neither method\n\
         converts extra budget into better *pose* accuracy: past ~1k\n\
         evaluations the residual error is the arm-ambiguity floor — many\n\
         arm configurations inside the torso fit the silhouette equally\n\
         well, and longer searches merely wander among those modes. The\n\
         paper's few-generation GA is therefore not just cheap but\n\
         effectively optimal for this representation."
    );
}

fn errors(est: &PoseSeq, truth: &PoseSeq) -> (f64, f64) {
    let mut sum = 0.0;
    let mut worst = 0.0f64;
    for (e, t) in est.poses().iter().zip(truth.poses()) {
        let err = e.error_against(t).mean_angle_error();
        sum += err;
        worst = worst.max(err);
    }
    (sum / est.len() as f64, worst)
}

fn mean_fitness(iter: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = iter.filter(|f| f.is_finite()).collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}
