//! Figure 6 — silhouettes and stick models across a whole jump.
//!
//! The paper's Fig. 6 shows, frame by frame, the computer-extracted
//! silhouette with the *manually drawn* stick model. Here the synthetic
//! ground-truth pose plays the "manual" role: the table reports, per
//! frame, how well the pipeline's silhouette matches the true one and
//! how far the tracked stick model is from the true pose. Overlay panels
//! go to `target/figures/`.

use slj::prelude::*;
use slj_bench::{banner, f1, f3, figures_dir, print_table};
use slj_imgproc::pixel::Rgb;

fn main() {
    let seed = 1006;
    banner(
        "Figure 6",
        "per-frame silhouette quality and tracked stick model vs truth (full pipeline)",
        seed,
    );
    let scene = SceneConfig::default();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), seed);
    let analyzer = JumpAnalyzer::new(AnalyzerConfig::default());
    let report = analyzer
        .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
        .expect("analysis");

    let mut rows = Vec::new();
    for k in 0..jump.len() {
        let sil_iou = report.segmentation.frames[k]
            .final_mask
            .iou(&jump.silhouettes[k])
            .expect("dims");
        let err = report.poses.poses()[k].error_against(&jump.poses.poses()[k]);
        rows.push(vec![
            k.to_string(),
            f3(sil_iou),
            f3(report.tracking[k].fitness),
            f1(err.mean_angle_error()),
            f1(err.max_angle_error()),
            f3(err.center_distance),
            if report.tracking[k].carried_over {
                "carried".into()
            } else {
                format!("{}", report.tracking[k].generations_run)
            },
        ]);
    }
    print_table(
        &[
            "frame",
            "sil IoU",
            "Eq.3 fit",
            "mean angle err (deg)",
            "max angle err (deg)",
            "centre err (m)",
            "GA gens",
        ],
        &rows,
    );

    // Overlay panels for a handful of frames, paper style: silhouette in
    // white, truth model in green, estimate in red — plus one montage of
    // all six panels (the paper's contact-sheet layout).
    let dir = figures_dir();
    let mut panels = Vec::new();
    for k in [0, 4, 8, 12, 16, 19] {
        let sil = &report.segmentation.frames[k].final_mask;
        let mut panel = slj::viz::silhouette_with_model(
            sil,
            &jump.poses.poses()[k],
            &jump.jump.dims,
            &scene.camera,
            Rgb::new(0, 220, 0),
        );
        slj::viz::draw_stick_model(
            &mut panel,
            &report.poses.poses()[k],
            &jump.jump.dims,
            &scene.camera,
            Rgb::new(230, 30, 30),
        );
        slj_imgproc::io::save_ppm(&panel, dir.join(format!("fig6_frame_{k:02}.ppm"))).unwrap();
        panels.push(panel);
    }
    let sheet = slj::viz::contact_sheet(&panels, 3);
    slj_imgproc::io::save_ppm(&sheet, dir.join("fig6_contact_sheet.ppm")).unwrap();
    println!(
        "\noverlay panels + contact sheet written to {}",
        dir.display()
    );

    let score = &report.score;
    println!("\nend-to-end score card for the (good) jump:\n{score}");
    println!(
        "Reading: silhouette IoU stays high through the jump; the tracked\n\
         model follows the true one within a few degrees on the large sticks\n\
         (small sticks — neck, foot — are noisier, as with any silhouette\n\
         method)."
    );
}
