//! Ablation B — the paper's grouped multi-crossover.
//!
//! The paper groups genes as `(x0,y0) (ρ0) (ρ1,ρ4) (ρ2,ρ5) (ρ3,ρ6,ρ7)` —
//! limb chains cross over as units. Is that grouping load-bearing? This
//! ablation compares, on the frame-2 fitting problem with full-range
//! initialisation (where crossover actually has work to do):
//!
//! * the paper's grouped crossover,
//! * uniform per-gene crossover,
//! * no crossover at all (mutation-only evolution).

use rand::rngs::StdRng;
use rand::Rng;
use slj::prelude::*;
use slj_bench::{banner, f1, f3, print_table};
use slj_ga::engine::{evolve, GaConfig, Problem};
use slj_ga::pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig};
use slj_video::render::render_silhouette;

/// Wraps the pose problem, replacing crossover with a per-gene uniform
/// swap.
struct UniformCrossover(PoseProblem);

impl Problem for UniformCrossover {
    type Genome = Pose;
    fn fitness(&self, g: &Pose) -> f64 {
        self.0.fitness(g)
    }
    fn random_genome(&self, rng: &mut StdRng) -> Pose {
        self.0.random_genome(rng)
    }
    fn crossover(&self, a: &Pose, b: &Pose, rng: &mut StdRng) -> (Pose, Pose) {
        let mut g1 = a.to_genes();
        let mut g2 = b.to_genes();
        for i in 0..g1.len() {
            // Same expected swap mass as the paper's rate over groups.
            if rng.gen_bool(0.2) {
                std::mem::swap(&mut g1[i], &mut g2[i]);
            }
        }
        (
            Pose::from_genes(&g1).expect("finite"),
            Pose::from_genes(&g2).expect("finite"),
        )
    }
    fn mutate(&self, g: &mut Pose, rng: &mut StdRng) {
        self.0.mutate(g, rng)
    }
    fn is_valid(&self, g: &Pose) -> bool {
        self.0.is_valid(g)
    }
    fn seeds(&self) -> Vec<Pose> {
        self.0.seeds()
    }
}

/// Wraps the pose problem, disabling crossover entirely.
struct NoCrossover(PoseProblem);

impl Problem for NoCrossover {
    type Genome = Pose;
    fn fitness(&self, g: &Pose) -> f64 {
        self.0.fitness(g)
    }
    fn random_genome(&self, rng: &mut StdRng) -> Pose {
        self.0.random_genome(rng)
    }
    fn crossover(&self, a: &Pose, b: &Pose, _rng: &mut StdRng) -> (Pose, Pose) {
        (*a, *b)
    }
    fn mutate(&self, g: &mut Pose, rng: &mut StdRng) {
        self.0.mutate(g, rng)
    }
    fn is_valid(&self, g: &Pose) -> bool {
        self.0.is_valid(g)
    }
    fn seeds(&self) -> Vec<Pose> {
        self.0.seeds()
    }
}

fn main() {
    let seed = 1102;
    banner(
        "Ablation B",
        "paper's grouped crossover vs uniform vs none (full-range init, 3 seeds)",
        seed,
    );
    let jump_cfg = JumpConfig::default();
    let truth = synthesize_jump(&jump_cfg);
    let camera = Camera::default();
    let target = truth.poses()[1];
    let sil = render_silhouette(&target, &jump_cfg.dims, &camera);

    // Mutation does the local work; a slightly higher rate than the
    // paper's 0.01 keeps mutation-only evolution from flatlining so the
    // comparison is fair.
    let problem_cfg = PoseProblemConfig {
        mutation_rate: 0.05,
        ..PoseProblemConfig::default()
    };
    let ga = GaConfig {
        population_size: 100,
        max_generations: 200,
        patience: None,
        ..GaConfig::default()
    };

    let mut rows = Vec::new();
    for variant in ["grouped (paper)", "uniform per-gene", "no crossover"] {
        let mut fit = 0.0;
        let mut angle = 0.0;
        let mut gens = 0.0;
        const SEEDS: [u64; 3] = [41, 42, 43];
        for &s in &SEEDS {
            let problem = PoseProblem::new(
                &sil,
                &jump_cfg.dims,
                &camera,
                InitStrategy::FullRange,
                problem_cfg,
            )
            .expect("problem");
            let mut rng: StdRng = rand::SeedableRng::seed_from_u64(s);
            let run = match variant {
                "grouped (paper)" => evolve(&problem, &ga, &mut rng),
                "uniform per-gene" => evolve(&UniformCrossover(problem), &ga, &mut rng),
                _ => evolve(&NoCrossover(problem), &ga, &mut rng),
            }
            .expect("evolve");
            fit += run.best_fitness;
            angle += run.best.error_against(&target).mean_angle_error();
            gens += run.generations_to_near_best(0.10) as f64;
        }
        let n = SEEDS.len() as f64;
        rows.push(vec![
            variant.into(),
            f3(fit / n),
            f1(angle / n),
            f1(gens / n),
        ]);
    }
    print_table(
        &[
            "crossover",
            "final fitness (mean)",
            "mean angle err (deg)",
            "gens to near-best (mean)",
        ],
        &rows,
    );
    println!(
        "\nReading: recombination clearly beats mutation-only search; the\n\
         paper's limb-chain grouping converges at least as fast as uniform\n\
         mixing because swapping a whole kinematic chain preserves a\n\
         coherent partial solution."
    );
}
