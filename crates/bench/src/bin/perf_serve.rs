//! Perf — the cross-session serve throughput benchmark behind
//! `BENCH_serve.json`.
//!
//! Measures `slj-serve`'s session fan-out: how many frames per second
//! the supervised manager sustains as the session count grows, and
//! what the persistent worker pool buys over the per-tick
//! spawn-a-scope baseline it replaced.
//!
//! The sweep runs {1, 4, 16, 64} concurrent sessions under three
//! parallelism policies (`Serial`, `Fixed(4)`, `Auto`), each policy
//! with both worker lifecycles where they differ:
//!
//! * `pool` — the persistent epoch-barrier [`WorkerPool`]: workers are
//!   created once per manager and parked between ticks;
//! * `spawn` — the pre-pool baseline, kept selectable via
//!   [`ServeConfig::worker_mode`]: every tick spawns and joins a fresh
//!   crossbeam scope.
//!
//! (With one effective thread both modes share the serial path, so
//! single-thread cells are reported once, as `pool`.)
//!
//! Each cell drives every session through the standard synthetic clip
//! at supervision cadence — the manager ticks [`TICKS_PER_OFFER`]
//! times per offered frame, the way a deadline-checking supervisor
//! outpaces its producers — then closes, drains and retires every
//! session. Reported per cell: frames/sec over the whole lifecycle,
//! p50/p99 per-tick step latency during the streaming phase, and the
//! shed + deadline-miss counts (zero under this polite drive; the
//! columns exist so regressions surface in the JSON diff).
//!
//! **Identity first.** Before any clock starts, a 2-wave churn drive
//! (sessions retiring into the slot pool, successors adopting the
//! recycled slots) is raced across every combination of worker mode ×
//! slot pool × parallelism, and all twelve runs must produce
//! byte-identical event streams, analyses, per-session metrics and
//! aggregate metrics. The speedups are exact optimisations, not
//! approximations; `identical: true` in the JSON records the assertion
//! ran.
//!
//! The JSON schema (`slj-perf-serve/1`) is documented in DESIGN.md §13.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p slj-bench --bin perf_serve            # full
//! cargo run --release -p slj-bench --bin perf_serve -- --quick # CI smoke
//! ```

use serde::Serialize;
use slj::prelude::*;
use slj_bench::{banner, f1, print_table};
use slj_ga::{GaConfig, PoseProblemConfig};
use slj_runtime::{available_threads, Parallelism};
use slj_serve::{
    DeadlineClock, EventKind, HealthEvent, OfferReply, ServeConfig, SessionConfig, SessionManager,
    WorkerMode,
};
use std::time::Instant;

/// Master seed of the synthetic clip every session streams.
const SEED: u64 = 11;

/// Where the JSON baseline lands (repo root, next to ROADMAP.md).
const OUT_PATH: &str = "BENCH_serve.json";

/// Supervision cadence: manager ticks per offered frame. A deadline
/// supervisor ticks on its own clock, not the producers' — at ~2 kHz
/// supervision (sub-millisecond deadline enforcement) against ~30 fps
/// cameras that is ~64 ticks per frame interval, most of which find
/// every session idle. That idle-heavy regime is where worker
/// lifecycle overhead shows: a spawned scope pays thread create/join
/// on every one of those ticks, the pool pays a parked-thread wakeup.
const TICKS_PER_OFFER: usize = 64;

#[derive(Debug, Clone, Serialize)]
struct ClipInfo {
    width: usize,
    height: usize,
    frames: usize,
    seed: u64,
    scene: &'static str,
}

/// One (sessions × policy × worker mode) cell, best of `repeats`.
#[derive(Debug, Clone, Serialize)]
struct CellReport {
    sessions: usize,
    /// `serial`, `fixed4` or `auto`.
    policy: &'static str,
    /// The effective worker count after `Parallelism::threads()`.
    threads: usize,
    /// `pool` or `spawn`.
    worker_mode: String,
    /// Sessions × frames over the full lifecycle wall time.
    frames_per_sec: f64,
    elapsed_ms: f64,
    /// Median per-tick latency during the streaming phase.
    p50_step_ms: f64,
    /// 99th-percentile per-tick latency during the streaming phase.
    p99_step_ms: f64,
    /// Frames rejected with `OfferReply::Overloaded`.
    sheds: u64,
    /// `EventKind::DeadlineMiss` events across all sessions.
    deadline_misses: u64,
}

/// The whole benchmark: schema documented in DESIGN.md §13.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Schema identifier; bump on breaking change.
    schema: &'static str,
    /// `full` or `quick` (CI smoke: one repeat — timings are not
    /// comparable with `full`).
    mode: &'static str,
    clip: ClipInfo,
    /// Timed runs per cell; the best (minimum elapsed) is reported.
    repeats: usize,
    /// Host threads reported by `std::thread::available_parallelism`.
    host_threads: usize,
    /// Manager ticks per offered frame (supervision cadence).
    ticks_per_offer: usize,
    /// Every worker mode × slot pool × parallelism combination
    /// produced byte-identical events, analyses and metrics under the
    /// churn drive (asserted before timing).
    identical: bool,
    /// Combinations raced in the identity check.
    identity_combos: usize,
    cells: Vec<CellReport>,
    /// Best pooled frames/sec ÷ best spawn frames/sec at 16 sessions
    /// (parallel policies only — the pool's headline number).
    speedup_pool_vs_spawn_16: f64,
}

/// A deliberately small per-session analyzer budget: the bench
/// measures the *service* — fan-out, queueing, worker lifecycle — so
/// the per-frame analysis is kept light (same spirit as the
/// serve_churn_alloc test's micro config).
fn micro_config() -> AnalyzerConfig {
    let fast = AnalyzerConfig::fast();
    AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: 20,
        },
        tracker: TrackerConfig {
            ga: GaConfig {
                population_size: 8,
                max_generations: 2,
                patience: Some(1),
                ..fast.tracker.ga
            },
            problem: PoseProblemConfig {
                stride: 10,
                ..fast.tracker.problem
            },
            ..fast.tracker
        },
        // A short warmup window keeps the per-session background
        // median cheap — the bench measures the service, and the
        // background cost is identical in every cell anyway.
        ..fast.into_streaming(8)
    }
}

fn serve_config(
    sessions: usize,
    parallelism: Parallelism,
    worker_mode: WorkerMode,
    slot_pool: bool,
    clip_frames: usize,
) -> ServeConfig {
    ServeConfig {
        max_sessions: sessions,
        queue_depth: 4,
        clock: DeadlineClock::Scripted,
        // Checkpoints clone live analyzer state; keep them out of the
        // measured loop so cells compare worker lifecycles, not
        // checkpoint cadence.
        checkpoint_interval: clip_frames + 1,
        stall_ticks: 0,
        parallelism,
        worker_mode,
        slot_pool,
        ..ServeConfig::default()
    }
}

/// Everything a run produces that must be byte-identical across
/// worker modes, slot pooling and parallelism.
struct RunArtifacts {
    events: Vec<HealthEvent>,
    results: Vec<Option<JumpAnalysis>>,
    metrics: Vec<String>,
    aggregate: String,
}

struct RunTiming {
    elapsed_ms: f64,
    /// Per-tick wall latencies during the streaming phase.
    step_ms: Vec<f64>,
    sheds: u64,
    deadline_misses: u64,
}

/// Drives `waves` successive waves of `per_wave` sessions through the
/// clip at supervision cadence and retires each wave into the slot
/// pool. One wave is the throughput shape; two waves exercise slot
/// recycling for the identity race.
fn run(
    config: ServeConfig,
    waves: usize,
    per_wave: usize,
    jump: &SyntheticJump,
    session: &SessionConfig,
) -> (RunTiming, RunArtifacts) {
    let mut manager = SessionManager::new(config);
    let mut events = Vec::new();
    let mut results = Vec::new();
    let mut metrics = Vec::new();
    let mut step_ms = Vec::new();
    let mut sheds = 0u64;

    let start = Instant::now();
    for _ in 0..waves {
        let ids: Vec<usize> = (0..per_wave)
            .map(|_| manager.open(session.clone()).expect("open session"))
            .collect();
        for frame in jump.video.iter() {
            for &id in &ids {
                match manager.offer(id, frame).expect("offer") {
                    OfferReply::Accepted { .. } => {}
                    OfferReply::Overloaded { .. } => sheds += 1,
                }
            }
            for _ in 0..TICKS_PER_OFFER {
                let t = Instant::now();
                manager.tick();
                step_ms.push(t.elapsed().as_secs_f64() * 1e3);
            }
        }
        for &id in &ids {
            manager.close(id).expect("close");
        }
        manager.run_until_idle();
        manager.drain_events_into(&mut events);
        for &id in &ids {
            results.push(manager.take_result(id).and_then(Result::ok));
            metrics.push(manager.metrics(id).expect("metrics").render());
            manager.retire(id).expect("retire");
        }
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    let deadline_misses = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::DeadlineMiss { .. }))
        .count() as u64;
    let aggregate = manager.aggregate_metrics().render();
    (
        RunTiming {
            elapsed_ms,
            step_ms,
            sheds,
            deadline_misses,
        },
        RunArtifacts {
            events,
            results,
            metrics,
            aggregate,
        },
    )
}

/// Races every worker mode × slot pool × parallelism combination
/// through the 2-wave churn drive and asserts byte-identical output.
/// Returns the number of combinations raced.
fn assert_identity(jump: &SyntheticJump, session: &SessionConfig) -> usize {
    const WAVES: usize = 2;
    const PER_WAVE: usize = 2;
    let mut reference: Option<(RunArtifacts, &'static str)> = None;
    let mut combos = 0;
    for worker_mode in [WorkerMode::Pool, WorkerMode::Spawn] {
        for slot_pool in [true, false] {
            for (policy, parallelism) in [
                ("serial", Parallelism::Serial),
                ("fixed4", Parallelism::Fixed(4)),
                ("auto", Parallelism::Auto),
            ] {
                let (_, artifacts) = run(
                    serve_config(
                        PER_WAVE,
                        parallelism,
                        worker_mode,
                        slot_pool,
                        jump.video.len(),
                    ),
                    WAVES,
                    PER_WAVE,
                    jump,
                    session,
                );
                combos += 1;
                match &reference {
                    None => reference = Some((artifacts, policy)),
                    Some((r, _)) => {
                        let what = format!("{worker_mode} slot_pool={slot_pool} {policy}");
                        assert_eq!(r.events, artifacts.events, "{what}: events diverged");
                        assert_eq!(r.results, artifacts.results, "{what}: analyses diverged");
                        assert_eq!(r.metrics, artifacts.metrics, "{what}: metrics diverged");
                        assert_eq!(
                            r.aggregate, artifacts.aggregate,
                            "{what}: aggregate metrics diverged"
                        );
                    }
                }
            }
        }
    }
    combos
}

/// `(p50, p99)` of per-tick latencies (nearest-rank on the sorted
/// sample; 0 for an empty sample).
fn percentiles(mut samples: Vec<f64>) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    samples.sort_by(f64::total_cmp);
    let rank = |q: f64| samples[((samples.len() as f64 * q).ceil() as usize).max(1) - 1];
    (rank(0.50), rank(0.99))
}

fn time_cell(
    sessions: usize,
    policy: &'static str,
    parallelism: Parallelism,
    worker_mode: WorkerMode,
    repeats: usize,
    jump: &SyntheticJump,
    session: &SessionConfig,
) -> CellReport {
    let mut best: Option<RunTiming> = None;
    for _ in 0..repeats {
        let (timing, _) = run(
            serve_config(sessions, parallelism, worker_mode, true, jump.video.len()),
            1,
            sessions,
            jump,
            session,
        );
        if best
            .as_ref()
            .is_none_or(|b| timing.elapsed_ms < b.elapsed_ms)
        {
            best = Some(timing);
        }
    }
    let best = best.expect("repeats >= 1");
    let (p50, p99) = percentiles(best.step_ms.clone());
    CellReport {
        sessions,
        policy,
        threads: parallelism.threads(),
        worker_mode: worker_mode.to_string(),
        frames_per_sec: (sessions * jump.video.len()) as f64 / (best.elapsed_ms / 1e3),
        elapsed_ms: best.elapsed_ms,
        p50_step_ms: p50,
        p99_step_ms: p99,
        sheds: best.sheds,
        deadline_misses: best.deadline_misses,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (mode, repeats, session_sweep): (_, _, &[usize]) = if quick {
        ("quick", 1, &[1, 4, 16])
    } else {
        ("full", 3, &[1, 4, 16, 64])
    };

    banner(
        "Perf serve",
        "cross-session throughput: persistent worker pool vs per-tick spawn",
        SEED,
    );
    println!(
        "   mode {mode}, {repeats} repeat(s), supervision cadence {TICKS_PER_OFFER} \
         tick(s)/frame, host threads {}\n",
        available_threads()
    );

    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), SEED);
    let session = SessionConfig {
        analyzer: micro_config(),
        camera: scene.camera,
        first_pose: jump.poses.poses()[0],
        fps: jump.video.fps(),
    };
    let clip = ClipInfo {
        width: jump.video.dims().0,
        height: jump.video.dims().1,
        frames: jump.video.len(),
        seed: SEED,
        scene: "compact-clean",
    };

    // Correctness before clocks: every lifecycle knob must be
    // invisible to outputs.
    let identity_combos = assert_identity(&jump, &session);
    println!(
        "   identity: {identity_combos} worker-mode x slot-pool x parallelism \
         combinations byte-identical\n"
    );

    let policies = [
        ("serial", Parallelism::Serial),
        ("fixed4", Parallelism::Fixed(4)),
        ("auto", Parallelism::Auto),
    ];
    let mut cells = Vec::new();
    for &sessions in session_sweep {
        for (policy, parallelism) in policies {
            // One effective thread means pool and spawn share the
            // serial path: report the cell once.
            let modes: &[WorkerMode] = if parallelism.threads().min(sessions) <= 1 {
                &[WorkerMode::Pool]
            } else {
                &[WorkerMode::Pool, WorkerMode::Spawn]
            };
            for &worker_mode in modes {
                cells.push(time_cell(
                    sessions,
                    policy,
                    parallelism,
                    worker_mode,
                    repeats,
                    &jump,
                    &session,
                ));
            }
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.sessions.to_string(),
                c.policy.to_owned(),
                c.threads.to_string(),
                c.worker_mode.clone(),
                format!("{:.0}", c.frames_per_sec),
                f1(c.elapsed_ms),
                format!("{:.3}", c.p50_step_ms),
                format!("{:.3}", c.p99_step_ms),
                c.sheds.to_string(),
                c.deadline_misses.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "sessions",
            "policy",
            "threads",
            "workers",
            "frames/s",
            "elapsed ms",
            "p50 ms",
            "p99 ms",
            "sheds",
            "misses",
        ],
        &rows,
    );

    // The headline: pool vs spawn at 16 sessions, parallel policies.
    let best_fps = |mode: &str| {
        cells
            .iter()
            .filter(|c| c.sessions == 16 && c.threads > 1 && c.worker_mode == mode)
            .map(|c| c.frames_per_sec)
            .fold(0.0f64, f64::max)
    };
    let (pool_16, spawn_16) = (best_fps("pool"), best_fps("spawn"));
    let speedup_pool_vs_spawn_16 = if spawn_16 > 0.0 {
        pool_16 / spawn_16
    } else {
        0.0
    };
    println!(
        "\npersistent pool vs per-tick spawn at 16 sessions: {speedup_pool_vs_spawn_16:.2}x \
         frames/sec ({pool_16:.0} vs {spawn_16:.0})"
    );

    let report = BenchReport {
        schema: "slj-perf-serve/1",
        mode,
        clip,
        repeats,
        host_threads: available_threads(),
        ticks_per_offer: TICKS_PER_OFFER,
        identical: true,
        identity_combos,
        cells,
        speedup_pool_vs_spawn_16,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise");
    std::fs::write(OUT_PATH, json + "\n").expect("write BENCH_serve.json");
    println!("\nwrote {OUT_PATH}");
}
