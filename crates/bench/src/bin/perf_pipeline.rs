//! Perf — the reproducible pipeline benchmark behind
//! `BENCH_pipeline.json`.
//!
//! Times the three expensive layers on the standard 20-frame synthetic
//! clip (320×240, default scene, seed 5):
//!
//! * **segmentation** — `SegmentPipeline::run` alone;
//! * **tracking** — `TemporalTracker::track` alone, on pre-segmented
//!   silhouettes;
//! * **analyze** — the full `JumpAnalyzer::analyze` (segmentation +
//!   tracking + scoring).
//!
//! Each layer is measured under four configurations spanning the two
//! optimisation axes this workspace exposes:
//!
//! * `baseline-serial` — one thread, Eq. 3 branch-and-bound pruning
//!   *off*, fitness memo *off*: the reference an optimised run is
//!   compared against;
//! * `serial-pruned` — pruning on, memo off;
//! * `serial-optimised` — pruning + memo, still one thread (the
//!   algorithmic win, independent of core count);
//! * `parallel-optimised` — pruning + memo + N worker threads (default
//!   4) fanned out over segmentation frames and GA genomes.
//!
//! Every configuration is asserted to produce the identical analysis
//! (same pose bits, same score) before any number is reported — the
//! speedups are exact optimisations, not approximations. The JSON
//! schema is documented in DESIGN.md §Performance.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p slj-bench --bin perf_pipeline            # full
//! cargo run --release -p slj-bench --bin perf_pipeline -- --quick # CI smoke
//! ```

use serde::Serialize;
use slj::prelude::*;
use slj_bench::{banner, f1, print_table};
use slj_imgproc::mask::Mask;
use slj_segment::pipeline::SegmentPipeline;
use std::time::Instant;

/// Master seed of the standard clip (shared with the Criterion
/// `end_to_end` bench).
const SEED: u64 = 5;

/// Where the JSON baseline lands (repo root, next to ROADMAP.md).
const OUT_PATH: &str = "BENCH_pipeline.json";

#[derive(Debug, Clone, Serialize)]
struct ClipInfo {
    width: usize,
    height: usize,
    frames: usize,
    seed: u64,
    scene: &'static str,
}

/// One configuration's timings, milliseconds (best of `repeats`).
#[derive(Debug, Clone, Serialize)]
struct ConfigReport {
    name: &'static str,
    threads: usize,
    eq3_pruning: bool,
    fitness_memo: bool,
    segmentation_ms: f64,
    tracking_ms: f64,
    analyze_ms: f64,
}

/// The whole benchmark: schema documented in DESIGN.md §Performance.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Schema identifier; bump on breaking change.
    schema: &'static str,
    /// `full` or `quick` (CI smoke run: fewer repeats, reduced GA
    /// budget — timings are not comparable with `full`).
    mode: &'static str,
    clip: ClipInfo,
    /// Timed runs per cell; the best (minimum) is reported.
    repeats: usize,
    /// Host threads reported by `std::thread::available_parallelism`.
    host_threads: usize,
    configs: Vec<ConfigReport>,
    /// `baseline-serial` time ÷ `parallel-optimised` time, per layer.
    speedup_segmentation: f64,
    speedup_tracking: f64,
    speedup_analyze: f64,
}

struct Variant {
    name: &'static str,
    parallelism: Parallelism,
    eq3_pruning: bool,
    fitness_memo: bool,
}

fn variants(threads: usize) -> Vec<Variant> {
    vec![
        Variant {
            name: "baseline-serial",
            parallelism: Parallelism::Serial,
            eq3_pruning: false,
            fitness_memo: false,
        },
        Variant {
            name: "serial-pruned",
            parallelism: Parallelism::Serial,
            eq3_pruning: true,
            fitness_memo: false,
        },
        Variant {
            name: "serial-optimised",
            parallelism: Parallelism::Serial,
            eq3_pruning: true,
            fitness_memo: true,
        },
        Variant {
            name: "parallel-optimised",
            parallelism: Parallelism::Fixed(threads),
            eq3_pruning: true,
            fitness_memo: true,
        },
    ]
}

fn analyzer_config(base: &AnalyzerConfig, v: &Variant) -> AnalyzerConfig {
    let mut cfg = base.clone();
    cfg.parallelism = v.parallelism;
    cfg.tracker.problem.eq3_pruning = v.eq3_pruning;
    cfg.tracker.problem.fitness_memo = v.fitness_memo;
    cfg
}

/// Best-of-`repeats` wall time of `work`, milliseconds.
fn time_ms<T>(repeats: usize, mut work: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = work();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("repeats >= 1"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes an integer"))
        .unwrap_or(4);

    let (mode, repeats, base) = if quick {
        ("quick", 1, AnalyzerConfig::fast())
    } else {
        ("full", 3, AnalyzerConfig::default())
    };
    banner(
        "Perf",
        "pipeline timings: serial baseline vs pruning + memo + threads",
        SEED,
    );
    println!("   mode {mode}, {repeats} repeat(s), {threads} worker threads\n");

    let scene = SceneConfig::default();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), SEED);
    let first_pose = jump.poses.poses()[0];
    let clip = ClipInfo {
        width: jump.video.dims().0,
        height: jump.video.dims().1,
        frames: jump.video.len(),
        seed: SEED,
        scene: "default",
    };

    let mut configs = Vec::new();
    let mut reference: Option<AnalysisReport> = None;
    for v in variants(threads) {
        let cfg = analyzer_config(&base, &v);

        // Layer 1: segmentation alone.
        let pipeline = SegmentPipeline::new(slj_segment::pipeline::PipelineConfig {
            parallelism: cfg.parallelism,
            ..cfg.segmentation.clone()
        });
        let (segmentation_ms, seg) =
            time_ms(repeats, || pipeline.run(&jump.video).expect("segmentation"));

        // Layer 2: tracking alone, on the already-segmented masks.
        let silhouettes: Vec<Mask> = seg.frames.iter().map(|s| s.final_mask.clone()).collect();
        let tracker = TemporalTracker::new(TrackerConfig {
            parallelism: cfg.parallelism,
            ..cfg.tracker
        });
        let (tracking_ms, _) = time_ms(repeats, || {
            tracker
                .track(&silhouettes, first_pose, &cfg.dims, &scene.camera)
                .expect("tracking")
        });

        // Layer 3: the full analysis.
        let analyzer = JumpAnalyzer::new(cfg);
        let (analyze_ms, report) = time_ms(repeats, || {
            analyzer
                .analyze(&jump.video, &scene.camera, first_pose)
                .expect("analysis")
        });

        // Every variant must produce the identical analysis — the
        // optimisations are exact, so a mismatch is a bug, not noise.
        match &reference {
            None => reference = Some(report),
            Some(r) => {
                assert_eq!(r.poses, report.poses, "{}: poses diverged", v.name);
                assert_eq!(r.score, report.score, "{}: score diverged", v.name);
                assert_eq!(r.health, report.health, "{}: health diverged", v.name);
            }
        }

        configs.push(ConfigReport {
            name: v.name,
            threads: v.parallelism.threads(),
            eq3_pruning: v.eq3_pruning,
            fitness_memo: v.fitness_memo,
            segmentation_ms,
            tracking_ms,
            analyze_ms,
        });
    }

    let baseline = &configs[0];
    let optimised = configs.last().expect("variants");
    let report = BenchReport {
        schema: "slj-perf-pipeline/1",
        mode,
        clip,
        repeats,
        host_threads: Parallelism::Auto.threads(),
        speedup_segmentation: baseline.segmentation_ms / optimised.segmentation_ms,
        speedup_tracking: baseline.tracking_ms / optimised.tracking_ms,
        speedup_analyze: baseline.analyze_ms / optimised.analyze_ms,
        configs,
    };

    let rows: Vec<Vec<String>> = report
        .configs
        .iter()
        .map(|c| {
            vec![
                c.name.to_owned(),
                c.threads.to_string(),
                if c.eq3_pruning { "on" } else { "off" }.to_owned(),
                if c.fitness_memo { "on" } else { "off" }.to_owned(),
                f1(c.segmentation_ms),
                f1(c.tracking_ms),
                f1(c.analyze_ms),
            ]
        })
        .collect();
    print_table(
        &[
            "config",
            "threads",
            "prune",
            "memo",
            "segment ms",
            "track ms",
            "analyze ms",
        ],
        &rows,
    );
    println!(
        "\nspeedup vs baseline-serial: segmentation {:.2}x, tracking {:.2}x, analyze {:.2}x",
        report.speedup_segmentation, report.speedup_tracking, report.speedup_analyze
    );
    println!("(all configurations produced byte-identical analyses)");

    let json = serde_json::to_string_pretty(&report).expect("serialise");
    std::fs::write(OUT_PATH, json + "\n").expect("write BENCH_pipeline.json");
    println!("\nwrote {OUT_PATH}");
}
