//! Perf — the reproducible pipeline benchmark behind
//! `BENCH_pipeline.json`.
//!
//! Three measurement modes (select with
//! `--mode pipeline|segmentation|tracking|all`, default `all`):
//!
//! **pipeline** times the three expensive layers on the standard
//! 20-frame synthetic clip (320×240, default scene, seed 5):
//!
//! * **segmentation** — `SegmentPipeline::run_prepared` alone: every
//!   configuration reuses one background estimate + HSV cache per
//!   config, the way the streaming analyzer does (the shared
//!   estimation cost is reported separately as `background_ms`);
//! * **tracking** — `TemporalTracker::track` alone, on pre-segmented
//!   silhouettes;
//! * **analyze** — the full `JumpAnalyzer::analyze` (background +
//!   segmentation + tracking + scoring).
//!
//! Each layer is measured under six configurations spanning the three
//! optimisation axes this workspace exposes:
//!
//! * `baseline-serial` — one thread, Eq. 3 branch-and-bound pruning
//!   *off*, fitness memo *off*: the reference an optimised run is
//!   compared against;
//! * `serial-pruned` — pruning on, memo off;
//! * `serial-optimised` — pruning + memo, still one thread, scalar
//!   Eq. 3 kernel (the pre-lanes live reference kept for continuity
//!   with schema 2);
//! * `parallel-optimised` — pruning + memo + N worker threads
//!   (`--threads`, default 4, clamped to the host's
//!   `available_parallelism`), scalar kernel;
//! * `lanes-serial` — pruning + memo + the lane-parallel SoA Eq. 3
//!   kernel with batched population evaluation, one thread;
//! * `lanes-parallel` — the lane kernel plus worker threads: the
//!   headline configuration the speedups are quoted against.
//!
//! **segmentation** isolates the per-frame stage kernels (the six
//! Section-2 stages, *excluding* the background estimation every engine
//! shares) and compares:
//!
//! * `scalar-reference` — the pre-bit-packing implementation kept alive
//!   in `slj_bench::scalar`: per-pixel `Vec<bool>` loops, a fresh
//!   allocation per stage, and the background pixel re-converted to HSV
//!   for every Eq. 1 shadow test;
//! * `packed-serial` — `FrameSegmenter` with bit-packed masks, the
//!   cached background-HSV plane, and arena-backed scratch;
//! * `packed-parallel` — the same kernel fanned out in contiguous frame
//!   chunks (per-stage times are summed across workers, so they are
//!   CPU time; `kernel_ms` is wall time);
//! * `packed-streaming` — the kernel as `StreamingAnalyzer` drives it:
//!   frames arrive one at a time and only the previous frame is
//!   retained.
//!
//! **tracking** races the Eq. 3 tracking kernels head to head on
//! pre-segmented silhouettes, with pruning + memo on everywhere:
//!
//! * `scalar-reference` — the live scalar genome-at-a-time path;
//! * `lanes-serial` — the SoA lane kernel with batched population
//!   evaluation, one thread;
//! * `lanes-parallel` — the lane kernel under worker threads.
//!
//! It also times the full serial `JumpAnalyzer::analyze` with the lane
//! kernel (`analyze_ms`) — the end-to-end per-clip figure.
//!
//! Every configuration is asserted to produce the identical output
//! (pipeline mode: same pose bits, same score; segmentation mode: same
//! stage masks for all seven planes; tracking mode: bit-identical poses
//! and fitness values across kernels and across Serial / Fixed(4) /
//! Auto parallelism) before any number is reported — the speedups are
//! exact optimisations, not approximations. Configurations whose
//! thread request exceeded the host's cores carry `"clamped": true` in
//! the JSON and a warning in the console summary: their parallel
//! timings understate what a wider machine would show. The JSON schema
//! (`slj-perf-pipeline/3`) is documented in DESIGN.md §Performance.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p slj-bench --bin perf_pipeline            # full
//! cargo run --release -p slj-bench --bin perf_pipeline -- --quick # CI smoke
//! cargo run --release -p slj-bench --bin perf_pipeline -- --mode tracking
//! ```

use serde::Serialize;
use slj::prelude::*;
use slj_bench::scalar::ScalarSegmenter;
use slj_bench::{banner, f1, print_table};
use slj_ga::tracker::TrackingRun;
use slj_ga::Eq3Kernel;
use slj_imgproc::mask::Mask;
use slj_runtime::available_threads;
use slj_segment::background::BackgroundEstimator;
use slj_segment::ghosts::GhostConfig;
use slj_segment::pipeline::{FrameStages, PipelineConfig, SegmentPipeline};
use slj_segment::{spans, FrameSegmenter, PreparedBackground, Profiler};
use slj_video::Frame;
use std::sync::Arc;
use std::time::Instant;

/// Master seed of the standard clip (shared with the Criterion
/// `end_to_end` bench).
const SEED: u64 = 5;

/// Where the JSON baseline lands (repo root, next to ROADMAP.md).
const OUT_PATH: &str = "BENCH_pipeline.json";

#[derive(Debug, Clone, Serialize)]
struct ClipInfo {
    width: usize,
    height: usize,
    frames: usize,
    seed: u64,
    scene: &'static str,
}

/// One configuration's layer timings, milliseconds (best of `repeats`).
#[derive(Debug, Clone, Serialize)]
struct ConfigReport {
    name: &'static str,
    /// The thread count the configuration asked for.
    threads_requested: usize,
    /// The count actually used after clamping to the host.
    threads: usize,
    /// `true` when the host had fewer cores than requested — the
    /// parallel timings understate a wider machine.
    clamped: bool,
    eq3_pruning: bool,
    fitness_memo: bool,
    /// The Eq. 3 kernel (`"Scalar"` genome-at-a-time or `"Lanes"`
    /// SoA + batched); moot for `baseline-serial`, whose unpruned path
    /// predates both.
    kernel: Eq3Kernel,
    segmentation_ms: f64,
    tracking_ms: f64,
    analyze_ms: f64,
}

/// The `--mode pipeline` section.
#[derive(Debug, Serialize)]
struct PipelineSection {
    /// The shared per-clip background estimation cost, excluded from
    /// `segmentation_ms` (every config reuses one prepared background,
    /// like the streaming analyzer) but still inside `analyze_ms`.
    background_ms: f64,
    configs: Vec<ConfigReport>,
    /// `baseline-serial` time ÷ `lanes-parallel` time, per layer.
    speedup_segmentation: f64,
    speedup_tracking: f64,
    speedup_analyze: f64,
}

/// One segmentation engine's kernel timings, milliseconds (best of
/// `repeats`; stage columns come from the best run).
#[derive(Debug, Clone, Serialize)]
struct KernelReport {
    name: &'static str,
    threads_requested: usize,
    threads: usize,
    /// `true` when the host had fewer cores than requested.
    clamped: bool,
    extract_ms: f64,
    denoise_ms: f64,
    despot_ms: f64,
    deghost_ms: f64,
    fill_ms: f64,
    shadow_ms: f64,
    /// Wall time of the whole per-frame loop (for `packed-parallel`
    /// this is less than the CPU-time stage sum when workers overlap).
    kernel_ms: f64,
}

/// The `--mode segmentation` section.
#[derive(Debug, Serialize)]
struct SegmentationSection {
    /// Ghost suppression on (all six stages exercised).
    ghosts: bool,
    /// The shared background-estimation cost every engine pays before
    /// the first frame; excluded from the kernel timings.
    background_ms: f64,
    configs: Vec<KernelReport>,
    /// `scalar-reference` ÷ `packed-serial` kernel wall time.
    speedup_kernel_serial: f64,
    /// `scalar-reference` ÷ `packed-streaming` kernel wall time.
    speedup_kernel_streaming: f64,
    /// `scalar-reference` ÷ the best packed kernel wall time.
    speedup_kernel_best: f64,
    /// All engines produced byte-identical stage masks (asserted).
    identical: bool,
}

/// One tracking kernel's timing, milliseconds (best of `repeats`).
#[derive(Debug, Clone, Serialize)]
struct TrackingReport {
    name: &'static str,
    kernel: Eq3Kernel,
    threads_requested: usize,
    threads: usize,
    /// `true` when the host had fewer cores than requested.
    clamped: bool,
    tracking_ms: f64,
}

/// The `--mode tracking` section: the Eq. 3 kernel race.
#[derive(Debug, Serialize)]
struct TrackingSection {
    /// Pruning + fitness memo on for every entrant.
    eq3_pruning: bool,
    fitness_memo: bool,
    configs: Vec<TrackingReport>,
    /// Full serial `JumpAnalyzer::analyze` with the lane kernel — the
    /// end-to-end per-clip cost (background + segmentation + tracking
    /// + scoring).
    analyze_ms: f64,
    /// `scalar-reference` ÷ `lanes-serial` tracking wall time.
    speedup_tracking_serial: f64,
    /// `scalar-reference` ÷ the best lanes tracking wall time.
    speedup_tracking_best: f64,
    /// Poses and fitness values bit-identical across kernels and
    /// across Serial / Fixed(4) / Auto parallelism (asserted).
    identical: bool,
}

/// The whole benchmark: schema documented in DESIGN.md §Performance.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Schema identifier; bump on breaking change.
    schema: &'static str,
    /// `full` or `quick` (CI smoke run: fewer repeats, reduced GA
    /// budget — timings are not comparable with `full`).
    mode: &'static str,
    clip: ClipInfo,
    /// Timed runs per cell; the best (minimum) is reported.
    repeats: usize,
    /// Host threads reported by `std::thread::available_parallelism`.
    host_threads: usize,
    /// `null` when the pipeline section was skipped.
    pipeline: Option<PipelineSection>,
    /// `null` when the segmentation section was skipped.
    segmentation: Option<SegmentationSection>,
    /// `null` when the tracking section was skipped.
    tracking: Option<TrackingSection>,
}

struct Variant {
    name: &'static str,
    threads_requested: usize,
    parallelism: Parallelism,
    eq3_pruning: bool,
    fitness_memo: bool,
    kernel: Eq3Kernel,
}

fn variants(requested: usize, resolved: usize) -> Vec<Variant> {
    vec![
        Variant {
            name: "baseline-serial",
            threads_requested: 1,
            parallelism: Parallelism::Serial,
            eq3_pruning: false,
            fitness_memo: false,
            kernel: Eq3Kernel::Scalar,
        },
        Variant {
            name: "serial-pruned",
            threads_requested: 1,
            parallelism: Parallelism::Serial,
            eq3_pruning: true,
            fitness_memo: false,
            kernel: Eq3Kernel::Scalar,
        },
        Variant {
            name: "serial-optimised",
            threads_requested: 1,
            parallelism: Parallelism::Serial,
            eq3_pruning: true,
            fitness_memo: true,
            kernel: Eq3Kernel::Scalar,
        },
        Variant {
            name: "parallel-optimised",
            threads_requested: requested,
            parallelism: Parallelism::Fixed(resolved),
            eq3_pruning: true,
            fitness_memo: true,
            kernel: Eq3Kernel::Scalar,
        },
        Variant {
            name: "lanes-serial",
            threads_requested: 1,
            parallelism: Parallelism::Serial,
            eq3_pruning: true,
            fitness_memo: true,
            kernel: Eq3Kernel::Lanes,
        },
        Variant {
            name: "lanes-parallel",
            threads_requested: requested,
            parallelism: Parallelism::Fixed(resolved),
            eq3_pruning: true,
            fitness_memo: true,
            kernel: Eq3Kernel::Lanes,
        },
    ]
}

fn analyzer_config(base: &AnalyzerConfig, v: &Variant) -> AnalyzerConfig {
    let mut cfg = base.clone();
    cfg.parallelism = v.parallelism;
    cfg.tracker.problem.eq3_pruning = v.eq3_pruning;
    cfg.tracker.problem.fitness_memo = v.fitness_memo;
    cfg.tracker.problem.eq3_kernel = v.kernel;
    cfg
}

/// Best-of-`repeats` wall time of `work`, milliseconds.
fn time_ms<T>(repeats: usize, mut work: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let out = work();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("repeats >= 1"))
}

/// Best-of-`repeats` wall time of a kernel loop, keeping the
/// span-profiled stage breakdown of the best run.
fn time_kernel(repeats: usize, mut work: impl FnMut() -> Profiler) -> (f64, Profiler) {
    let mut best = f64::INFINITY;
    let mut best_profile = Profiler::default();
    for _ in 0..repeats {
        let start = Instant::now();
        let profile = work();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < best {
            best = ms;
            best_profile = profile;
        }
    }
    (best, best_profile)
}

fn kernel_report(
    name: &'static str,
    threads_requested: usize,
    threads: usize,
    kernel_ms: f64,
    p: &Profiler,
) -> KernelReport {
    KernelReport {
        name,
        threads_requested,
        threads,
        clamped: threads < threads_requested,
        extract_ms: p.ms(spans::SEGMENT_EXTRACT),
        denoise_ms: p.ms(spans::SEGMENT_DENOISE),
        despot_ms: p.ms(spans::SEGMENT_DESPOT),
        deghost_ms: p.ms(spans::SEGMENT_DEGHOST),
        fill_ms: p.ms(spans::SEGMENT_FILL),
        shadow_ms: p.ms(spans::SEGMENT_SHADOW),
        kernel_ms,
    }
}

fn previous_input(inputs: &[Frame], k: usize) -> Option<&Frame> {
    k.checked_sub(1).map(|p| &inputs[p])
}

/// Asserts two tracking runs are bit-identical: same pose genes, same
/// fitness bits, same search diagnostics, frame by frame.
fn assert_tracks_identical(reference: &TrackingRun, other: &TrackingRun, what: &str) {
    assert_eq!(
        reference.frames.len(),
        other.frames.len(),
        "{what}: frame count diverged"
    );
    for (k, (r, o)) in reference.frames.iter().zip(&other.frames).enumerate() {
        assert_eq!(
            r.pose.to_genes().map(f64::to_bits),
            o.pose.to_genes().map(f64::to_bits),
            "{what}: pose bits diverged, frame {k}"
        );
        assert_eq!(
            r.fitness.to_bits(),
            o.fitness.to_bits(),
            "{what}: fitness bits diverged, frame {k}"
        );
    }
    assert_eq!(reference.frames, other.frames, "{what}: results diverged");
}

fn run_pipeline_section(
    base: &AnalyzerConfig,
    jump: &SyntheticJump,
    scene: &SceneConfig,
    repeats: usize,
    threads_requested: usize,
    threads_resolved: usize,
) -> PipelineSection {
    let first_pose = jump.poses.poses()[0];

    // The background estimate is a per-clip cost shared by every
    // configuration (and reused across re-analyses by the streaming
    // analyzer), so it is timed once and factored out of the
    // segmentation layer.
    let (background_ms, background) = time_ms(repeats, || {
        BackgroundEstimator::new(base.segmentation.background)
            .estimate(&jump.video)
            .expect("background")
    });
    let prepared = Arc::new(PreparedBackground::new(&background.image));

    let mut configs = Vec::new();
    let mut reference: Option<AnalysisReport> = None;
    for v in variants(threads_requested, threads_resolved) {
        let cfg = analyzer_config(base, &v);

        // Layer 1: segmentation alone, on the shared prepared
        // background (the per-run background clone is two buffer
        // memcpys — noise next to the per-frame stages).
        let pipeline = SegmentPipeline::new(PipelineConfig {
            parallelism: cfg.parallelism,
            ..cfg.segmentation.clone()
        });
        let (segmentation_ms, seg) = time_ms(repeats, || {
            pipeline
                .run_prepared(&jump.video, background.clone(), Arc::clone(&prepared))
                .expect("segmentation")
        });

        // Layer 2: tracking alone, on the already-segmented masks.
        let silhouettes: Vec<Mask> = seg.frames.iter().map(|s| s.final_mask.clone()).collect();
        let tracker = TemporalTracker::new(TrackerConfig {
            parallelism: cfg.parallelism,
            ..cfg.tracker
        });
        let (tracking_ms, _) = time_ms(repeats, || {
            tracker
                .track(&silhouettes, first_pose, &cfg.dims, &scene.camera)
                .expect("tracking")
        });

        // Layer 3: the full analysis.
        let analyzer = JumpAnalyzer::new(cfg);
        let (analyze_ms, report) = time_ms(repeats, || {
            analyzer
                .analyze(&jump.video, &scene.camera, first_pose)
                .expect("analysis")
        });

        // Every variant must produce the identical analysis — the
        // optimisations are exact, so a mismatch is a bug, not noise.
        match &reference {
            None => reference = Some(report),
            Some(r) => {
                assert_eq!(r.poses, report.poses, "{}: poses diverged", v.name);
                assert_eq!(r.score, report.score, "{}: score diverged", v.name);
                assert_eq!(r.health, report.health, "{}: health diverged", v.name);
            }
        }

        configs.push(ConfigReport {
            name: v.name,
            threads_requested: v.threads_requested,
            threads: v.parallelism.threads(),
            clamped: v.parallelism.threads() < v.threads_requested,
            eq3_pruning: v.eq3_pruning,
            fitness_memo: v.fitness_memo,
            kernel: v.kernel,
            segmentation_ms,
            tracking_ms,
            analyze_ms,
        });
    }

    let baseline = configs[0].clone();
    let optimised = configs.last().expect("variants").clone();
    PipelineSection {
        background_ms,
        configs,
        speedup_segmentation: baseline.segmentation_ms / optimised.segmentation_ms,
        speedup_tracking: baseline.tracking_ms / optimised.tracking_ms,
        speedup_analyze: baseline.analyze_ms / optimised.analyze_ms,
    }
}

fn run_segmentation_section(
    base: &AnalyzerConfig,
    jump: &SyntheticJump,
    repeats: usize,
    threads_requested: usize,
    threads_resolved: usize,
) -> SegmentationSection {
    // Ghost suppression on so all six stage kernels do real work.
    let seg_config = PipelineConfig {
        ghosts: Some(GhostConfig::default()),
        ..base.segmentation.clone()
    };
    let inputs = jump.video.frames();

    // The shared cost every engine pays once per clip, before any
    // per-frame kernel runs. Timed for transparency, excluded from the
    // kernel comparison.
    let (background_ms, background) = time_ms(repeats, || {
        BackgroundEstimator::new(seg_config.background)
            .estimate(&jump.video)
            .expect("background")
    });

    // Correctness first: every engine must reproduce the serial packed
    // pipeline's stage masks byte for byte.
    let reference = SegmentPipeline::new(seg_config.clone())
        .run(&jump.video)
        .expect("reference segmentation");
    let scalar = ScalarSegmenter::new(&seg_config, &background.image);
    for (k, frame) in inputs.iter().enumerate() {
        let s = scalar.segment(frame, previous_input(inputs, k));
        let r = &reference.frames[k];
        for (plane, packed, what) in [
            (&s.raw, &r.raw, "raw"),
            (&s.denoised, &r.denoised, "denoised"),
            (&s.despotted, &r.despotted, "despotted"),
            (&s.deghosted, &r.deghosted, "deghosted"),
            (&s.filled, &r.filled, "filled"),
            (&s.shadow, &r.shadow, "shadow"),
            (&s.final_mask, &r.final_mask, "final"),
        ] {
            assert_eq!(
                &s.to_mask(plane),
                packed,
                "scalar {what} mask diverged, frame {k}"
            );
        }
    }
    let parallel = SegmentPipeline::new(PipelineConfig {
        parallelism: Parallelism::Fixed(threads_resolved),
        ..seg_config.clone()
    })
    .run(&jump.video)
    .expect("parallel segmentation");
    assert_eq!(
        parallel.frames, reference.frames,
        "parallel stage masks diverged"
    );
    {
        // The streaming driver: frames arrive one at a time, only the
        // previous frame is retained.
        let mut segmenter = FrameSegmenter::new(
            &seg_config,
            Arc::new(PreparedBackground::new(&background.image)),
        );
        let mut out = FrameStages::empty();
        let mut prev: Option<Frame> = None;
        for (k, frame) in inputs.iter().enumerate() {
            segmenter
                .segment_into(frame, prev.as_ref(), &mut out)
                .expect("streaming segmentation");
            assert_eq!(
                out, reference.frames[k],
                "streaming stage masks diverged, frame {k}"
            );
            match prev.as_mut() {
                Some(p) => p.clone_from(frame),
                None => prev = Some(frame.clone()),
            }
        }
    }

    // Now the clocks. Each engine's one-time per-clip setup (cloning or
    // HSV-caching the background) happens inside the timed region so
    // the packed engines also pay for their cache.
    let (scalar_ms, scalar_timings) = time_kernel(repeats, || {
        let scalar = ScalarSegmenter::new(&seg_config, &background.image);
        let mut t = Profiler::default();
        for (k, frame) in inputs.iter().enumerate() {
            let stages = scalar.segment_profiled(frame, previous_input(inputs, k), &mut t);
            std::hint::black_box(&stages);
        }
        t
    });

    let (serial_ms, serial_timings) = time_kernel(repeats, || {
        let mut segmenter = FrameSegmenter::new(
            &seg_config,
            Arc::new(PreparedBackground::new(&background.image)),
        );
        let mut out = FrameStages::empty();
        let mut t = Profiler::default();
        for (k, frame) in inputs.iter().enumerate() {
            segmenter
                .segment_into_profiled(frame, previous_input(inputs, k), &mut out, &mut t)
                .expect("packed-serial");
            std::hint::black_box(&out);
        }
        t
    });

    let (parallel_ms, parallel_timings) = time_kernel(repeats, || {
        let prepared = Arc::new(PreparedBackground::new(&background.image));
        let chunk = inputs.len().div_ceil(threads_resolved);
        let workers = inputs.len().div_ceil(chunk);
        let mut timings = vec![Profiler::default(); workers];
        let config = &seg_config;
        crossbeam::scope(|scope| {
            for (ci, slot) in timings.chunks_mut(1).enumerate() {
                let prepared = Arc::clone(&prepared);
                scope.spawn(move |_| {
                    let mut segmenter = FrameSegmenter::new(config, prepared);
                    let mut out = FrameStages::empty();
                    let mut t = Profiler::default();
                    for k in ci * chunk..((ci + 1) * chunk).min(inputs.len()) {
                        segmenter
                            .segment_into_profiled(
                                &inputs[k],
                                previous_input(inputs, k),
                                &mut out,
                                &mut t,
                            )
                            .expect("packed-parallel");
                        std::hint::black_box(&out);
                    }
                    slot[0] = t;
                });
            }
        })
        .expect("segmentation worker panicked");
        let mut merged = Profiler::default();
        for t in &timings {
            merged.absorb(t);
        }
        merged
    });

    let (streaming_ms, streaming_timings) = time_kernel(repeats, || {
        let mut segmenter = FrameSegmenter::new(
            &seg_config,
            Arc::new(PreparedBackground::new(&background.image)),
        );
        let mut out = FrameStages::empty();
        let mut prev: Option<Frame> = None;
        let mut t = Profiler::default();
        for frame in inputs {
            segmenter
                .segment_into_profiled(frame, prev.as_ref(), &mut out, &mut t)
                .expect("packed-streaming");
            std::hint::black_box(&out);
            match prev.as_mut() {
                Some(p) => p.clone_from(frame),
                None => prev = Some(frame.clone()),
            }
        }
        t
    });

    let configs = vec![
        kernel_report("scalar-reference", 1, 1, scalar_ms, &scalar_timings),
        kernel_report("packed-serial", 1, 1, serial_ms, &serial_timings),
        kernel_report(
            "packed-parallel",
            threads_requested,
            threads_resolved,
            parallel_ms,
            &parallel_timings,
        ),
        kernel_report("packed-streaming", 1, 1, streaming_ms, &streaming_timings),
    ];
    let best_packed = serial_ms.min(parallel_ms).min(streaming_ms);
    SegmentationSection {
        ghosts: true,
        background_ms,
        configs,
        speedup_kernel_serial: scalar_ms / serial_ms,
        speedup_kernel_streaming: scalar_ms / streaming_ms,
        speedup_kernel_best: scalar_ms / best_packed,
        identical: true,
    }
}

fn run_tracking_section(
    base: &AnalyzerConfig,
    jump: &SyntheticJump,
    scene: &SceneConfig,
    repeats: usize,
    threads_requested: usize,
    threads_resolved: usize,
) -> TrackingSection {
    let first_pose = jump.poses.poses()[0];

    // Pre-segment once (untimed): the race is about Eq. 3 kernels.
    let silhouettes: Vec<Mask> = SegmentPipeline::new(base.segmentation.clone())
        .run(&jump.video)
        .expect("segmentation")
        .frames
        .iter()
        .map(|s| s.final_mask.clone())
        .collect();

    let tracker_for = |kernel: Eq3Kernel, parallelism: Parallelism| {
        let mut cfg = base.tracker;
        cfg.parallelism = parallelism;
        cfg.problem.eq3_pruning = true;
        cfg.problem.fitness_memo = true;
        cfg.problem.eq3_kernel = kernel;
        TemporalTracker::new(cfg)
    };
    let track = |kernel: Eq3Kernel, parallelism: Parallelism| {
        tracker_for(kernel, parallelism)
            .track(&silhouettes, first_pose, &base.dims, &scene.camera)
            .expect("tracking")
    };

    // Correctness first: the lane kernel must reproduce the live
    // scalar path bit for bit — poses AND fitness values — at every
    // parallelism policy, before any clock starts.
    let reference = track(Eq3Kernel::Scalar, Parallelism::Serial);
    for (what, parallelism) in [
        ("lanes-serial", Parallelism::Serial),
        ("lanes-fixed4", Parallelism::Fixed(4)),
        ("lanes-auto", Parallelism::Auto),
    ] {
        assert_tracks_identical(&reference, &track(Eq3Kernel::Lanes, parallelism), what);
    }
    assert_tracks_identical(
        &reference,
        &track(Eq3Kernel::Scalar, Parallelism::Fixed(4)),
        "scalar-fixed4",
    );

    let entrants = [
        (
            "scalar-reference",
            Eq3Kernel::Scalar,
            1,
            Parallelism::Serial,
        ),
        ("lanes-serial", Eq3Kernel::Lanes, 1, Parallelism::Serial),
        (
            "lanes-parallel",
            Eq3Kernel::Lanes,
            threads_requested,
            Parallelism::Fixed(threads_resolved),
        ),
    ];
    let configs: Vec<TrackingReport> = entrants
        .iter()
        .map(|&(name, kernel, requested, parallelism)| {
            let tracker = tracker_for(kernel, parallelism);
            let (tracking_ms, _) = time_ms(repeats, || {
                tracker
                    .track(&silhouettes, first_pose, &base.dims, &scene.camera)
                    .expect("tracking")
            });
            TrackingReport {
                name,
                kernel,
                threads_requested: requested,
                threads: parallelism.threads(),
                clamped: parallelism.threads() < requested,
                tracking_ms,
            }
        })
        .collect();

    // The end-to-end figure: one serial clip analysis with the lane
    // kernel, background and segmentation included.
    let analyze_cfg = analyzer_config(
        base,
        &Variant {
            name: "lanes-serial",
            threads_requested: 1,
            parallelism: Parallelism::Serial,
            eq3_pruning: true,
            fitness_memo: true,
            kernel: Eq3Kernel::Lanes,
        },
    );
    let analyzer = JumpAnalyzer::new(analyze_cfg);
    let (analyze_ms, _) = time_ms(repeats, || {
        analyzer
            .analyze(&jump.video, &scene.camera, first_pose)
            .expect("analysis")
    });

    let scalar_ms = configs[0].tracking_ms;
    let lanes_serial_ms = configs[1].tracking_ms;
    let best_lanes_ms = configs[1..]
        .iter()
        .map(|c| c.tracking_ms)
        .fold(f64::INFINITY, f64::min);
    TrackingSection {
        eq3_pruning: true,
        fitness_memo: true,
        configs,
        analyze_ms,
        speedup_tracking_serial: scalar_ms / lanes_serial_ms,
        speedup_tracking_best: scalar_ms / best_lanes_ms,
        identical: true,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let threads_requested: usize = flag_value("--threads")
        .map(|v| v.parse().expect("--threads takes an integer"))
        .unwrap_or(4);
    let section = flag_value("--mode").unwrap_or_else(|| "all".to_owned());
    let (run_pipeline, run_segmentation, run_tracking) = match section.as_str() {
        "pipeline" => (true, false, false),
        "segmentation" => (false, true, false),
        "tracking" => (false, false, true),
        "all" => (true, true, true),
        other => panic!("--mode {other}: expected pipeline, segmentation, tracking or all"),
    };
    // Oversubscribing a CPU-bound stage only adds scheduler churn, so
    // the requested worker count is clamped to the host's cores and
    // both numbers land in the JSON.
    let threads_resolved = threads_requested.min(available_threads()).max(1);

    let (mode, repeats, base) = if quick {
        ("quick", 1, AnalyzerConfig::fast())
    } else {
        ("full", 3, AnalyzerConfig::default())
    };
    banner(
        "Perf",
        "pipeline timings: serial baseline vs pruning + memo + lanes + threads",
        SEED,
    );
    println!(
        "   mode {mode}, sections: {section}, {repeats} repeat(s), \
         {threads_requested} worker threads requested ({threads_resolved} after host clamp)\n"
    );
    if threads_resolved < threads_requested {
        println!(
            "   warning: host has only {} thread(s); parallel configurations are \
             clamped and carry \"clamped\": true in the JSON\n",
            available_threads()
        );
    }

    let scene = SceneConfig::default();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), SEED);
    let clip = ClipInfo {
        width: jump.video.dims().0,
        height: jump.video.dims().1,
        frames: jump.video.len(),
        seed: SEED,
        scene: "default",
    };

    let pipeline = run_pipeline.then(|| {
        run_pipeline_section(
            &base,
            &jump,
            &scene,
            repeats,
            threads_requested,
            threads_resolved,
        )
    });
    let segmentation = run_segmentation.then(|| {
        run_segmentation_section(&base, &jump, repeats, threads_requested, threads_resolved)
    });
    let tracking = run_tracking.then(|| {
        run_tracking_section(
            &base,
            &jump,
            &scene,
            repeats,
            threads_requested,
            threads_resolved,
        )
    });

    if let Some(p) = &pipeline {
        let rows: Vec<Vec<String>> = p
            .configs
            .iter()
            .map(|c| {
                vec![
                    c.name.to_owned(),
                    format!("{}{}", c.threads, if c.clamped { "*" } else { "" }),
                    if c.eq3_pruning { "on" } else { "off" }.to_owned(),
                    if c.fitness_memo { "on" } else { "off" }.to_owned(),
                    format!("{:?}", c.kernel).to_lowercase(),
                    f1(c.segmentation_ms),
                    f1(c.tracking_ms),
                    f1(c.analyze_ms),
                ]
            })
            .collect();
        print_table(
            &[
                "config",
                "threads",
                "prune",
                "memo",
                "kernel",
                "segment ms",
                "track ms",
                "analyze ms",
            ],
            &rows,
        );
        println!(
            "\nspeedup vs baseline-serial: segmentation {:.2}x, tracking {:.2}x, analyze {:.2}x",
            p.speedup_segmentation, p.speedup_tracking, p.speedup_analyze
        );
        println!(
            "(background estimation {:.1} ms, shared per config; all configurations \
             produced byte-identical analyses{})\n",
            p.background_ms,
            if p.configs.iter().any(|c| c.clamped) {
                "; * = thread request clamped to the host"
            } else {
                ""
            }
        );
    }

    if let Some(s) = &segmentation {
        let rows: Vec<Vec<String>> = s
            .configs
            .iter()
            .map(|c| {
                vec![
                    c.name.to_owned(),
                    format!("{}{}", c.threads, if c.clamped { "*" } else { "" }),
                    f1(c.extract_ms),
                    f1(c.denoise_ms),
                    f1(c.despot_ms),
                    f1(c.deghost_ms),
                    f1(c.fill_ms),
                    f1(c.shadow_ms),
                    f1(c.kernel_ms),
                ]
            })
            .collect();
        print_table(
            &[
                "kernel", "threads", "extract", "denoise", "despot", "deghost", "fill", "shadow",
                "total ms",
            ],
            &rows,
        );
        println!(
            "\nstage-kernel speedup vs scalar reference: serial {:.2}x, streaming {:.2}x, best {:.2}x",
            s.speedup_kernel_serial, s.speedup_kernel_streaming, s.speedup_kernel_best
        );
        println!(
            "(shared background estimation: {:.1} ms, excluded; all engines produced \
             byte-identical stage masks{})\n",
            s.background_ms,
            if s.configs.iter().any(|c| c.clamped) {
                "; * = thread request clamped to the host"
            } else {
                ""
            }
        );
    }

    if let Some(t) = &tracking {
        let rows: Vec<Vec<String>> = t
            .configs
            .iter()
            .map(|c| {
                vec![
                    c.name.to_owned(),
                    format!("{:?}", c.kernel).to_lowercase(),
                    format!("{}{}", c.threads, if c.clamped { "*" } else { "" }),
                    f1(c.tracking_ms),
                ]
            })
            .collect();
        print_table(&["config", "kernel", "threads", "track ms"], &rows);
        println!(
            "\ntracking-kernel speedup vs live scalar reference: serial {:.2}x, best {:.2}x",
            t.speedup_tracking_serial, t.speedup_tracking_best
        );
        println!(
            "full serial analyze with lane kernel: {:.1} ms/clip",
            t.analyze_ms
        );
        println!(
            "(poses and fitness values bit-identical across kernels and Serial / \
             Fixed(4) / Auto parallelism{})",
            if t.configs.iter().any(|c| c.clamped) {
                "; * = thread request clamped to the host"
            } else {
                ""
            }
        );
    }

    let report = BenchReport {
        schema: "slj-perf-pipeline/3",
        mode,
        clip,
        repeats,
        host_threads: available_threads(),
        pipeline,
        segmentation,
        tracking,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise");
    std::fs::write(OUT_PATH, json + "\n").expect("write BENCH_pipeline.json");
    println!("\nwrote {OUT_PATH}");
}
