//! Ablation D — segmentation pipeline configurations.
//!
//! Compares, end to end on the same clips, the paper's exact pipeline
//! against this reproduction's hardened variants:
//!
//! * **paper**: last-stable background, local pinhole rule, shadows on;
//! * **paper + ghosts**: same, plus motion-based ghost suppression
//!   (the cure for the last-stable rule's burn-in of the landed jumper);
//! * **default**: median background, flood-fill holes, shadows on;
//! * **robust**: default + ghost suppression.
//!
//! Reported per configuration: micro-averaged final-mask IoU/precision,
//! frames the tracker could not use (carried over), and the final score
//! of the (good) jump.

use slj::prelude::*;
use slj_bench::{banner, f3, print_table};
use slj_segment::background::{BackgroundConfig, UpdateMode};
use slj_segment::ghosts::GhostConfig;
use slj_segment::metrics::evaluate_clip;
use slj_segment::pipeline::SegmentPipeline;

const SEEDS: [u64; 2] = [31, 32];

fn main() {
    banner(
        "Ablation D",
        "pipeline configurations end-to-end (good jump, default scene)",
        SEEDS[0],
    );
    let scene = SceneConfig::default();

    let ghost_cfg = GhostConfig {
        motion_threshold: 40,
        min_moving_fraction: 0.04,
    };
    let configs: Vec<(&str, PipelineConfig)> = vec![
        ("paper", PipelineConfig::paper()),
        (
            "paper + ghosts",
            PipelineConfig {
                ghosts: Some(ghost_cfg),
                background: BackgroundConfig {
                    mode: UpdateMode::LastStable,
                    ..BackgroundConfig::default()
                },
                ..PipelineConfig::paper()
            },
        ),
        ("default (median bg)", PipelineConfig::default()),
        ("robust (median + ghosts)", PipelineConfig::robust()),
    ];

    let mut rows = Vec::new();
    for (label, pipe_cfg) in &configs {
        let mut iou = 0.0;
        let mut precision = 0.0;
        let mut carried = 0usize;
        let mut score = 0usize;
        for &seed in &SEEDS {
            let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), seed);
            // Segmentation quality.
            let result = SegmentPipeline::new(pipe_cfg.clone())
                .run(&jump.video)
                .expect("pipeline");
            let clip = evaluate_clip(&result, &jump.silhouettes, 2).expect("metrics");
            iou += clip.stages.final_mask.iou();
            precision += clip.stages.final_mask.precision();
            // End-to-end behaviour.
            let analyzer_cfg = AnalyzerConfig {
                segmentation: pipe_cfg.clone(),
                ..AnalyzerConfig::default()
            };
            let report = JumpAnalyzer::new(analyzer_cfg)
                .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
                .expect("analysis");
            carried += report.tracking.iter().filter(|t| t.carried_over).count();
            score += report.score.score();
        }
        let n = SEEDS.len() as f64;
        rows.push(vec![
            (*label).to_owned(),
            f3(iou / n),
            f3(precision / n),
            format!("{:.1}", carried as f64 / n),
            format!("{:.1}/7", score as f64 / n),
        ]);
    }
    print_table(
        &[
            "pipeline",
            "final IoU",
            "final precision",
            "carried frames",
            "score (good jump)",
        ],
        &rows,
    );
    println!(
        "\nReading: the paper's exact pipeline suffers from the last-stable\n\
         rule's ghost (burnt-in landed jumper) — precision collapses and the\n\
         clip tail becomes untrackable. Either fix works: ghost suppression\n\
         rescues the paper pipeline, and the median background avoids the\n\
         ghost altogether; combining both is the most robust."
    );
}
