//! Figure 7 — GA-estimated stick models for the early frames.
//!
//! The paper's headline anecdote: "The initial population for estimating
//! the second frame was derived from the first frame. And the shown best
//! estimated model was generated at the second generation." This binary
//! reproduces that measurement on ground-truth silhouettes (isolating
//! the GA, as the paper's figure does): for every frame, the generation
//! at which the final best appeared, the generation at which the run was
//! already within 10% of its final fitness, the Eq. 3 value, and the
//! pose error vs truth. Frames 2 and 3 (the paper's exhibits) are
//! rendered to `target/figures/`.

use slj::prelude::*;
use slj_bench::{banner, f1, f3, figures_dir, print_table};
use slj_ga::fitness::SilhouetteFitness;
use slj_ga::tracker::TemporalTracker;
use slj_imgproc::pixel::Rgb;
use slj_video::render::render_silhouette;

fn main() {
    let seed = 1007;
    banner(
        "Figure 7",
        "temporal GA per frame: generation-of-best, fitness, pose error (GT silhouettes)",
        seed,
    );
    let jump_cfg = JumpConfig::default();
    let truth = synthesize_jump(&jump_cfg);
    let camera = Camera::default();
    let silhouettes: Vec<_> = truth
        .poses()
        .iter()
        .map(|p| render_silhouette(p, &jump_cfg.dims, &camera))
        .collect();

    let config = TrackerConfig {
        seed,
        ..TrackerConfig::default()
    };
    let tracker = TemporalTracker::new(config);
    let run = tracker
        .track(&silhouettes, truth.poses()[0], &jump_cfg.dims, &camera)
        .expect("tracking");

    // The paper's anecdote, made precise two ways: (1) the fitness the
    // population already held at generation 2 vs the run's final best —
    // "the shown best estimated model was generated at the second
    // generation" — and (2) the first generation at or below an absolute
    // quality bar of 1.25x the ground-truth pose's own fitness.
    let mut rows = Vec::new();
    let mut gens_to_good = Vec::new();
    let mut gen2_gap = Vec::new();
    for (k, fr) in run.frames.iter().enumerate() {
        let err = fr.pose.error_against(&truth.poses()[k]);
        let gt_fitness = SilhouetteFitness::new(
            &silhouettes[k],
            &jump_cfg.dims,
            &camera,
            tracker.config().problem.stride,
        )
        .expect("fitness")
        .evaluate(&truth.poses()[k], &jump_cfg.dims);
        let (fit0, fit2, to_good) = if fr.history.is_empty() {
            ("-".to_owned(), "-".to_owned(), "-".to_owned())
        } else {
            let fit0 = fr.history[0];
            let fit2 = fr.history[fr.history.len().min(3) - 1];
            gen2_gap.push(fit2 / fr.fitness - 1.0);
            let to_good = match fr.history.iter().position(|&f| f <= 1.25 * gt_fitness) {
                Some(g) => {
                    gens_to_good.push(g);
                    g.to_string()
                }
                None => "never".to_owned(),
            };
            (f3(fit0), f3(fit2), to_good)
        };
        rows.push(vec![
            k.to_string(),
            fit0,
            fit2,
            f3(fr.fitness),
            f3(gt_fitness),
            to_good,
            f1(err.mean_angle_error()),
            f3(err.center_distance),
        ]);
    }
    print_table(
        &[
            "frame",
            "fit @gen0",
            "fit @gen2",
            "final fit",
            "GT-pose fit",
            "gens to 1.25xGT",
            "mean angle err (deg)",
            "centre err (m)",
        ],
        &rows,
    );
    if !gens_to_good.is_empty() {
        println!(
            "\nmean generations to the 1.25xGT quality bar: {:.2}   (paper: 'second generation')",
            gens_to_good.iter().sum::<usize>() as f64 / gens_to_good.len() as f64
        );
    }
    if !gen2_gap.is_empty() {
        println!(
            "mean excess of gen-2 fitness over the final best: {:.1}%",
            100.0 * gen2_gap.iter().sum::<f64>() / gen2_gap.len() as f64
        );
    }

    // The paper's exhibits: frames 2 and 3 (1-based), i.e. indices 1, 2.
    let dir = figures_dir();
    for k in [1usize, 2] {
        let panel = slj::viz::silhouette_with_model(
            &silhouettes[k],
            &run.frames[k].pose,
            &jump_cfg.dims,
            &camera,
            Rgb::new(230, 30, 30),
        );
        slj_imgproc::io::save_ppm(&panel, dir.join(format!("fig7_frame_{}.ppm", k + 1))).unwrap();
    }
    println!(
        "panels (frames 2-3, paper numbering) written to {}",
        dir.display()
    );
    println!(
        "\nReading: thanks to the previous frame's model seeding the population,\n\
         the GA starts within ~2x of truth-quality and crosses the 1.25x bar\n\
         within ~10 generations even during the fast flight phase — our\n\
         synthetic jump packs more inter-frame motion than the paper's clip,\n\
         where the same mechanism yielded 'the second generation'. The\n\
         like-for-like comparison is ablation_temporal: temporal seeding\n\
         crosses the same quality bar ~50x earlier than the non-temporal GA\n\
         of [5]."
    );
}
