//! Tables 1 & 2 — the scoring rules, exercised as a detection study.
//!
//! The paper formulates standards E1–E7 (Table 1) and rules R1–R7
//! (Table 2) but leaves the scoring component "yet to be implemented and
//! tested". This binary completes that evaluation: for the good jump and
//! each single-fault jump it reports which rules fire (a) on the true
//! poses — validating the rule thresholds — and (b) end-to-end from the
//! rendered video through segmentation and GA tracking, across several
//! seeds. The output is the rule×fault confusion matrix.

use slj::prelude::*;
use slj_bench::{banner, print_table};

const SEEDS: [u64; 3] = [21, 22, 23];

fn verdict_row(label: &str, violated: &[Vec<usize>]) -> Vec<String> {
    // violated: per-seed list of violated rule numbers.
    let mut row = vec![label.to_owned()];
    for rule in 1..=7usize {
        let hits = violated.iter().filter(|v| v.contains(&rule)).count();
        row.push(if hits == 0 {
            ".".into()
        } else {
            format!("{hits}/{}", violated.len())
        });
    }
    row
}

fn main() {
    banner(
        "Tables 1-2",
        "rule-violation detection for the good jump and each injected fault",
        SEEDS[0],
    );

    println!("Table 1 standards and their Table 2 rules:\n");
    let rows: Vec<Vec<String>> = Standard::ALL
        .iter()
        .map(|s| {
            let r = s.rule().rule();
            vec![s.to_string(), r.to_string(), r.stage.to_string()]
        })
        .collect();
    print_table(&["standard", "rule", "stage"], &rows);

    // --- (a) On true poses: one deterministic run per condition.
    println!("\n(a) violations on TRUE poses (x = fired; expect the diagonal):\n");
    let mut rows = Vec::new();
    {
        let card = score_jump(&synthesize_jump(&JumpConfig::default())).expect("score");
        let v: Vec<usize> = card.violations().iter().map(|r| r.number()).collect();
        rows.push(verdict_row("good jump", &[v]));
    }
    for flaw in JumpFlaw::ALL {
        let card = score_jump(&synthesize_jump(&JumpConfig::with_flaw(flaw))).expect("score");
        let v: Vec<usize> = card.violations().iter().map(|r| r.number()).collect();
        rows.push(verdict_row(&format!("{flaw:?}"), &[v]));
    }
    print_table(
        &["condition", "R1", "R2", "R3", "R4", "R5", "R6", "R7"],
        &rows,
    );

    // --- (b) End to end: video -> segmentation -> GA -> rules.
    println!(
        "\n(b) violations END-TO-END (video + noise + shadow; {} seeds; cell = seeds fired):\n",
        SEEDS.len()
    );
    let scene = SceneConfig::default();
    let analyzer = JumpAnalyzer::new(AnalyzerConfig::default());
    let mut rows = Vec::new();
    let mut conditions: Vec<(String, Vec<JumpFlaw>)> = vec![("good jump".into(), vec![])];
    for flaw in JumpFlaw::ALL {
        conditions.push((format!("{flaw:?}"), vec![flaw]));
    }
    let mut caught = 0usize;
    let mut total_faults = 0usize;
    for (label, flaws) in &conditions {
        let mut per_seed = Vec::new();
        for &seed in &SEEDS {
            let cfg = JumpConfig {
                flaws: flaws.clone(),
                ..JumpConfig::default()
            };
            let jump = SyntheticJump::generate(&scene, &cfg, seed);
            let report = analyzer
                .analyze(&jump.video, &scene.camera, jump.poses.poses()[0])
                .expect("analysis");
            let v: Vec<usize> = report
                .score
                .violations()
                .iter()
                .map(|r| r.number())
                .collect();
            if let Some(f) = flaws.first() {
                total_faults += 1;
                if v.contains(&f.rule_number()) {
                    caught += 1;
                }
            }
            per_seed.push(v);
        }
        rows.push(verdict_row(label, &per_seed));
    }
    print_table(
        &["condition", "R1", "R2", "R3", "R4", "R5", "R6", "R7"],
        &rows,
    );
    println!(
        "\nend-to-end fault detection: {caught}/{total_faults} fault-seed runs caught the injected fault"
    );
    println!(
        "\nReading: on true poses the matrix is exactly diagonal — the Table 2\n\
         thresholds encode the standards faithfully. End to end, leg- and\n\
         trunk-based rules (R1, R5, R6) detect reliably; arm-based rules\n\
         (R3, R4, R7) degrade when the arm is merged with the torso, where a\n\
         silhouette simply carries no arm information — an inherent limit of\n\
         the paper's representation, not of the GA."
    );
}
