//! Ablation C — GA hyper-parameters at a fixed evaluation budget.
//!
//! The paper fixes crossover rate 0.2 and per-group mutation 0.01
//! without a sweep ("we can set the crossover rate to 0.2"). This
//! ablation sweeps population size × mutation rate at a constant budget
//! of ~6000 fitness evaluations on the frame-2 temporal fitting problem,
//! reporting final fitness and pose error.

use slj::prelude::*;
use slj_bench::{banner, f1, f3, print_table};
use slj_ga::engine::{evolve, GaConfig};
use slj_ga::pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig, DEFAULT_DELTA_ANGLES};
use slj_video::render::render_silhouette;

fn main() {
    let seed = 1103;
    banner(
        "Ablation C",
        "population size x mutation rate at ~6000 evaluations (temporal init)",
        seed,
    );
    let jump_cfg = JumpConfig::default();
    let truth = synthesize_jump(&jump_cfg);
    let camera = Camera::default();
    let prev = truth.poses()[0];
    let target = truth.poses()[1];
    let sil = render_silhouette(&target, &jump_cfg.dims, &camera);
    let init = InitStrategy::Temporal {
        previous: prev,
        delta_center: 0.12,
        delta_angles: DEFAULT_DELTA_ANGLES,
    };

    const BUDGET: usize = 6000;
    let mut rows = Vec::new();
    for pop in [20usize, 50, 100, 200] {
        for mutation in [0.0, 0.01, 0.05, 0.20] {
            let problem_cfg = PoseProblemConfig {
                mutation_rate: mutation,
                ..PoseProblemConfig::default()
            };
            let problem = PoseProblem::new(&sil, &jump_cfg.dims, &camera, init, problem_cfg)
                .expect("problem");
            let ga = GaConfig {
                population_size: pop,
                max_generations: BUDGET / pop,
                patience: None,
                ..GaConfig::default()
            };
            let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
            let run = evolve(&problem, &ga, &mut rng).expect("evolve");
            let err = run.best.error_against(&target);
            rows.push(vec![
                pop.to_string(),
                format!("{mutation:.2}"),
                run.evaluations.to_string(),
                f3(run.best_fitness),
                f1(err.mean_angle_error()),
            ]);
        }
    }
    print_table(
        &[
            "population",
            "mutation rate",
            "evaluations",
            "final fitness",
            "mean angle err (deg)",
        ],
        &rows,
    );
    println!(
        "\nReading: with temporal seeding the search is forgiving — any\n\
         moderate population with a small-but-nonzero mutation rate lands in\n\
         the same basin; the paper's 0.01 sits inside the plateau. Zero\n\
         mutation relies on the seeded diversity alone and is slightly\n\
         worse; very aggressive mutation wastes budget."
    );
}
