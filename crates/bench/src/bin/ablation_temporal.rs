//! Ablation A — the paper's contribution: temporal seeding.
//!
//! The paper's delta over Shoji et al. \[5\] is seeding frame k's initial
//! population from frame k−1's model. This ablation pits four searchers
//! against the same silhouette (frame 2 of the jump, the paper's
//! exhibit) at matched evaluation budgets:
//!
//! * temporal GA (ours/paper): previous-frame seeding,
//! * single-frame GA (\[5\]): full-range initialisation, 200 generations,
//! * random search over the temporal proposal distribution,
//! * stochastic hill climbing from the previous-frame pose.

use slj::prelude::*;
use slj_bench::{banner, f1, f3, print_table};
use slj_ga::baseline::{HillClimber, RandomSearch, SingleFrameEstimator};
use slj_ga::engine::{evolve, GaConfig};
use slj_ga::pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig, DEFAULT_DELTA_ANGLES};
use slj_video::render::render_silhouette;

fn main() {
    let seed = 1101;
    banner(
        "Ablation A",
        "temporal seeding vs the non-temporal baselines (frame 2 silhouette)",
        seed,
    );
    let jump_cfg = JumpConfig::default();
    let truth = synthesize_jump(&jump_cfg);
    let camera = Camera::default();
    let prev = truth.poses()[0]; // frame 1's (hand-drawn) model
    let target = truth.poses()[1]; // the pose to recover
    let sil = render_silhouette(&target, &jump_cfg.dims, &camera);

    let problem_cfg = PoseProblemConfig::default();
    // The absolute quality bar: as fit as the true pose itself (+25%).
    let gt_fitness = {
        use slj_ga::fitness::SilhouetteFitness;
        SilhouetteFitness::new(&sil, &jump_cfg.dims, &camera, problem_cfg.stride)
            .expect("fitness")
            .evaluate(&target, &jump_cfg.dims)
    };
    let bar = 1.25 * gt_fitness;
    println!("quality bar: fitness <= {bar:.3} (1.25x the true pose's own fitness)\n");
    let temporal_init = InitStrategy::Temporal {
        previous: prev,
        delta_center: 0.12,
        delta_angles: DEFAULT_DELTA_ANGLES,
    };

    let mut rows = Vec::new();

    // Temporal GA (the paper's method).
    {
        let problem = PoseProblem::new(&sil, &jump_cfg.dims, &camera, temporal_init, problem_cfg)
            .expect("problem");
        let ga = GaConfig {
            population_size: 100,
            max_generations: 200,
            patience: None,
            ..GaConfig::default()
        };
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let run = evolve(&problem, &ga, &mut rng).expect("evolve");
        let err = run.best.error_against(&target);
        rows.push(vec![
            "temporal GA (paper/ours)".into(),
            run.generations_to_fitness(bar)
                .map_or("never".into(), |g| g.to_string()),
            run.generation_of_best.to_string(),
            run.evaluations.to_string(),
            f3(run.best_fitness),
            f1(err.mean_angle_error()),
            f3(err.center_distance),
        ]);
    }

    // Single-frame GA of [5].
    {
        let est = SingleFrameEstimator {
            seed,
            ..SingleFrameEstimator::default()
        };
        let run = est
            .estimate(&sil, &jump_cfg.dims, &camera)
            .expect("estimate");
        let err = run.best.error_against(&target);
        rows.push(vec![
            "single-frame GA [5] (full range, 200 gens)".into(),
            run.generations_to_fitness(bar)
                .map_or("never".into(), |g| g.to_string()),
            run.generation_of_best.to_string(),
            run.evaluations.to_string(),
            f3(run.best_fitness),
            f1(err.mean_angle_error()),
            f3(err.center_distance),
        ]);
    }

    // Random search over the temporal proposal distribution, same
    // evaluation budget as ~200 GA generations.
    {
        let problem = PoseProblem::new(&sil, &jump_cfg.dims, &camera, temporal_init, problem_cfg)
            .expect("problem");
        let rs = RandomSearch {
            samples: 20_000,
            seed,
        };
        let run = rs.run(&problem).expect("random search");
        let err = run.best.error_against(&target);
        rows.push(vec![
            "random search (temporal proposals)".into(),
            "-".into(),
            "-".into(),
            run.evaluations.to_string(),
            f3(run.best_fitness),
            f1(err.mean_angle_error()),
            f3(err.center_distance),
        ]);
    }

    // Hill climbing from the previous pose.
    {
        let problem = PoseProblem::new(&sil, &jump_cfg.dims, &camera, temporal_init, problem_cfg)
            .expect("problem");
        let hc = HillClimber {
            iterations: 20_000,
            seed,
            ..HillClimber::default()
        };
        let run = hc.run(&problem, prev);
        let err = run.best.error_against(&target);
        rows.push(vec![
            "hill climbing (from previous pose)".into(),
            "-".into(),
            "-".into(),
            run.evaluations.to_string(),
            f3(run.best_fitness),
            f1(err.mean_angle_error()),
            f3(err.center_distance),
        ]);
    }

    print_table(
        &[
            "method",
            "gens to quality bar",
            "gen of best",
            "evaluations",
            "final fitness",
            "mean angle err (deg)",
            "centre err (m)",
        ],
        &rows,
    );
    println!(
        "\nReading: the paper's claim reproduces in shape — the temporally\n\
         seeded GA holds a truth-quality model within the first few\n\
         generations (the seed itself is often already past the bar), while\n\
         the non-temporal GA of [5] takes tens of generations to reach the\n\
         same quality and still ends with a worse pose. The temporal\n\
         proposal distribution is informative enough that even random search\n\
         and hill climbing do respectably on clean silhouettes — the GA's\n\
         margin grows on the noisy pipeline masks (Fig. 6)."
    );
}
