//! Scalar per-pixel reference segmentation — the live baseline for the
//! `perf_pipeline --mode segmentation` speedup claim.
//!
//! Before the bit-packed kernels landed, every stage of the Section-2
//! pipeline walked pixels one at a time and allocated a fresh mask, and
//! the Eq. 1 shadow test re-converted the *background* pixel to HSV for
//! every foreground pixel of every frame. This module keeps that
//! implementation alive (on plain `Vec<bool>` planes, with per-pixel
//! bounds-checked neighbour reads) so the benchmark measures the packed
//! engine against a reproducible stand-in for the old code rather than
//! against a number in a stale JSON file.
//!
//! The stage semantics are identical by construction and asserted
//! byte-identical against [`FrameSegmenter`](slj_segment::FrameSegmenter)
//! both in this module's tests and in the benchmark itself.

use slj_imgproc::mask::Mask;
use slj_segment::cleanup::HoleFillMode;
use slj_segment::pipeline::PipelineConfig;
use slj_segment::shadow::ShadowDetector;
use slj_segment::{spans, Profiler};
use slj_video::Frame;
use std::time::Instant;

/// One frame's intermediates as plain boolean planes (row-major,
/// `y * width + x`).
#[derive(Debug, Clone)]
pub struct ScalarStages {
    /// Raw background subtraction.
    pub raw: Vec<bool>,
    /// After the 8-neighbour vote.
    pub denoised: Vec<bool>,
    /// After small-spot removal.
    pub despotted: Vec<bool>,
    /// After ghost suppression (equals `despotted` when disabled).
    pub deghosted: Vec<bool>,
    /// After hole filling.
    pub filled: Vec<bool>,
    /// The Eq. 1 shadow pixels.
    pub shadow: Vec<bool>,
    /// `filled` minus `shadow`.
    pub final_mask: Vec<bool>,
    /// Plane width, pixels.
    pub width: usize,
    /// Plane height, pixels.
    pub height: usize,
}

impl ScalarStages {
    /// Converts one plane to a [`Mask`] for comparison against the
    /// packed pipeline.
    pub fn to_mask(&self, plane: &[bool]) -> Mask {
        Mask::from_fn(self.width, self.height, |x, y| plane[y * self.width + x])
    }
}

/// The scalar segmentation engine: stage parameters plus the (plain,
/// un-cached) background estimate.
#[derive(Debug, Clone)]
pub struct ScalarSegmenter {
    config: PipelineConfig,
    shadow: Option<ShadowDetector>,
    background: Frame,
}

impl ScalarSegmenter {
    /// Creates a scalar segmenter over the given background image.
    pub fn new(config: &PipelineConfig, background: &Frame) -> Self {
        ScalarSegmenter {
            shadow: config.shadow.map(ShadowDetector::new),
            config: config.clone(),
            background: background.clone(),
        }
    }

    /// Segments one frame, billing per-stage wall time to the shared
    /// segmentation span names (the same spans the packed engine's
    /// profiled entry point fills, so the bench compares like with
    /// like).
    pub fn segment_profiled(
        &self,
        frame: &Frame,
        previous: Option<&Frame>,
        profiler: &mut Profiler,
    ) -> ScalarStages {
        let (width, height) = frame.dims();
        assert_eq!(frame.dims(), self.background.dims(), "dims");

        let mut clock = Instant::now();
        let mut lap = |profiler: &mut Profiler, span: &'static str| {
            let now = Instant::now();
            profiler.record(span, now - clock);
            clock = now;
        };

        let threshold = self.config.foreground.threshold;
        let raw: Vec<bool> = (0..width * height)
            .map(|i| {
                let (x, y) = (i % width, i / width);
                frame.get(x, y).l1_distance(self.background.get(x, y)) > threshold
            })
            .collect();
        lap(profiler, spans::SEGMENT_EXTRACT);

        let denoised = neighbor_vote(&raw, width, height, self.config.noise.neighbor_threshold);
        lap(profiler, spans::SEGMENT_DENOISE);

        let despotted = remove_small(&denoised, width, height, self.config.spots.min_area);
        lap(profiler, spans::SEGMENT_DESPOT);

        let deghosted = match (&self.config.ghosts, previous) {
            (Some(cfg), Some(prev)) => {
                let labels = label8(&despotted, width, height);
                let n = labels.iter().copied().max().unwrap_or(0) as usize;
                let mut moving = vec![0usize; n + 1];
                let mut total = vec![0usize; n + 1];
                for i in 0..width * height {
                    if despotted[i] {
                        let (x, y) = (i % width, i / width);
                        total[labels[i] as usize] += 1;
                        if frame.get(x, y).l1_distance(prev.get(x, y)) > cfg.motion_threshold {
                            moving[labels[i] as usize] += 1;
                        }
                    }
                }
                let ghost: Vec<bool> = (0..=n)
                    .map(|l| {
                        let fraction = if total[l] == 0 {
                            0.0
                        } else {
                            moving[l] as f64 / total[l] as f64
                        };
                        fraction < cfg.min_moving_fraction
                    })
                    .collect();
                despotted
                    .iter()
                    .zip(&labels)
                    .map(|(&fg, &l)| fg && !ghost[l as usize])
                    .collect()
            }
            _ => despotted.clone(),
        };
        lap(profiler, spans::SEGMENT_DEGHOST);

        let filled = match self.config.holes {
            HoleFillMode::PaperRule { max_iters } => {
                paper_fill(&deghosted, width, height, max_iters)
            }
            HoleFillMode::FloodFill => flood_fill(&deghosted, width, height),
        };
        lap(profiler, spans::SEGMENT_FILL);

        let (shadow, final_mask) = match &self.shadow {
            Some(det) => {
                // The PR-2 behaviour under measurement: both sides of
                // Eq. 1 converted to HSV per pixel, per frame.
                let shadow: Vec<bool> = (0..width * height)
                    .map(|i| {
                        let (x, y) = (i % width, i / width);
                        filled[i]
                            && det.is_shadow_pixel(
                                frame.get(x, y).to_hsv(),
                                self.background.get(x, y).to_hsv(),
                            )
                    })
                    .collect();
                let final_mask = filled.iter().zip(&shadow).map(|(&f, &s)| f && !s).collect();
                (shadow, final_mask)
            }
            None => (vec![false; width * height], filled.clone()),
        };
        lap(profiler, spans::SEGMENT_SHADOW);

        ScalarStages {
            raw,
            denoised,
            despotted,
            deghosted,
            filled,
            shadow,
            final_mask,
            width,
            height,
        }
    }

    /// Segments one frame without timing.
    pub fn segment(&self, frame: &Frame, previous: Option<&Frame>) -> ScalarStages {
        let mut scratch = Profiler::default();
        self.segment_profiled(frame, previous, &mut scratch)
    }
}

/// A foreground pixel survives when strictly more than `threshold` of
/// its 8 neighbours are foreground; background never promotes.
fn neighbor_vote(mask: &[bool], width: usize, height: usize, threshold: usize) -> Vec<bool> {
    (0..width * height)
        .map(|i| {
            if !mask[i] {
                return false;
            }
            let (x, y) = ((i % width) as isize, (i / width) as isize);
            let mut votes = 0usize;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if (dx, dy) == (0, 0) {
                        continue;
                    }
                    let (nx, ny) = (x + dx, y + dy);
                    if nx >= 0
                        && ny >= 0
                        && (nx as usize) < width
                        && (ny as usize) < height
                        && mask[ny as usize * width + nx as usize]
                    {
                        votes += 1;
                    }
                }
            }
            votes > threshold
        })
        .collect()
}

/// 8-connected component labels, 0 = background, 1.. = components.
fn label8(mask: &[bool], width: usize, height: usize) -> Vec<u32> {
    let mut labels = vec![0u32; width * height];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..width * height {
        if !mask[start] || labels[start] != 0 {
            continue;
        }
        next += 1;
        labels[start] = next;
        stack.push(start);
        while let Some(i) = stack.pop() {
            let (x, y) = ((i % width) as isize, (i / width) as isize);
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx < 0 || ny < 0 || nx as usize >= width || ny as usize >= height {
                        continue;
                    }
                    let j = ny as usize * width + nx as usize;
                    if mask[j] && labels[j] == 0 {
                        labels[j] = next;
                        stack.push(j);
                    }
                }
            }
        }
    }
    labels
}

/// Removes 8-connected components with area below `min_area`.
fn remove_small(mask: &[bool], width: usize, height: usize, min_area: usize) -> Vec<bool> {
    let labels = label8(mask, width, height);
    let n = labels.iter().copied().max().unwrap_or(0) as usize;
    let mut area = vec![0usize; n + 1];
    for &l in &labels {
        area[l as usize] += 1;
    }
    mask.iter()
        .zip(&labels)
        .map(|(&fg, &l)| fg && area[l as usize] >= min_area)
        .collect()
}

/// The paper's rule — a background pixel whose four edge-neighbours are
/// all foreground becomes foreground — iterated to fixpoint, at most
/// `max_iters` times. Off-image neighbours count as background.
fn paper_fill(mask: &[bool], width: usize, height: usize, max_iters: usize) -> Vec<bool> {
    let mut current = mask.to_vec();
    for _ in 0..max_iters {
        let mut changed = false;
        let next: Vec<bool> = (0..width * height)
            .map(|i| {
                if current[i] {
                    return true;
                }
                let (x, y) = (i % width, i / width);
                let fill = x > 0
                    && x + 1 < width
                    && y > 0
                    && y + 1 < height
                    && current[i - 1]
                    && current[i + 1]
                    && current[i - width]
                    && current[i + width];
                changed |= fill;
                fill
            })
            .collect();
        if !changed {
            break;
        }
        current = next;
    }
    current
}

/// Fills every background region not 4-connected to the image border.
fn flood_fill(mask: &[bool], width: usize, height: usize) -> Vec<bool> {
    let mut outside = vec![false; width * height];
    let mut stack = Vec::new();
    let seed = |i: usize, outside: &mut Vec<bool>, stack: &mut Vec<usize>| {
        if !mask[i] && !outside[i] {
            outside[i] = true;
            stack.push(i);
        }
    };
    for x in 0..width {
        seed(x, &mut outside, &mut stack);
        seed((height - 1) * width + x, &mut outside, &mut stack);
    }
    for y in 0..height {
        seed(y * width, &mut outside, &mut stack);
        seed(y * width + width - 1, &mut outside, &mut stack);
    }
    while let Some(i) = stack.pop() {
        let (x, y) = (i % width, i / width);
        if x > 0 {
            seed(i - 1, &mut outside, &mut stack);
        }
        if x + 1 < width {
            seed(i + 1, &mut outside, &mut stack);
        }
        if y > 0 {
            seed(i - width, &mut outside, &mut stack);
        }
        if y + 1 < height {
            seed(i + width, &mut outside, &mut stack);
        }
    }
    outside.iter().map(|&o| !o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::JumpConfig;
    use slj_segment::background::BackgroundEstimator;
    use slj_segment::ghosts::GhostConfig;
    use slj_segment::pipeline::FrameStages;
    use slj_segment::{FrameSegmenter, PreparedBackground};
    use slj_video::{SceneConfig, SyntheticJump};
    use std::sync::Arc;

    /// Byte-identity against the packed engine across every stage, with
    /// ghosts on and both hole-fill modes.
    #[test]
    fn scalar_reference_matches_packed_engine() {
        for holes in [
            HoleFillMode::FloodFill,
            HoleFillMode::PaperRule { max_iters: 8 },
        ] {
            let config = PipelineConfig {
                ghosts: Some(GhostConfig::default()),
                holes,
                ..PipelineConfig::default()
            };
            let jump = SyntheticJump::generate(
                &SceneConfig::default(),
                &JumpConfig {
                    frames: 6,
                    ..JumpConfig::default()
                },
                13,
            );
            let background = BackgroundEstimator::new(config.background)
                .estimate(&jump.video)
                .unwrap();
            let scalar = ScalarSegmenter::new(&config, &background.image);
            let mut packed = FrameSegmenter::new(
                &config,
                Arc::new(PreparedBackground::new(&background.image)),
            );
            let frames = jump.video.frames();
            let mut out = FrameStages::empty();
            for (k, frame) in frames.iter().enumerate() {
                let previous = k.checked_sub(1).map(|p| &frames[p]);
                let s = scalar.segment(frame, previous);
                packed.segment_into(frame, previous, &mut out).unwrap();
                assert_eq!(s.to_mask(&s.raw), out.raw, "raw, frame {k}");
                assert_eq!(s.to_mask(&s.denoised), out.denoised, "denoised, frame {k}");
                assert_eq!(
                    s.to_mask(&s.despotted),
                    out.despotted,
                    "despotted, frame {k}"
                );
                assert_eq!(
                    s.to_mask(&s.deghosted),
                    out.deghosted,
                    "deghosted, frame {k}"
                );
                assert_eq!(s.to_mask(&s.filled), out.filled, "filled, frame {k}");
                assert_eq!(s.to_mask(&s.shadow), out.shadow, "shadow, frame {k}");
                assert_eq!(s.to_mask(&s.final_mask), out.final_mask, "final, frame {k}");
            }
        }
    }

    #[test]
    fn flood_fill_closes_wide_holes_but_not_border_bays() {
        // 5x4: a ring with a 2-pixel hole, plus an open bay at the border.
        let width = 5;
        let height = 4;
        #[rustfmt::skip]
        let mask: Vec<bool> = [
            1, 1, 1, 1, 0,
            1, 0, 0, 1, 0,
            1, 0, 0, 1, 0,
            1, 1, 1, 1, 0,
        ]
        .iter()
        .map(|&v| v == 1)
        .collect();
        let filled = flood_fill(&mask, width, height);
        assert!(filled[width + 1] && filled[width + 2], "hole filled");
        assert!(!filled[4], "border column stays background");
    }

    #[test]
    fn paper_fill_closes_pinhole_only() {
        let width = 5;
        let height = 5;
        #[rustfmt::skip]
        let mask: Vec<bool> = [
            0, 0, 1, 0, 0,
            0, 1, 0, 1, 0,
            0, 0, 1, 0, 0,
            0, 0, 0, 0, 0,
            0, 0, 0, 0, 0,
        ]
        .iter()
        .map(|&v| v == 1)
        .collect();
        let filled = paper_fill(&mask, width, height, 8);
        assert!(filled[width + 2], "pinhole filled");
        assert_eq!(filled.iter().filter(|&&v| v).count(), 5);
    }
}
