//! Quick microbenchmark: scalar vs lane Eq. 3 kernels.

use rand::rngs::StdRng;
use rand::SeedableRng;
use slj_ga::engine::Problem;
use slj_ga::fitness::{BatchScratch, SilhouetteFitness};
use slj_ga::pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig};
use slj_motion::{BodyDims, Pose};
use slj_video::render::render_silhouette;
use slj_video::Camera;
use std::time::Instant;

fn main() {
    let track_only = std::env::var_os("TRACK_ONLY").is_some();
    let dims = BodyDims::default();
    let camera = Camera::default();
    let mut pose = Pose::standing(&dims);
    pose.center.x = 0.6;
    let sil = render_silhouette(&pose, &dims, &camera);
    let fit = SilhouetteFitness::new(&sil, &dims, &camera, 2).unwrap();
    println!(
        "silhouette: {} fg px, {} sampled points",
        sil.count(),
        fit.sample_count()
    );
    let problem = PoseProblem::new(
        &sil,
        &dims,
        &camera,
        InitStrategy::Temporal {
            previous: pose,
            delta_center: 0.08,
            delta_angles: slj_ga::pose_problem::DEFAULT_DELTA_ANGLES,
        },
        PoseProblemConfig::default(),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let poses: Vec<Pose> = (0..64).map(|_| problem.random_genome(&mut rng)).collect();

    // Interleaved rounds with min-aggregation: host load shifts hit all
    // contestants roughly equally, and the per-round minimum is robust
    // to transient stalls.
    let rounds = if track_only { 0 } else { 10 };
    let reps_per_round = 20;
    let mut best = [f64::INFINITY; 3]; // scalar, lanes single, lanes batch
    let mut acc = [0.0f64; 3];
    let mut out = vec![0.0f64; poses.len()];
    let mut scratch = BatchScratch::default();
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..reps_per_round {
            for p in &poses {
                acc[0] += fit.evaluate(p, &dims);
            }
        }
        best[0] = best[0].min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        for _ in 0..reps_per_round {
            for p in &poses {
                acc[1] += fit.evaluate_lanes(p, &dims);
            }
        }
        best[1] = best[1].min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        for _ in 0..reps_per_round {
            fit.evaluate_batch(&poses, &dims, &mut out, &mut scratch);
            for &v in &out {
                acc[2] += v;
            }
        }
        best[2] = best[2].min(t.elapsed().as_secs_f64() * 1e3);
    }
    let scalar_ms = best[0];
    let lanes_ms = best[1];
    let batch_ms = best[2];
    if !track_only {
        assert_eq!(acc[0], acc[1], "lanes != scalar");
        assert_eq!(acc[0], acc[2], "batch != scalar");
        println!(
            "scalar pruned:  {scalar_ms:8.1} ms/round  (acc {:.3})",
            acc[0]
        );
        println!("lanes single:   {lanes_ms:8.1} ms/round");
        println!("lanes batch:    {batch_ms:8.1} ms/round");
        println!(
            "speedup: single {:.2}x, batch {:.2}x",
            scalar_ms / lanes_ms,
            scalar_ms / batch_ms
        );
    }
    let reps = if track_only { 0 } else { 200 };

    let t = Instant::now();
    let mut valid = 0usize;
    for _ in 0..reps {
        for p in &poses {
            valid += problem.is_valid(p) as usize;
        }
    }
    let valid_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "is_valid:       {valid_ms:8.1} ms  ({valid} valid, {:.2} us/call)",
        valid_ms * 1e3 / (reps * poses.len()) as f64
    );

    let t = Instant::now();
    let mut n = 0usize;
    for _ in 0..reps {
        for p in &poses {
            n += problem.random_genome(&mut rng).center.x.is_finite() as usize;
            std::hint::black_box(p);
        }
    }
    println!(
        "random_genome:  {:8.1} ms  ({n} finite)",
        t.elapsed().as_secs_f64() * 1e3
    );

    let mut out = vec![0.0f64; poses.len()];
    problem.fitness_batch(&poses, &mut out); // warm the memo
    let t = Instant::now();
    for _ in 0..reps {
        problem.fitness_batch(&poses, &mut out);
    }
    let hit_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "memo all-hit:   {hit_ms:8.1} ms  ({:.1} ns/lookup)",
        hit_ms * 1e6 / (reps * poses.len()) as f64
    );

    let t = Instant::now();
    for _ in 0..20 {
        std::hint::black_box(SilhouetteFitness::new(&sil, &dims, &camera, 2).unwrap());
    }
    println!(
        "fitness setup:  {:8.1} ms (20 frames incl. distance field)",
        t.elapsed().as_secs_f64() * 1e3
    );

    // A realistic tracking workload: the synthetic jump's true
    // silhouettes, temporal GA per frame.
    use slj_ga::fitness::Eq3Kernel;
    use slj_ga::{TemporalTracker, TrackerConfig};
    use slj_motion::JumpConfig;
    use slj_video::{SceneConfig, SyntheticJump};
    let scene = SceneConfig::default();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 5);
    let silhouettes: Vec<_> = jump
        .poses
        .poses()
        .iter()
        .map(|p| render_silhouette(p, &dims, &scene.camera))
        .collect();
    let first = jump.poses.poses()[0];
    if track_only {
        let mut cfg = TrackerConfig::default();
        cfg.problem.eq3_kernel = Eq3Kernel::Lanes;
        let tracker = TemporalTracker::new(cfg);
        let t = Instant::now();
        let iters: usize = std::env::var("TRACK_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8);
        for _ in 0..iters {
            std::hint::black_box(
                tracker
                    .track(&silhouettes, first, &dims, &scene.camera)
                    .unwrap(),
            );
        }
        println!(
            "track lanes x{iters}: {:8.1} ms",
            t.elapsed().as_secs_f64() * 1e3
        );
        return;
    }
    for (label, kernel, cheap_valid) in [
        ("scalar        ", Eq3Kernel::Scalar, false),
        ("lanes         ", Eq3Kernel::Lanes, false),
        ("lanes cheapval", Eq3Kernel::Lanes, true),
    ] {
        let mut cfg = TrackerConfig::default();
        cfg.problem.eq3_kernel = kernel;
        if cheap_valid {
            cfg.problem.validity_samples = 1;
        }
        let tracker = TemporalTracker::new(cfg);
        let t = Instant::now();
        let run = tracker
            .track(&silhouettes, first, &dims, &scene.camera)
            .unwrap();
        println!(
            "track {label}: {:8.1} ms, {} eval slots",
            t.elapsed().as_secs_f64() * 1e3,
            run.total_evaluations()
        );
    }
}
