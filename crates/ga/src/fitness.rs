//! Eq. 3 — the silhouette-fit cost.
//!
//! ```text
//! F_S = ( Σ_{(x_i, y_j) ∈ silhouette}  min_{l = 0..7}  d((x_i, y_j), S_l) / t_l ) / N
//! ```
//!
//! where `d` is the distance from a silhouette pixel to stick `S_l`,
//! `t_l` is "the average thickness of the area surrounding stick S_l"
//! (known exactly here: the renderer's capsule radius), and `N` is the
//! silhouette's pixel count. A model that threads every stick through
//! the middle of its body part scores ≲ 1; the smaller, the better.
//!
//! The cost of one evaluation is `O(points × 8)`. [`SilhouetteFitness`]
//! optionally subsamples the silhouette with a stride — the estimator is
//! unbiased for ranking purposes and the Fig. 7 ablation/benches measure
//! the speed/accuracy trade-off.
//!
//! The default evaluation path is a branch-and-bound over the 8 sticks:
//! each candidate pose's sticks are prepared once per genome (direction,
//! squared length and axis-aligned bounding box hoisted out of the
//! per-pixel loop). Silhouette pixels arrive in scanline order, so the
//! stick nearest one pixel is almost always nearest the next — each
//! pixel scores the previous pixel's winner exactly first, then skips
//! any other stick whose AABB lower bound cannot beat that. The pruned
//! result is **exact** — bit-identical to the exhaustive scan,
//! property-tested in `tests/properties.rs` — because the AABB distance
//! never exceeds the true stick distance and the skip test carries a
//! slack factor that dominates the rounding error of both computations.

use crate::error::GaError;
use slj_imgproc::geometry::{Point2, Vec2};
use slj_imgproc::mask::Mask;
use slj_motion::model::ALL_STICKS;
use slj_motion::{BodyDims, Pose};
use slj_video::Camera;

/// Number of axis samples per stick for the model→silhouette coverage
/// term.
const MODEL_SAMPLES_PER_STICK: usize = 7;

/// Slack on the branch-and-bound skip test: a stick is skipped only
/// when its AABB lower bound exceeds the current best *times this
/// factor* — i.e. the test under-prunes, never over-prunes. The exact
/// and the lower-bound distances are each a handful of f64 operations
/// (relative error ≪ 1e-14), so a 1e-12 margin guarantees a skipped
/// stick could never have won — pruning stays bit-exact.
const PRUNE_SLACK: f64 = 1.0 + 1e-12;

/// Branch-and-bound accounting for one pruned Eq. 3 scoring pass
/// ([`SilhouetteFitness::prune_stats`]): how many stick distances were
/// computed exactly and how many the AABB lower bound skipped.
/// `candidates + pruned == 8 × sample pixels` always. Deterministic by
/// construction — the scan is sequential over scanline-ordered pixels —
/// so it is safe to expose through the observability layer at any
/// `Parallelism`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Sticks scored exactly.
    pub candidates: u64,
    /// Sticks skipped by the lower-bound test.
    pub pruned: u64,
}

/// One stick of a candidate pose, prepared once per genome for the
/// per-pixel distance loop: endpoints, direction and squared length
/// (hoisted out of `Segment::distance_to`), the normalising inverse
/// squared thickness, and the stick's axis-aligned bounding box for the
/// branch-and-bound lower bound.
#[derive(Debug, Clone, Copy)]
struct PreparedStick {
    a: Point2,
    b: Point2,
    /// `b - a`.
    d: Vec2,
    /// `|b - a|²`.
    len_sq: f64,
    /// `1 / t_l²`.
    inv_t_sq: f64,
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl PreparedStick {
    fn new(a: Point2, b: Point2, thickness: f64) -> PreparedStick {
        let d = b - a;
        PreparedStick {
            a,
            b,
            d,
            len_sq: d.norm_sq(),
            inv_t_sq: 1.0 / (thickness * thickness),
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// Squared distance from `p` to the stick's axis, over t_l² —
    /// the same arithmetic as `Segment::distance_sq_to` with the
    /// direction and squared length precomputed.
    #[inline]
    fn scaled_distance_sq(&self, p: Point2) -> f64 {
        let t = if self.len_sq <= f64::EPSILON {
            0.0
        } else {
            ((p - self.a).dot(self.d) / self.len_sq).clamp(0.0, 1.0)
        };
        let closest = self.a + self.d * t;
        p.distance_sq(closest) * self.inv_t_sq
    }

    /// Lower bound of [`PreparedStick::scaled_distance_sq`]: squared
    /// distance from `p` to the stick's AABB, over t_l². The stick lies
    /// inside its AABB, so this never exceeds the exact value.
    #[inline]
    fn scaled_lower_bound_sq(&self, p: Point2) -> f64 {
        let dx = (self.min_x - p.x).max(p.x - self.max_x).max(0.0);
        let dy = (self.min_y - p.y).max(p.y - self.max_y).max(0.0);
        (dx * dx + dy * dy) * self.inv_t_sq
    }
}

/// A prepared Eq. 3 evaluator for one silhouette.
///
/// Eq. 3 is one-directional — it asks how well the *silhouette* is
/// explained by the model, so a stick poking into empty space costs
/// nothing. The paper compensates with a hard constraint (chromosomes
/// "not in the boundary of the silhouette" are removed outright); real
/// pipeline silhouettes make that constraint too brittle to enforce
/// exactly, so this evaluator adds the soft complement: a penalty for
/// model axis samples that lie outside the silhouette, weighted by
/// `outside_weight` (0 recovers the paper's pure Eq. 3).
#[derive(Debug, Clone)]
pub struct SilhouetteFitness {
    /// Silhouette pixel centres, image space.
    points: Vec<Point2>,
    /// Total silhouette pixel count N (before subsampling).
    total_points: usize,
    /// Per-stick thickness t_l in pixels, paper order.
    thickness_px: [f64; 8],
    /// The camera used to project candidate poses.
    camera: Camera,
    /// Chamfer distance field of the silhouette (for the coverage term).
    distance_field: slj_imgproc::distance::DistanceField,
    /// Weight of the model-outside-silhouette penalty.
    outside_weight: f64,
}

impl SilhouetteFitness {
    /// Prepares an evaluator over every `stride`-th silhouette pixel
    /// (`stride = 1` uses all pixels), with the default coverage-term
    /// weight of 1.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::EmptySilhouette`] when the mask has no
    /// foreground and [`GaError::BadConfig`] when `stride == 0`.
    pub fn new(
        silhouette: &Mask,
        dims: &BodyDims,
        camera: &Camera,
        stride: usize,
    ) -> Result<Self, GaError> {
        Self::with_outside_weight(silhouette, dims, camera, stride, 1.0)
    }

    /// As [`SilhouetteFitness::new`] with an explicit coverage-term
    /// weight (`0.0` = the paper's pure Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns [`GaError::EmptySilhouette`] when the mask has no
    /// foreground and [`GaError::BadConfig`] when `stride == 0` or the
    /// weight is negative/non-finite.
    pub fn with_outside_weight(
        silhouette: &Mask,
        dims: &BodyDims,
        camera: &Camera,
        stride: usize,
        outside_weight: f64,
    ) -> Result<Self, GaError> {
        if stride == 0 {
            return Err(GaError::BadConfig {
                what: "stride must be positive",
            });
        }
        if !outside_weight.is_finite() || outside_weight < 0.0 {
            return Err(GaError::BadConfig {
                what: "outside_weight must be finite and non-negative",
            });
        }
        let total_points = silhouette.count();
        if total_points == 0 {
            return Err(GaError::EmptySilhouette);
        }
        let points: Vec<Point2> = silhouette
            .foreground_pixels()
            .step_by(stride)
            .map(|(x, y)| Point2::new(x as f64, y as f64))
            .collect();
        let mut thickness_px = [0.0; 8];
        for s in ALL_STICKS {
            thickness_px[s.index()] = camera.length_to_pixels(dims.thickness(s)).max(1e-6);
        }
        Ok(SilhouetteFitness {
            points,
            total_points,
            thickness_px,
            camera: *camera,
            distance_field: slj_imgproc::distance::DistanceField::new(silhouette),
            outside_weight,
        })
    }

    /// Number of points actually evaluated per call.
    pub fn sample_count(&self) -> usize {
        self.points.len()
    }

    /// Total silhouette pixel count N.
    pub fn total_points(&self) -> usize {
        self.total_points
    }

    /// The silhouette's chamfer distance field (shared with callers
    /// that need their own silhouette-distance queries, e.g. the pose
    /// problem's validity test — building it twice per frame was
    /// measurable).
    pub fn distance_field(&self) -> &slj_imgproc::distance::DistanceField {
        &self.distance_field
    }

    /// Evaluates the full cost: Eq. 3 plus `outside_weight` times the
    /// coverage penalty. Lower is better.
    ///
    /// Uses the exact branch-and-bound stick pruning (see the module
    /// docs); [`SilhouetteFitness::evaluate_unpruned`] is the
    /// reference scan it is tested against.
    pub fn evaluate(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        self.evaluate_impl(pose, dims, true)
    }

    /// As [`SilhouetteFitness::evaluate`] but scanning all 8 sticks per
    /// pixel without pruning — the pre-optimisation reference path,
    /// kept for the exactness property test and the perf baseline.
    pub fn evaluate_unpruned(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        self.evaluate_impl(pose, dims, false)
    }

    fn evaluate_impl(&self, pose: &Pose, dims: &BodyDims, prune: bool) -> f64 {
        let sticks = self.project(pose, dims);
        let eq3 = self.eq3_from_sticks(&sticks, prune);
        if self.outside_weight == 0.0 {
            eq3
        } else {
            eq3 + self.outside_weight * self.outside_penalty_from_sticks(&sticks)
        }
    }

    /// Evaluates the paper's pure Eq. 3 term only.
    pub fn evaluate_eq3(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        let sticks = self.project(pose, dims);
        self.eq3_from_sticks(&sticks, true)
    }

    /// The pure Eq. 3 term via the unpruned reference scan.
    pub fn evaluate_eq3_unpruned(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        let sticks = self.project(pose, dims);
        self.eq3_from_sticks(&sticks, false)
    }

    /// Evaluates the coverage penalty only: the mean, over evenly-spaced
    /// model axis samples, of how far each sample lies outside the
    /// silhouette, in units of its stick's thickness.
    pub fn outside_penalty(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        let sticks = self.project(pose, dims);
        self.outside_penalty_from_sticks(&sticks)
    }

    /// Projects the pose's sticks to image space and prepares them for
    /// the per-pixel loop — once per genome, not once per pixel.
    fn project(&self, pose: &Pose, dims: &BodyDims) -> [PreparedStick; 8] {
        let segs = pose.segments(dims);
        let mut sticks = [PreparedStick::new(Point2::origin(), Point2::origin(), 1.0); 8];
        for (stick, seg) in segs.iter() {
            let s = self.camera.segment_to_image(seg);
            sticks[stick.index()] = PreparedStick::new(s.a, s.b, self.thickness_px[stick.index()]);
        }
        sticks
    }

    fn eq3_from_sticks(&self, sticks: &[PreparedStick; 8], prune: bool) -> f64 {
        let mut total = 0.0;
        // Warm start: silhouette pixels come in scanline order, so the
        // winning stick rarely changes between neighbours. Seeding each
        // pixel with the previous winner only changes *which redundant
        // sticks get evaluated*, never the minimum itself, so the sum
        // stays bit-identical to the exhaustive scan.
        let mut hint = 0usize;
        for &p in &self.points {
            let best_sq = if prune {
                let (b, argmin) = Self::best_scaled_sq_pruned(sticks, p, hint);
                hint = argmin;
                b
            } else {
                Self::best_scaled_sq_exhaustive(sticks, p)
            };
            total += best_sq.sqrt();
        }
        total / self.points.len() as f64
    }

    /// `min_l d²(p, S_l) / t_l²` by scanning every stick.
    #[inline]
    fn best_scaled_sq_exhaustive(sticks: &[PreparedStick; 8], p: Point2) -> f64 {
        let mut best = f64::INFINITY;
        for s in sticks {
            let v = s.scaled_distance_sq(p);
            if v < best {
                best = v;
            }
        }
        best
    }

    /// The same minimum via branch-and-bound: the `hint` stick (the
    /// previous pixel's winner) is scored exactly first, then every
    /// other stick is skipped when its AABB lower bound cannot beat the
    /// current best. Returns the minimum and its stick index (the next
    /// pixel's hint). Bounds are computed lazily, one stick at a time —
    /// with a good hint the common case is seven cheap bound tests and
    /// zero further exact evaluations.
    #[inline]
    fn best_scaled_sq_pruned(sticks: &[PreparedStick; 8], p: Point2, hint: usize) -> (f64, usize) {
        let mut best = sticks[hint].scaled_distance_sq(p);
        let mut argmin = hint;
        for (i, s) in sticks.iter().enumerate() {
            if i == hint || s.scaled_lower_bound_sq(p) >= best * PRUNE_SLACK {
                continue;
            }
            let v = s.scaled_distance_sq(p);
            if v < best {
                best = v;
                argmin = i;
            }
        }
        (best, argmin)
    }

    /// Branch-and-bound accounting for one scoring pass over the
    /// silhouette with the given pose (see [`PruneStats`]). Runs the
    /// same pruned scan as [`SilhouetteFitness::evaluate`] but with
    /// counters, off the hot path: the observability layer calls this
    /// once per frame on the winning pose, never inside the GA loop.
    pub fn prune_stats(&self, pose: &Pose, dims: &BodyDims) -> PruneStats {
        let sticks = self.project(pose, dims);
        let mut stats = PruneStats::default();
        let mut hint = 0usize;
        for &p in &self.points {
            let mut best = sticks[hint].scaled_distance_sq(p);
            let mut argmin = hint;
            stats.candidates += 1;
            for (i, s) in sticks.iter().enumerate() {
                if i == hint {
                    continue;
                }
                if s.scaled_lower_bound_sq(p) >= best * PRUNE_SLACK {
                    stats.pruned += 1;
                    continue;
                }
                stats.candidates += 1;
                let v = s.scaled_distance_sq(p);
                if v < best {
                    best = v;
                    argmin = i;
                }
            }
            hint = argmin;
        }
        stats
    }

    fn outside_penalty_from_sticks(&self, sticks: &[PreparedStick; 8]) -> f64 {
        let df = &self.distance_field;
        let (w, h) = (df.width(), df.height());
        let mut total = 0.0;
        let mut count = 0usize;
        for (stick, &t) in sticks.iter().zip(&self.thickness_px) {
            let seg = slj_imgproc::geometry::Segment::new(stick.a, stick.b);
            for p in seg.sample(MODEL_SAMPLES_PER_STICK) {
                count += 1;
                let (x, y) = (p.x.round(), p.y.round());
                let d = if x >= 0.0 && y >= 0.0 && (x as usize) < w && (y as usize) < h {
                    df.distance(x as usize, y as usize)
                } else {
                    // Off-image samples are maximally outside.
                    (w + h) as f64
                };
                total += ((d - t).max(0.0) / t).min(20.0);
            }
        }
        total / count.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::{Angle, StickKind};
    use slj_video::render::render_silhouette;

    fn setup() -> (BodyDims, Camera, Pose) {
        let dims = BodyDims::default();
        let camera = Camera::default();
        let mut pose = Pose::standing(&dims);
        pose.center.x = 0.6;
        (dims, camera, pose)
    }

    #[test]
    fn true_pose_scores_below_one() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let f = fit.evaluate(&pose, &dims);
        // Every silhouette pixel is within its capsule radius of the
        // generating stick, so each term is <= ~1.
        assert!(f < 0.8, "true-pose fitness {f}");
    }

    #[test]
    fn displaced_pose_scores_worse() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let base = fit.evaluate(&pose, &dims);
        let mut shifted = pose;
        shifted.center.x += 0.25;
        assert!(fit.evaluate(&shifted, &dims) > base * 2.0);
        let mut rotated = pose;
        rotated = rotated.with_angle(StickKind::Trunk, Angle::from_degrees(90.0));
        assert!(fit.evaluate(&rotated, &dims) > base * 1.5);
    }

    #[test]
    fn fitness_is_monotone_in_displacement() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let mut prev = fit.evaluate(&pose, &dims);
        for step in 1..=5 {
            let mut p = pose;
            p.center.x += step as f64 * 0.1;
            let f = fit.evaluate(&p, &dims);
            assert!(f > prev, "step {step}: {f} <= {prev}");
            prev = f;
        }
    }

    #[test]
    fn stride_approximates_full_evaluation() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let full = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let strided = SilhouetteFitness::new(&sil, &dims, &camera, 4).unwrap();
        assert!(strided.sample_count() * 3 < full.sample_count());
        let a = full.evaluate(&pose, &dims);
        let b = strided.evaluate(&pose, &dims);
        assert!((a - b).abs() < 0.1 * a.max(0.05), "full {a} vs strided {b}");
        // Ranking is preserved for a clearly-worse pose.
        let mut bad = pose;
        bad.center.x += 0.3;
        assert!(strided.evaluate(&bad, &dims) > b);
    }

    #[test]
    fn prune_stats_account_for_every_stick() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let stats = fit.prune_stats(&pose, &dims);
        // Every pixel tests all 8 sticks: each is either scored exactly
        // or pruned, and the hint warm-start makes pruning the common
        // case on a well-fitting pose.
        assert_eq!(
            stats.candidates + stats.pruned,
            8 * fit.sample_count() as u64
        );
        assert!(stats.pruned > stats.candidates, "{stats:?}");
        assert_eq!(fit.prune_stats(&pose, &dims), stats);
    }

    #[test]
    fn empty_silhouette_rejected() {
        let (dims, camera, _) = setup();
        let blank = Mask::new(camera.width, camera.height);
        assert!(matches!(
            SilhouetteFitness::new(&blank, &dims, &camera, 1),
            Err(GaError::EmptySilhouette)
        ));
    }

    #[test]
    fn zero_stride_rejected() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        assert!(matches!(
            SilhouetteFitness::new(&sil, &dims, &camera, 0),
            Err(GaError::BadConfig { .. })
        ));
    }

    #[test]
    fn counts_are_reported() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 2).unwrap();
        assert_eq!(fit.total_points(), sil.count());
        assert_eq!(fit.sample_count(), sil.count().div_ceil(2));
    }

    #[test]
    fn true_pose_has_negligible_outside_penalty() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        assert!(fit.outside_penalty(&pose, &dims) < 0.05);
        // Total = Eq.3 + penalty ~= Eq.3 for the true pose.
        let total = fit.evaluate(&pose, &dims);
        let eq3 = fit.evaluate_eq3(&pose, &dims);
        assert!((total - eq3).abs() < 0.05, "total {total} vs eq3 {eq3}");
    }

    #[test]
    fn stick_poking_out_is_penalised() {
        // Arm raised horizontally forward, far outside the standing
        // silhouette: Eq. 3 barely notices, the coverage term does —
        // this is what disambiguates a hidden arm.
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let raised = pose.with_angle(StickKind::UpperArm, Angle::FORWARD);
        let eq3_delta = fit.evaluate_eq3(&raised, &dims) - fit.evaluate_eq3(&pose, &dims);
        let penalty = fit.outside_penalty(&raised, &dims);
        assert!(penalty > 0.5, "penalty {penalty}");
        assert!(
            penalty > eq3_delta.abs() * 2.0,
            "penalty {penalty} should dominate the Eq.3 change {eq3_delta}"
        );
        assert!(fit.evaluate(&raised, &dims) > fit.evaluate(&pose, &dims) + 0.3);
    }

    #[test]
    fn zero_weight_recovers_pure_eq3() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let pure = SilhouetteFitness::with_outside_weight(&sil, &dims, &camera, 1, 0.0).unwrap();
        let raised = pose.with_angle(StickKind::UpperArm, Angle::FORWARD);
        assert_eq!(
            pure.evaluate(&raised, &dims),
            pure.evaluate_eq3(&raised, &dims)
        );
    }

    #[test]
    fn negative_weight_rejected() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        assert!(matches!(
            SilhouetteFitness::with_outside_weight(&sil, &dims, &camera, 1, -1.0),
            Err(GaError::BadConfig { .. })
        ));
    }

    #[test]
    fn pruned_evaluation_is_bit_identical_to_unpruned() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let mut candidates = vec![pose];
        for step in 1..=4 {
            let mut p = pose;
            p.center.x += step as f64 * 0.12;
            p.center.y -= step as f64 * 0.03;
            candidates.push(p);
            candidates
                .push(p.with_angle(StickKind::Trunk, Angle::from_degrees(35.0 * step as f64)));
        }
        for (k, p) in candidates.iter().enumerate() {
            assert_eq!(
                fit.evaluate(p, &dims),
                fit.evaluate_unpruned(p, &dims),
                "candidate {k}: pruned and unpruned full cost diverge"
            );
            assert_eq!(
                fit.evaluate_eq3(p, &dims),
                fit.evaluate_eq3_unpruned(p, &dims),
                "candidate {k}: pruned and unpruned Eq. 3 diverge"
            );
        }
    }

    #[test]
    fn distance_field_accessor_matches_mask() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        assert_eq!(fit.distance_field().width(), sil.width());
        assert_eq!(fit.distance_field().height(), sil.height());
    }

    #[test]
    fn thickness_normalisation_favors_thin_stick_fit() {
        // A point at equal pixel distance from two sticks is "closer"
        // (per Eq. 3) to the thicker one.
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let trunk_t = fit.thickness_px[StickKind::Trunk.index()];
        let neck_t = fit.thickness_px[StickKind::Neck.index()];
        assert!(trunk_t > neck_t);
    }
}
