//! Eq. 3 — the silhouette-fit cost.
//!
//! ```text
//! F_S = ( Σ_{(x_i, y_j) ∈ silhouette}  min_{l = 0..7}  d((x_i, y_j), S_l) / t_l ) / N
//! ```
//!
//! where `d` is the distance from a silhouette pixel to stick `S_l`,
//! `t_l` is "the average thickness of the area surrounding stick S_l"
//! (known exactly here: the renderer's capsule radius), and `N` is the
//! silhouette's pixel count. A model that threads every stick through
//! the middle of its body part scores ≲ 1; the smaller, the better.
//!
//! The cost of one evaluation is `O(points × 8)`. [`SilhouetteFitness`]
//! optionally subsamples the silhouette with a stride — the estimator is
//! unbiased for ranking purposes and the Fig. 7 ablation/benches measure
//! the speed/accuracy trade-off.
//!
//! The default evaluation path is a branch-and-bound over the 8 sticks:
//! each candidate pose's sticks are prepared once per genome (direction,
//! squared length and axis-aligned bounding box hoisted out of the
//! per-pixel loop). Silhouette pixels arrive in scanline order, so the
//! stick nearest one pixel is almost always nearest the next — each
//! pixel scores the previous pixel's winner exactly first, then skips
//! any other stick whose AABB lower bound cannot beat that. The pruned
//! result is **exact** — bit-identical to the exhaustive scan,
//! property-tested in `tests/properties.rs` — because the AABB distance
//! never exceeds the true stick distance and the skip test carries a
//! slack factor that dominates the rounding error of both computations.
//!
//! On top of the scalar paths sits the **lane kernel**
//! ([`SilhouetteFitness::evaluate_lanes`] /
//! [`SilhouetteFitness::evaluate_batch`]): the sampled points live in a
//! [`PreparedFrame`] — structure-of-arrays x[]/y[] planes chunked
//! [`LANES`] wide — and the per-pixel min-over-sticks runs across a
//! whole chunk at a time, with the branch-and-bound test lifted to
//! chunk granularity (skip a stick for all 8 lanes when the distance
//! between the chunk's bounding box and the stick's AABB already
//! exceeds the worst lane's current best). Every lane performs exactly
//! the scalar arithmetic on exactly the same values and the final sum
//! is accumulated in original pixel order, so the result is
//! bit-identical to both scalar paths — that equivalence is what the
//! `lanes_*` property tests pin down.

use crate::error::GaError;
use slj_imgproc::geometry::{Point2, Vec2};
use slj_imgproc::lanes::{ChunkBounds, PreparedFrame, LANES};
use slj_imgproc::mask::Mask;
use slj_motion::model::ALL_STICKS;
use slj_motion::{BodyDims, Pose};
use slj_video::Camera;

/// Which Eq. 3 kernel a [`crate::PoseProblem`] evaluation uses. Both
/// produce bit-identical fitness values; the choice is a throughput
/// setting, kept explicit so the perf harness can race the live scalar
/// reference against the lane kernel forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub enum Eq3Kernel {
    /// Genome-at-a-time scalar scan with the per-pixel warm-started
    /// branch-and-bound — the pre-vectorisation hot path, kept live.
    Scalar,
    /// Chunked structure-of-arrays kernel with chunk-granular pruning
    /// and batched population evaluation.
    #[default]
    Lanes,
}

// Manual impl so a missing/null field deserialises to the default —
// configs serialised before the kernel knob existed must still load
// (the vendored serde derive has no `#[serde(default)]` support).
impl serde::Deserialize for Eq3Kernel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Null => Ok(Eq3Kernel::default()),
            serde::Value::Str(s) if s == "Scalar" => Ok(Eq3Kernel::Scalar),
            serde::Value::Str(s) if s == "Lanes" => Ok(Eq3Kernel::Lanes),
            other => Err(serde::DeError::expected("Eq3Kernel variant", other)),
        }
    }
}

/// Number of axis samples per stick for the model→silhouette coverage
/// term.
const MODEL_SAMPLES_PER_STICK: usize = 7;

/// Slack on the branch-and-bound skip test: a stick is skipped only
/// when its AABB lower bound exceeds the current best *times this
/// factor* — i.e. the test under-prunes, never over-prunes. The exact
/// and the lower-bound distances are each a handful of f64 operations
/// (relative error ≪ 1e-14), so a 1e-12 margin guarantees a skipped
/// stick could never have won — pruning stays bit-exact.
const PRUNE_SLACK: f64 = 1.0 + 1e-12;

/// Branch-and-bound accounting for one pruned Eq. 3 scoring pass
/// ([`SilhouetteFitness::prune_stats`]): how many stick distances were
/// computed exactly and how many the AABB lower bound skipped.
/// `candidates + pruned == 8 × sample pixels` always. Deterministic by
/// construction — the scan is sequential over scanline-ordered pixels —
/// so it is safe to expose through the observability layer at any
/// `Parallelism`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Sticks scored exactly.
    pub candidates: u64,
    /// Sticks skipped by the lower-bound test.
    pub pruned: u64,
}

/// One stick of a candidate pose, prepared once per genome for the
/// per-pixel distance loop: endpoints, direction and squared length
/// (hoisted out of `Segment::distance_to`), the normalising inverse
/// squared thickness, and the stick's axis-aligned bounding box for the
/// branch-and-bound lower bound.
#[derive(Debug, Clone, Copy)]
struct PreparedStick {
    a: Point2,
    b: Point2,
    /// `b - a`.
    d: Vec2,
    /// `|b - a|²`.
    len_sq: f64,
    /// `1 / t_l²`.
    inv_t_sq: f64,
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl PreparedStick {
    fn new(a: Point2, b: Point2, thickness: f64) -> PreparedStick {
        let d = b - a;
        PreparedStick {
            a,
            b,
            d,
            len_sq: d.norm_sq(),
            inv_t_sq: 1.0 / (thickness * thickness),
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// Squared distance from `p` to the stick's axis, over t_l² —
    /// the same arithmetic as `Segment::distance_sq_to` with the
    /// direction and squared length precomputed.
    #[inline]
    fn scaled_distance_sq(&self, p: Point2) -> f64 {
        let t = if self.len_sq <= f64::EPSILON {
            0.0
        } else {
            ((p - self.a).dot(self.d) / self.len_sq).clamp(0.0, 1.0)
        };
        let closest = self.a + self.d * t;
        p.distance_sq(closest) * self.inv_t_sq
    }

    /// Lower bound of [`PreparedStick::scaled_distance_sq`]: squared
    /// distance from `p` to the stick's AABB, over t_l². The stick lies
    /// inside its AABB, so this never exceeds the exact value.
    #[inline]
    fn scaled_lower_bound_sq(&self, p: Point2) -> f64 {
        let dx = (self.min_x - p.x).max(p.x - self.max_x).max(0.0);
        let dy = (self.min_y - p.y).max(p.y - self.max_y).max(0.0);
        (dx * dx + dy * dy) * self.inv_t_sq
    }
}

/// A prepared Eq. 3 evaluator for one silhouette.
///
/// Eq. 3 is one-directional — it asks how well the *silhouette* is
/// explained by the model, so a stick poking into empty space costs
/// nothing. The paper compensates with a hard constraint (chromosomes
/// "not in the boundary of the silhouette" are removed outright); real
/// pipeline silhouettes make that constraint too brittle to enforce
/// exactly, so this evaluator adds the soft complement: a penalty for
/// model axis samples that lie outside the silhouette, weighted by
/// `outside_weight` (0 recovers the paper's pure Eq. 3).
#[derive(Debug, Clone)]
pub struct SilhouetteFitness {
    /// Silhouette pixel centres in image space, laid out as
    /// lane-chunked structure-of-arrays planes. The scalar paths read
    /// the same coordinates through [`PreparedFrame::iter`].
    frame: PreparedFrame,
    /// Total silhouette pixel count N (before subsampling).
    total_points: usize,
    /// Per-stick thickness t_l in pixels, paper order.
    thickness_px: [f64; 8],
    /// The camera used to project candidate poses.
    camera: Camera,
    /// Chamfer distance field of the silhouette (for the coverage term).
    distance_field: slj_imgproc::distance::DistanceField,
    /// Weight of the model-outside-silhouette penalty.
    outside_weight: f64,
}

impl SilhouetteFitness {
    /// Prepares an evaluator over every `stride`-th silhouette pixel
    /// (`stride = 1` uses all pixels), with the default coverage-term
    /// weight of 1.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::EmptySilhouette`] when the mask has no
    /// foreground and [`GaError::BadConfig`] when `stride == 0`.
    pub fn new(
        silhouette: &Mask,
        dims: &BodyDims,
        camera: &Camera,
        stride: usize,
    ) -> Result<Self, GaError> {
        Self::with_outside_weight(silhouette, dims, camera, stride, 1.0)
    }

    /// As [`SilhouetteFitness::new`] with an explicit coverage-term
    /// weight (`0.0` = the paper's pure Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns [`GaError::EmptySilhouette`] when the mask has no
    /// foreground and [`GaError::BadConfig`] when `stride == 0` or the
    /// weight is negative/non-finite.
    pub fn with_outside_weight(
        silhouette: &Mask,
        dims: &BodyDims,
        camera: &Camera,
        stride: usize,
        outside_weight: f64,
    ) -> Result<Self, GaError> {
        if stride == 0 {
            return Err(GaError::BadConfig {
                what: "stride must be positive",
            });
        }
        if !outside_weight.is_finite() || outside_weight < 0.0 {
            return Err(GaError::BadConfig {
                what: "outside_weight must be finite and non-negative",
            });
        }
        let total_points = silhouette.count();
        if total_points == 0 {
            return Err(GaError::EmptySilhouette);
        }
        let frame = PreparedFrame::from_mask(silhouette, stride);
        let mut thickness_px = [0.0; 8];
        for s in ALL_STICKS {
            thickness_px[s.index()] = camera.length_to_pixels(dims.thickness(s)).max(1e-6);
        }
        Ok(SilhouetteFitness {
            frame,
            total_points,
            thickness_px,
            camera: *camera,
            distance_field: slj_imgproc::distance::DistanceField::new(silhouette),
            outside_weight,
        })
    }

    /// Rebuilds this evaluator in place for a new silhouette, reusing
    /// the prepared-frame planes and the distance-field storage.
    /// Value-identical to replacing it with a fresh
    /// [`SilhouetteFitness::with_outside_weight`] at the current
    /// `outside_weight` (which is configuration, not per-frame state,
    /// and is kept). On error the evaluator is left unusable for the
    /// rejected silhouette and must not be evaluated until a successful
    /// rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::EmptySilhouette`] when the mask has no
    /// foreground and [`GaError::BadConfig`] when `stride == 0`.
    pub fn rebuild(
        &mut self,
        silhouette: &Mask,
        dims: &BodyDims,
        camera: &Camera,
        stride: usize,
    ) -> Result<(), GaError> {
        if stride == 0 {
            return Err(GaError::BadConfig {
                what: "stride must be positive",
            });
        }
        let total_points = silhouette.count();
        if total_points == 0 {
            return Err(GaError::EmptySilhouette);
        }
        self.frame.rebuild_from_mask(silhouette, stride);
        for s in ALL_STICKS {
            self.thickness_px[s.index()] = camera.length_to_pixels(dims.thickness(s)).max(1e-6);
        }
        self.total_points = total_points;
        self.camera = *camera;
        self.distance_field.rebuild(silhouette);
        Ok(())
    }

    /// Number of points actually evaluated per call.
    pub fn sample_count(&self) -> usize {
        self.frame.len()
    }

    /// Total silhouette pixel count N.
    pub fn total_points(&self) -> usize {
        self.total_points
    }

    /// The silhouette's chamfer distance field (shared with callers
    /// that need their own silhouette-distance queries, e.g. the pose
    /// problem's validity test — building it twice per frame was
    /// measurable).
    pub fn distance_field(&self) -> &slj_imgproc::distance::DistanceField {
        &self.distance_field
    }

    /// Evaluates the full cost: Eq. 3 plus `outside_weight` times the
    /// coverage penalty. Lower is better.
    ///
    /// Uses the exact branch-and-bound stick pruning (see the module
    /// docs); [`SilhouetteFitness::evaluate_unpruned`] is the
    /// reference scan it is tested against.
    pub fn evaluate(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        self.evaluate_impl(pose, dims, true)
    }

    /// As [`SilhouetteFitness::evaluate`] but scanning all 8 sticks per
    /// pixel without pruning — the pre-optimisation reference path,
    /// kept for the exactness property test and the perf baseline.
    pub fn evaluate_unpruned(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        self.evaluate_impl(pose, dims, false)
    }

    fn evaluate_impl(&self, pose: &Pose, dims: &BodyDims, prune: bool) -> f64 {
        let sticks = self.project(pose, dims);
        let eq3 = self.eq3_from_sticks(&sticks, prune);
        if self.outside_weight == 0.0 {
            eq3
        } else {
            eq3 + self.outside_weight * self.outside_penalty_from_sticks(&sticks)
        }
    }

    /// Evaluates the full cost via the lane kernel: chunked
    /// structure-of-arrays Eq. 3 with chunk-granular branch-and-bound.
    /// Bit-identical to [`SilhouetteFitness::evaluate`] and
    /// [`SilhouetteFitness::evaluate_unpruned`] (property-tested).
    pub fn evaluate_lanes(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        let sticks = self.project(pose, dims);
        let eq3 = lanes_eq3_sum(&self.frame, &sticks) / self.frame.len() as f64;
        if self.outside_weight == 0.0 {
            eq3
        } else {
            eq3 + self.outside_weight * self.outside_penalty_from_sticks(&sticks)
        }
    }

    /// Evaluates a whole batch of poses against the prepared frame in
    /// one pass: every pose is projected up front, then the frame is
    /// walked chunk-outer / genome-inner so each chunk's coordinates
    /// stay hot across the population, and the per-chunk prune hints in
    /// `scratch` are shared across genomes (and across calls — hints
    /// only steer which redundant sticks get bound-tested first, never
    /// the returned values). `out[i]` receives exactly what
    /// [`SilhouetteFitness::evaluate`] returns for `poses[i]`.
    ///
    /// With a warmed `scratch`, the call performs no heap allocation
    /// (asserted by `tests/zero_alloc.rs`).
    ///
    /// # Panics
    ///
    /// Panics when `poses` and `out` differ in length.
    pub fn evaluate_batch(
        &self,
        poses: &[Pose],
        dims: &BodyDims,
        out: &mut [f64],
        scratch: &mut BatchScratch,
    ) {
        assert_eq!(poses.len(), out.len(), "evaluate_batch length mismatch");
        scratch.sticks.clear();
        scratch.sticks.reserve(poses.len());
        for pose in poses {
            scratch.sticks.push(self.project(pose, dims));
        }
        if scratch.hints.len() != self.frame.num_chunks() {
            scratch.hints.clear();
            scratch.hints.resize(self.frame.num_chunks(), 0);
        }
        out.fill(0.0);
        lanes_eq3_batch(&self.frame, &scratch.sticks, &mut scratch.hints, out);
        let n = self.frame.len() as f64;
        for (slot, sticks) in out.iter_mut().zip(&scratch.sticks) {
            *slot /= n;
            if self.outside_weight != 0.0 {
                *slot += self.outside_weight * self.outside_penalty_from_sticks(sticks);
            }
        }
    }

    /// Evaluates the paper's pure Eq. 3 term only.
    pub fn evaluate_eq3(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        let sticks = self.project(pose, dims);
        self.eq3_from_sticks(&sticks, true)
    }

    /// The pure Eq. 3 term via the unpruned reference scan.
    pub fn evaluate_eq3_unpruned(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        let sticks = self.project(pose, dims);
        self.eq3_from_sticks(&sticks, false)
    }

    /// Evaluates the coverage penalty only: the mean, over evenly-spaced
    /// model axis samples, of how far each sample lies outside the
    /// silhouette, in units of its stick's thickness.
    pub fn outside_penalty(&self, pose: &Pose, dims: &BodyDims) -> f64 {
        let sticks = self.project(pose, dims);
        self.outside_penalty_from_sticks(&sticks)
    }

    /// Projects the pose's sticks to image space and prepares them for
    /// the per-pixel loop — once per genome, not once per pixel.
    fn project(&self, pose: &Pose, dims: &BodyDims) -> [PreparedStick; 8] {
        let segs = pose.segments(dims);
        let mut sticks = [PreparedStick::new(Point2::origin(), Point2::origin(), 1.0); 8];
        for (stick, seg) in segs.iter() {
            let s = self.camera.segment_to_image(seg);
            sticks[stick.index()] = PreparedStick::new(s.a, s.b, self.thickness_px[stick.index()]);
        }
        sticks
    }

    fn eq3_from_sticks(&self, sticks: &[PreparedStick; 8], prune: bool) -> f64 {
        let mut total = 0.0;
        // Warm start: silhouette pixels come in scanline order, so the
        // winning stick rarely changes between neighbours. Seeding each
        // pixel with the previous winner only changes *which redundant
        // sticks get evaluated*, never the minimum itself, so the sum
        // stays bit-identical to the exhaustive scan.
        let mut hint = 0usize;
        for p in self.frame.iter() {
            let best_sq = if prune {
                let (b, argmin) = Self::best_scaled_sq_pruned(sticks, p, hint);
                hint = argmin;
                b
            } else {
                Self::best_scaled_sq_exhaustive(sticks, p)
            };
            total += best_sq.sqrt();
        }
        total / self.frame.len() as f64
    }

    /// `min_l d²(p, S_l) / t_l²` by scanning every stick.
    #[inline]
    fn best_scaled_sq_exhaustive(sticks: &[PreparedStick; 8], p: Point2) -> f64 {
        let mut best = f64::INFINITY;
        for s in sticks {
            let v = s.scaled_distance_sq(p);
            if v < best {
                best = v;
            }
        }
        best
    }

    /// The same minimum via branch-and-bound: the `hint` stick (the
    /// previous pixel's winner) is scored exactly first, then every
    /// other stick is skipped when its AABB lower bound cannot beat the
    /// current best. Returns the minimum and its stick index (the next
    /// pixel's hint). Bounds are computed lazily, one stick at a time —
    /// with a good hint the common case is seven cheap bound tests and
    /// zero further exact evaluations.
    #[inline]
    fn best_scaled_sq_pruned(sticks: &[PreparedStick; 8], p: Point2, hint: usize) -> (f64, usize) {
        let mut best = sticks[hint].scaled_distance_sq(p);
        let mut argmin = hint;
        for (i, s) in sticks.iter().enumerate() {
            if i == hint || s.scaled_lower_bound_sq(p) >= best * PRUNE_SLACK {
                continue;
            }
            let v = s.scaled_distance_sq(p);
            if v < best {
                best = v;
                argmin = i;
            }
        }
        (best, argmin)
    }

    /// Branch-and-bound accounting for one scoring pass over the
    /// silhouette with the given pose (see [`PruneStats`]). Runs the
    /// same pruned scan as [`SilhouetteFitness::evaluate`] but with
    /// counters, off the hot path: the observability layer calls this
    /// once per frame on the winning pose, never inside the GA loop.
    pub fn prune_stats(&self, pose: &Pose, dims: &BodyDims) -> PruneStats {
        let sticks = self.project(pose, dims);
        let mut stats = PruneStats::default();
        let mut hint = 0usize;
        for p in self.frame.iter() {
            let mut best = sticks[hint].scaled_distance_sq(p);
            let mut argmin = hint;
            stats.candidates += 1;
            for (i, s) in sticks.iter().enumerate() {
                if i == hint {
                    continue;
                }
                if s.scaled_lower_bound_sq(p) >= best * PRUNE_SLACK {
                    stats.pruned += 1;
                    continue;
                }
                stats.candidates += 1;
                let v = s.scaled_distance_sq(p);
                if v < best {
                    best = v;
                    argmin = i;
                }
            }
            hint = argmin;
        }
        stats
    }

    fn outside_penalty_from_sticks(&self, sticks: &[PreparedStick; 8]) -> f64 {
        let df = &self.distance_field;
        let (w, h) = (df.width(), df.height());
        let mut total = 0.0;
        let mut count = 0usize;
        for (stick, &t) in sticks.iter().zip(&self.thickness_px) {
            let seg = slj_imgproc::geometry::Segment::new(stick.a, stick.b);
            for p in seg.sample_iter(MODEL_SAMPLES_PER_STICK) {
                count += 1;
                let (x, y) = (p.x.round(), p.y.round());
                let d = if x >= 0.0 && y >= 0.0 && (x as usize) < w && (y as usize) < h {
                    df.distance(x as usize, y as usize)
                } else {
                    // Off-image samples are maximally outside.
                    (w + h) as f64
                };
                total += ((d - t).max(0.0) / t).min(20.0);
            }
        }
        total / count.max(1) as f64
    }
}

/// Reusable scratch for [`SilhouetteFitness::evaluate_batch`]: the
/// batch's prepared stick sets plus the per-chunk prune hints shared
/// across genomes. Hints persist across calls on purpose — a hint only
/// decides which stick seeds a chunk's lane minima (work saving), never
/// the returned values, so carrying them between generations is free
/// warm-up.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    sticks: Vec<[PreparedStick; 8]>,
    hints: Vec<u32>,
}

// --- lane kernel -----------------------------------------------------
//
// The kernel processes one LANES-wide chunk of silhouette points per
// iteration. Bit-exactness with the scalar paths rests on three facts:
//
// 1. Each lane performs the exact scalar `scaled_distance_sq` f64
//    sequence on the same coordinates, and a minimum over the same
//    positive values is order-independent — so per-lane minima match
//    the scalar per-pixel minima bit-for-bit.
// 2. The chunk-level skip test only ever under-prunes: the stick-AABB
//    to chunk-bounds distance lower-bounds every lane's point-to-AABB
//    bound, and the test compares it against the *worst* lane's current
//    best (times the same `PRUNE_SLACK` the scalar test uses), so a
//    skipped stick could not have won in any lane.
// 3. f64 addition is order-sensitive, so the final sum is accumulated
//    lane by lane in original pixel order — per-chunk partial sums
//    would round differently.
//
// `#[target_feature]` wrappers recompile the same `#[inline(always)]`
// body for wider ISAs, selected once per walk via
// `is_x86_feature_detected!` (the baseline build targets SSE2, so
// without the runtime dispatch the 8-wide lanes would lower to 2-wide
// vectors). Every tier executes identical IEEE-754 operations —
// vectorised min/max/sqrt are exact — so the dispatch, too, is a pure
// throughput setting.

/// One lane of [`PreparedStick::scaled_distance_sq`]: identical f64
/// operations in identical order, with the degenerate-stick test
/// hoisted (it is uniform across lanes) so the lane loop stays
/// branch-free and vectorises.
#[inline(always)]
fn lane_scaled_distance_sq(s: &PreparedStick, degenerate: bool, px: f64, py: f64) -> f64 {
    let qx = px - s.a.x;
    let qy = py - s.a.y;
    let raw = (qx * s.d.x + qy * s.d.y) / s.len_sq;
    let t = if degenerate { 0.0 } else { raw.clamp(0.0, 1.0) };
    let cx = s.a.x + s.d.x * t;
    let cy = s.a.y + s.d.y * t;
    let dx = px - cx;
    let dy = py - cy;
    (dx * dx + dy * dy) * s.inv_t_sq
}

/// Scores one chunk for one genome: exact min-over-sticks per lane with
/// the branch-and-bound lifted to chunk granularity, square roots taken
/// per lane, and the results accumulated into `total` in original pixel
/// order. Returns the last live lane's winning stick — the next hint.
#[inline(always)]
fn eq3_chunk(
    xs: &[f64; LANES],
    ys: &[f64; LANES],
    bounds: ChunkBounds,
    live: usize,
    sticks: &[PreparedStick; 8],
    hint: u32,
    total: &mut f64,
) -> u32 {
    let mut best = [0.0f64; LANES];
    let mut arg = [hint; LANES];
    {
        // The hint stick seeds every lane's current best exactly,
        // mirroring the scalar warm start.
        let s = &sticks[hint as usize];
        let degenerate = s.len_sq <= f64::EPSILON;
        for l in 0..LANES {
            best[l] = lane_scaled_distance_sq(s, degenerate, xs[l], ys[l]);
        }
    }
    // The worst lane's current best bounds the whole chunk: a stick
    // whose box-to-box lower bound cannot beat it cannot win anywhere.
    let mut chunk_ub = best[0];
    for &b in &best[1..] {
        if b > chunk_ub {
            chunk_ub = b;
        }
    }
    for (i, s) in sticks.iter().enumerate() {
        if i as u32 == hint {
            continue;
        }
        let dx = (s.min_x - bounds.max_x)
            .max(bounds.min_x - s.max_x)
            .max(0.0);
        let dy = (s.min_y - bounds.max_y)
            .max(bounds.min_y - s.max_y)
            .max(0.0);
        if (dx * dx + dy * dy) * s.inv_t_sq >= chunk_ub * PRUNE_SLACK {
            continue;
        }
        let degenerate = s.len_sq <= f64::EPSILON;
        for l in 0..LANES {
            let v = lane_scaled_distance_sq(s, degenerate, xs[l], ys[l]);
            if v < best[l] {
                best[l] = v;
                arg[l] = i as u32;
            }
        }
        chunk_ub = best[0];
        for &b in &best[1..] {
            if b > chunk_ub {
                chunk_ub = b;
            }
        }
    }
    let mut roots = [0.0f64; LANES];
    for l in 0..LANES {
        roots[l] = best[l].sqrt();
    }
    // In-order accumulation over the live lanes only — dead tail lanes
    // duplicate a real point and must not be counted.
    for &r in &roots[..live] {
        *total += r;
    }
    arg[live - 1]
}

/// Raw Eq. 3 sum (before `/ N`) for one genome over the whole frame,
/// carrying the chunk hint forward like the scalar scanline warm start.
#[inline(always)]
fn lanes_eq3_sum_impl(frame: &PreparedFrame, sticks: &[PreparedStick; 8]) -> f64 {
    let mut total = 0.0;
    let mut hint = 0u32;
    for c in 0..frame.num_chunks() {
        let (xs, ys) = frame.chunk(c);
        hint = eq3_chunk(
            xs,
            ys,
            frame.chunk_bounds(c),
            frame.chunk_live(c),
            sticks,
            hint,
            &mut total,
        );
    }
    total
}

/// Raw Eq. 3 sums for a whole batch, genome-outer with a persistent
/// per-chunk hint table: `hints[c]` — the previous genome's winner at
/// chunk `c` — warm-starts the next genome there (converged
/// populations are full of near-identical genomes, so the carried hint
/// is usually right). Genome-outer keeps the tiny frame SoA and the
/// hint table hot in L1 and loads each genome's stick set exactly
/// once; the walk order cannot affect the returned sums because the
/// hint only picks which stick seeds the (exact, conservative)
/// branch-and-bound — the per-lane minimum is the same whatever seeds
/// it.
#[allow(clippy::needless_range_loop)] // `c` indexes the frame's chunk tables and `hints` in lockstep
#[inline(always)]
fn lanes_eq3_batch_impl(
    frame: &PreparedFrame,
    sticks: &[[PreparedStick; 8]],
    hints: &mut [u32],
    totals: &mut [f64],
) {
    for (genome, total) in sticks.iter().zip(totals.iter_mut()) {
        for c in 0..frame.num_chunks() {
            let (xs, ys) = frame.chunk(c);
            hints[c] = eq3_chunk(
                xs,
                ys,
                frame.chunk_bounds(c),
                frame.chunk_live(c),
                genome,
                hints[c],
                total,
            );
        }
    }
}

/// Hand-vectorised x86-64 tiers. The autovectoriser reliably refuses
/// the generic chunk kernel (the conditional best/arg update compiles
/// to per-lane compare-and-branch), so the AVX-512 and AVX2 tiers spell
/// the same computation out in intrinsics: identical IEEE-754
/// operations per lane — sub/mul/add/div/min/max/sqrt are all
/// correctly rounded, the compare-and-blend reproduces the scalar
/// strict-less update, and no FMA contraction is introduced — so every
/// lane matches the scalar kernel bitwise (asserted by the unit and
/// property tests, which run on whatever tier the host dispatches to).
// The range loops index several chunk tables in lockstep, and the chunk
// kernels take the full per-genome argument spread on purpose — hot-path
// shape over style lints.
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// A genome's stick AABBs transposed stick-per-lane, built once per
    /// frame walk: eight sticks fill one 8-wide register, so a chunk's
    /// seven scalar (and branchy) box-to-box bound tests collapse into
    /// a single vector evaluation.
    struct StickBounds {
        min_x: [f64; 8],
        max_x: [f64; 8],
        min_y: [f64; 8],
        max_y: [f64; 8],
        inv_t_sq: [f64; 8],
    }

    impl StickBounds {
        fn new(sticks: &[PreparedStick; 8]) -> Self {
            let mut b = StickBounds {
                min_x: [0.0; 8],
                max_x: [0.0; 8],
                min_y: [0.0; 8],
                max_y: [0.0; 8],
                inv_t_sq: [0.0; 8],
            };
            for (i, s) in sticks.iter().enumerate() {
                b.min_x[i] = s.min_x;
                b.max_x[i] = s.max_x;
                b.min_y[i] = s.min_y;
                b.max_y[i] = s.max_y;
                b.inv_t_sq[i] = s.inv_t_sq;
            }
            b
        }
    }

    /// All eight sticks' box-to-box lower bounds against one chunk in a
    /// single 8-lane pass, returned with the survivor bitmask of lanes
    /// beating `threshold` — the same per-stick arithmetic and the same
    /// `>= chunk_ub * PRUNE_SLACK → skip` predicate as the scalar prune
    /// test, evaluated for all sticks at once. In the common case the
    /// hint stick already prunes everything and the mask comes back
    /// empty, so the per-stick loop never runs. Bounds only steer the
    /// conservative prune, so they cannot affect the returned sums.
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn stick_survivors_avx512(
        sb: &StickBounds,
        bounds: ChunkBounds,
        threshold: f64,
        lbs: &mut [f64; 8],
    ) -> u32 {
        let zero = _mm512_setzero_pd();
        let bdx = _mm512_max_pd(
            _mm512_max_pd(
                _mm512_sub_pd(
                    _mm512_loadu_pd(sb.min_x.as_ptr()),
                    _mm512_set1_pd(bounds.max_x),
                ),
                _mm512_sub_pd(
                    _mm512_set1_pd(bounds.min_x),
                    _mm512_loadu_pd(sb.max_x.as_ptr()),
                ),
            ),
            zero,
        );
        let bdy = _mm512_max_pd(
            _mm512_max_pd(
                _mm512_sub_pd(
                    _mm512_loadu_pd(sb.min_y.as_ptr()),
                    _mm512_set1_pd(bounds.max_y),
                ),
                _mm512_sub_pd(
                    _mm512_set1_pd(bounds.min_y),
                    _mm512_loadu_pd(sb.max_y.as_ptr()),
                ),
            ),
            zero,
        );
        let lb = _mm512_mul_pd(
            _mm512_add_pd(_mm512_mul_pd(bdx, bdx), _mm512_mul_pd(bdy, bdy)),
            _mm512_loadu_pd(sb.inv_t_sq.as_ptr()),
        );
        let mask = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(lb, _mm512_set1_pd(threshold));
        if mask != 0 {
            _mm512_storeu_pd(lbs.as_mut_ptr(), lb);
        }
        u32::from(mask)
    }

    /// [`stick_survivors_avx512`] on the AVX2 tier: two 4-wide halves,
    /// survivor bits via `movmsk` on the compare result.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn stick_survivors_avx2(
        sb: &StickBounds,
        bounds: ChunkBounds,
        threshold: f64,
        lbs: &mut [f64; 8],
    ) -> u32 {
        let mut mask = 0u32;
        for half in 0..2 {
            let o = half * 4;
            let zero = _mm256_setzero_pd();
            let bdx = _mm256_max_pd(
                _mm256_max_pd(
                    _mm256_sub_pd(
                        _mm256_loadu_pd(sb.min_x.as_ptr().add(o)),
                        _mm256_set1_pd(bounds.max_x),
                    ),
                    _mm256_sub_pd(
                        _mm256_set1_pd(bounds.min_x),
                        _mm256_loadu_pd(sb.max_x.as_ptr().add(o)),
                    ),
                ),
                zero,
            );
            let bdy = _mm256_max_pd(
                _mm256_max_pd(
                    _mm256_sub_pd(
                        _mm256_loadu_pd(sb.min_y.as_ptr().add(o)),
                        _mm256_set1_pd(bounds.max_y),
                    ),
                    _mm256_sub_pd(
                        _mm256_set1_pd(bounds.min_y),
                        _mm256_loadu_pd(sb.max_y.as_ptr().add(o)),
                    ),
                ),
                zero,
            );
            let lb = _mm256_mul_pd(
                _mm256_add_pd(_mm256_mul_pd(bdx, bdx), _mm256_mul_pd(bdy, bdy)),
                _mm256_loadu_pd(sb.inv_t_sq.as_ptr().add(o)),
            );
            let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(lb, _mm256_set1_pd(threshold));
            let half_mask = _mm256_movemask_pd(lt) as u32;
            if half_mask != 0 {
                _mm256_storeu_pd(lbs.as_mut_ptr().add(o), lb);
            }
            mask |= half_mask << o;
        }
        mask
    }

    /// [`lane_scaled_distance_sq`] over one 8-wide register.
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn dist_avx512(s: &PreparedStick, px: __m512d, py: __m512d) -> __m512d {
        let ax = _mm512_set1_pd(s.a.x);
        let ay = _mm512_set1_pd(s.a.y);
        let dx = _mm512_set1_pd(s.d.x);
        let dy = _mm512_set1_pd(s.d.y);
        let qx = _mm512_sub_pd(px, ax);
        let qy = _mm512_sub_pd(py, ay);
        let num = _mm512_add_pd(_mm512_mul_pd(qx, dx), _mm512_mul_pd(qy, dy));
        let raw = _mm512_div_pd(num, _mm512_set1_pd(s.len_sq));
        // `clamp(0.0, 1.0)` on a guaranteed-finite value: max then min.
        let clamped = _mm512_min_pd(_mm512_max_pd(raw, _mm512_setzero_pd()), _mm512_set1_pd(1.0));
        let t = if s.len_sq <= f64::EPSILON {
            _mm512_setzero_pd()
        } else {
            clamped
        };
        let cx = _mm512_add_pd(ax, _mm512_mul_pd(dx, t));
        let cy = _mm512_add_pd(ay, _mm512_mul_pd(dy, t));
        let ddx = _mm512_sub_pd(px, cx);
        let ddy = _mm512_sub_pd(py, cy);
        let dsq = _mm512_add_pd(_mm512_mul_pd(ddx, ddx), _mm512_mul_pd(ddy, ddy));
        _mm512_mul_pd(dsq, _mm512_set1_pd(s.inv_t_sq))
    }

    /// [`eq3_chunk`] on the AVX-512 tier: best/arg kept in registers,
    /// the strict-less update as mask + blend.
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn eq3_chunk_avx512(
        xs: &[f64; LANES],
        ys: &[f64; LANES],
        bounds: ChunkBounds,
        live: usize,
        sticks: &[PreparedStick; 8],
        sb: &StickBounds,
        hint: u32,
        total: &mut f64,
    ) -> u32 {
        let px = _mm512_loadu_pd(xs.as_ptr());
        let py = _mm512_loadu_pd(ys.as_ptr());
        let mut best = dist_avx512(&sticks[hint as usize], px, py);
        let mut arg = _mm512_set1_pd(hint as f64);
        // Distances are non-negative, so the lane maximum is
        // order-independent and matches the generic reduction exactly.
        let mut chunk_ub = _mm512_reduce_max_pd(best);
        let mut lbs = [0.0f64; 8];
        let mut pending =
            stick_survivors_avx512(sb, bounds, chunk_ub * PRUNE_SLACK, &mut lbs) & !(1u32 << hint);
        while pending != 0 {
            let i = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            // Re-test against the refreshed upper bound — an earlier
            // survivor's exact score may have pruned this one since.
            if lbs[i] >= chunk_ub * PRUNE_SLACK {
                continue;
            }
            let v = dist_avx512(&sticks[i], px, py);
            let smaller = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(v, best);
            best = _mm512_mask_blend_pd(smaller, best, v);
            arg = _mm512_mask_blend_pd(smaller, arg, _mm512_set1_pd(i as f64));
            chunk_ub = _mm512_reduce_max_pd(best);
        }
        let mut roots = [0.0f64; LANES];
        _mm512_storeu_pd(roots.as_mut_ptr(), _mm512_sqrt_pd(best));
        for &r in &roots[..live] {
            *total += r;
        }
        // Stick indices 0..7 are exact in f64, so blending the arg
        // lanes as doubles loses nothing.
        let mut args = [0.0f64; LANES];
        _mm512_storeu_pd(args.as_mut_ptr(), arg);
        args[live - 1] as u32
    }

    /// [`lane_scaled_distance_sq`] over one 4-wide register.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn dist_avx2(s: &PreparedStick, px: __m256d, py: __m256d) -> __m256d {
        let ax = _mm256_set1_pd(s.a.x);
        let ay = _mm256_set1_pd(s.a.y);
        let dx = _mm256_set1_pd(s.d.x);
        let dy = _mm256_set1_pd(s.d.y);
        let qx = _mm256_sub_pd(px, ax);
        let qy = _mm256_sub_pd(py, ay);
        let num = _mm256_add_pd(_mm256_mul_pd(qx, dx), _mm256_mul_pd(qy, dy));
        let raw = _mm256_div_pd(num, _mm256_set1_pd(s.len_sq));
        let clamped = _mm256_min_pd(_mm256_max_pd(raw, _mm256_setzero_pd()), _mm256_set1_pd(1.0));
        let t = if s.len_sq <= f64::EPSILON {
            _mm256_setzero_pd()
        } else {
            clamped
        };
        let cx = _mm256_add_pd(ax, _mm256_mul_pd(dx, t));
        let cy = _mm256_add_pd(ay, _mm256_mul_pd(dy, t));
        let ddx = _mm256_sub_pd(px, cx);
        let ddy = _mm256_sub_pd(py, cy);
        let dsq = _mm256_add_pd(_mm256_mul_pd(ddx, ddx), _mm256_mul_pd(ddy, ddy));
        _mm256_mul_pd(dsq, _mm256_set1_pd(s.inv_t_sq))
    }

    /// Lane maximum across an 8-wide pair of 4-wide registers.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn hmax_avx2(a: __m256d, b: __m256d) -> f64 {
        let m = _mm256_max_pd(a, b);
        let lo = _mm256_castpd256_pd128(m);
        let hi = _mm256_extractf128_pd::<1>(m);
        let m2 = _mm_max_pd(lo, hi);
        let s = _mm_max_sd(m2, _mm_unpackhi_pd(m2, m2));
        _mm_cvtsd_f64(s)
    }

    /// [`eq3_chunk`] on the AVX2 tier: the 8 lanes as two 4-wide
    /// halves, strict-less update as compare + blendv (the compare's
    /// all-ones lanes drive the blend sign bit).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn eq3_chunk_avx2(
        xs: &[f64; LANES],
        ys: &[f64; LANES],
        bounds: ChunkBounds,
        live: usize,
        sticks: &[PreparedStick; 8],
        sb: &StickBounds,
        hint: u32,
        total: &mut f64,
    ) -> u32 {
        let px0 = _mm256_loadu_pd(xs.as_ptr());
        let px1 = _mm256_loadu_pd(xs.as_ptr().add(4));
        let py0 = _mm256_loadu_pd(ys.as_ptr());
        let py1 = _mm256_loadu_pd(ys.as_ptr().add(4));
        let h = &sticks[hint as usize];
        let mut best0 = dist_avx2(h, px0, py0);
        let mut best1 = dist_avx2(h, px1, py1);
        let mut arg0 = _mm256_set1_pd(hint as f64);
        let mut arg1 = arg0;
        let mut chunk_ub = hmax_avx2(best0, best1);
        let mut lbs = [0.0f64; 8];
        let mut pending =
            stick_survivors_avx2(sb, bounds, chunk_ub * PRUNE_SLACK, &mut lbs) & !(1u32 << hint);
        while pending != 0 {
            let i = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            if lbs[i] >= chunk_ub * PRUNE_SLACK {
                continue;
            }
            let s = &sticks[i];
            let v0 = dist_avx2(s, px0, py0);
            let v1 = dist_avx2(s, px1, py1);
            let idx = _mm256_set1_pd(i as f64);
            let lt0 = _mm256_cmp_pd::<_CMP_LT_OQ>(v0, best0);
            let lt1 = _mm256_cmp_pd::<_CMP_LT_OQ>(v1, best1);
            best0 = _mm256_blendv_pd(best0, v0, lt0);
            best1 = _mm256_blendv_pd(best1, v1, lt1);
            arg0 = _mm256_blendv_pd(arg0, idx, lt0);
            arg1 = _mm256_blendv_pd(arg1, idx, lt1);
            chunk_ub = hmax_avx2(best0, best1);
        }
        let mut roots = [0.0f64; LANES];
        _mm256_storeu_pd(roots.as_mut_ptr(), _mm256_sqrt_pd(best0));
        _mm256_storeu_pd(roots.as_mut_ptr().add(4), _mm256_sqrt_pd(best1));
        for &r in &roots[..live] {
            *total += r;
        }
        let mut args = [0.0f64; LANES];
        _mm256_storeu_pd(args.as_mut_ptr(), arg0);
        _mm256_storeu_pd(args.as_mut_ptr().add(4), arg1);
        args[live - 1] as u32
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn eq3_sum_avx512(frame: &PreparedFrame, sticks: &[PreparedStick; 8]) -> f64 {
        let sb = StickBounds::new(sticks);
        let mut total = 0.0;
        let mut hint = 0u32;
        for c in 0..frame.num_chunks() {
            let (xs, ys) = frame.chunk(c);
            hint = eq3_chunk_avx512(
                xs,
                ys,
                frame.chunk_bounds(c),
                frame.chunk_live(c),
                sticks,
                &sb,
                hint,
                &mut total,
            );
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn eq3_sum_avx2(frame: &PreparedFrame, sticks: &[PreparedStick; 8]) -> f64 {
        let sb = StickBounds::new(sticks);
        let mut total = 0.0;
        let mut hint = 0u32;
        for c in 0..frame.num_chunks() {
            let (xs, ys) = frame.chunk(c);
            hint = eq3_chunk_avx2(
                xs,
                ys,
                frame.chunk_bounds(c),
                frame.chunk_live(c),
                sticks,
                &sb,
                hint,
                &mut total,
            );
        }
        total
    }

    /// One chunk for a *pair* of genomes: the in-order accumulation
    /// that bit-exactness demands is a serial `f64` add chain (~4
    /// cycles per point), so a single genome's walk is latency-bound on
    /// its own running total. Two genomes give the out-of-order core
    /// two independent chains to overlap — nearly doubling throughput —
    /// while each genome's arithmetic stays the exact per-genome
    /// sequence (the pair shares only the chunk's coordinate loads and
    /// the incoming hint, neither of which can affect the sums).
    #[target_feature(enable = "avx512f")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn eq3_chunk_avx512_x2(
        xs: &[f64; LANES],
        ys: &[f64; LANES],
        bounds: ChunkBounds,
        live: usize,
        a: (&[PreparedStick; 8], &StickBounds, &mut f64),
        b: (&[PreparedStick; 8], &StickBounds, &mut f64),
        hint: u32,
    ) -> u32 {
        let px = _mm512_loadu_pd(xs.as_ptr());
        let py = _mm512_loadu_pd(ys.as_ptr());
        let (sticks_a, sb_a, total_a) = a;
        let (sticks_b, sb_b, total_b) = b;
        let mut best_a = dist_avx512(&sticks_a[hint as usize], px, py);
        let mut best_b = dist_avx512(&sticks_b[hint as usize], px, py);
        let mut arg_b = _mm512_set1_pd(hint as f64);
        let mut ub_a = _mm512_reduce_max_pd(best_a);
        let mut ub_b = _mm512_reduce_max_pd(best_b);
        let mut lbs_a = [0.0f64; 8];
        let mut lbs_b = [0.0f64; 8];
        let mut pend_a =
            stick_survivors_avx512(sb_a, bounds, ub_a * PRUNE_SLACK, &mut lbs_a) & !(1u32 << hint);
        let mut pend_b =
            stick_survivors_avx512(sb_b, bounds, ub_b * PRUNE_SLACK, &mut lbs_b) & !(1u32 << hint);
        while pend_a != 0 {
            let i = pend_a.trailing_zeros() as usize;
            pend_a &= pend_a - 1;
            if lbs_a[i] >= ub_a * PRUNE_SLACK {
                continue;
            }
            let v = dist_avx512(&sticks_a[i], px, py);
            let smaller = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(v, best_a);
            best_a = _mm512_mask_blend_pd(smaller, best_a, v);
            ub_a = _mm512_reduce_max_pd(best_a);
        }
        while pend_b != 0 {
            let i = pend_b.trailing_zeros() as usize;
            pend_b &= pend_b - 1;
            if lbs_b[i] >= ub_b * PRUNE_SLACK {
                continue;
            }
            let v = dist_avx512(&sticks_b[i], px, py);
            let smaller = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(v, best_b);
            best_b = _mm512_mask_blend_pd(smaller, best_b, v);
            arg_b = _mm512_mask_blend_pd(smaller, arg_b, _mm512_set1_pd(i as f64));
            ub_b = _mm512_reduce_max_pd(best_b);
        }
        let mut roots_a = [0.0f64; LANES];
        let mut roots_b = [0.0f64; LANES];
        _mm512_storeu_pd(roots_a.as_mut_ptr(), _mm512_sqrt_pd(best_a));
        _mm512_storeu_pd(roots_b.as_mut_ptr(), _mm512_sqrt_pd(best_b));
        // Two independent in-order chains; the hardware interleaves
        // them, each one identical to its scalar-reference order.
        for l in 0..live {
            *total_a += roots_a[l];
            *total_b += roots_b[l];
        }
        let mut args = [0.0f64; LANES];
        _mm512_storeu_pd(args.as_mut_ptr(), arg_b);
        args[live - 1] as u32
    }

    /// [`eq3_chunk_avx512_x2`] generalised to `N` interleaved genomes:
    /// `N` independent accumulation chains for the out-of-order core to
    /// overlap (two f64 add ports at 4-cycle latency saturate around
    /// 4–8 chains), each chain still the exact scalar-order sum.
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn eq3_chunk_avx512_xn<const N: usize>(
        xs: &[f64; LANES],
        ys: &[f64; LANES],
        bounds: ChunkBounds,
        live: usize,
        sticks: &[[PreparedStick; 8]],
        sbs: &[StickBounds; N],
        totals: &mut [f64],
        hint: u32,
    ) -> u32 {
        let px = _mm512_loadu_pd(xs.as_ptr());
        let py = _mm512_loadu_pd(ys.as_ptr());
        let mut best = [_mm512_setzero_pd(); N];
        let mut ub = [0.0f64; N];
        for g in 0..N {
            best[g] = dist_avx512(&sticks[g][hint as usize], px, py);
            ub[g] = _mm512_reduce_max_pd(best[g]);
        }
        let mut arg_last = _mm512_set1_pd(hint as f64);
        for g in 0..N {
            let mut lbs = [0.0f64; 8];
            let mut pending =
                stick_survivors_avx512(&sbs[g], bounds, ub[g] * PRUNE_SLACK, &mut lbs)
                    & !(1u32 << hint);
            while pending != 0 {
                let i = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                if lbs[i] >= ub[g] * PRUNE_SLACK {
                    continue;
                }
                let v = dist_avx512(&sticks[g][i], px, py);
                let smaller = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(v, best[g]);
                best[g] = _mm512_mask_blend_pd(smaller, best[g], v);
                if g == N - 1 {
                    arg_last = _mm512_mask_blend_pd(smaller, arg_last, _mm512_set1_pd(i as f64));
                }
                ub[g] = _mm512_reduce_max_pd(best[g]);
            }
        }
        let mut roots = [[0.0f64; LANES]; N];
        for g in 0..N {
            _mm512_storeu_pd(roots[g].as_mut_ptr(), _mm512_sqrt_pd(best[g]));
        }
        // N independent in-order chains; the hardware interleaves them,
        // each one identical to its scalar-reference order.
        for l in 0..live {
            for g in 0..N {
                totals[g] += roots[g][l];
            }
        }
        let mut args = [0.0f64; LANES];
        _mm512_storeu_pd(args.as_mut_ptr(), arg_last);
        args[live - 1] as u32
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn eq3_batch_avx512(
        frame: &PreparedFrame,
        sticks: &[[PreparedStick; 8]],
        hints: &mut [u32],
        totals: &mut [f64],
    ) {
        let mut done = 0usize;
        while sticks.len() - done >= 8 {
            let group = &sticks[done..done + 8];
            let sbs = std::array::from_fn::<_, 8, _>(|g| StickBounds::new(&group[g]));
            for c in 0..frame.num_chunks() {
                let (xs, ys) = frame.chunk(c);
                hints[c] = eq3_chunk_avx512_xn::<8>(
                    xs,
                    ys,
                    frame.chunk_bounds(c),
                    frame.chunk_live(c),
                    group,
                    &sbs,
                    &mut totals[done..done + 8],
                    hints[c],
                );
            }
            done += 8;
        }
        while sticks.len() - done >= 4 {
            let quad = &sticks[done..done + 4];
            let sbs = std::array::from_fn::<_, 4, _>(|g| StickBounds::new(&quad[g]));
            for c in 0..frame.num_chunks() {
                let (xs, ys) = frame.chunk(c);
                hints[c] = eq3_chunk_avx512_xn::<4>(
                    xs,
                    ys,
                    frame.chunk_bounds(c),
                    frame.chunk_live(c),
                    quad,
                    &sbs,
                    &mut totals[done..done + 4],
                    hints[c],
                );
            }
            done += 4;
        }
        if sticks.len() - done >= 2 {
            let pair = &sticks[done..done + 2];
            let sbs = [StickBounds::new(&pair[0]), StickBounds::new(&pair[1])];
            let (t0, t1) = totals[done..done + 2].split_at_mut(1);
            for c in 0..frame.num_chunks() {
                let (xs, ys) = frame.chunk(c);
                hints[c] = eq3_chunk_avx512_x2(
                    xs,
                    ys,
                    frame.chunk_bounds(c),
                    frame.chunk_live(c),
                    (&pair[0], &sbs[0], &mut t0[0]),
                    (&pair[1], &sbs[1], &mut t1[0]),
                    hints[c],
                );
            }
            done += 2;
        }
        // Odd tail: the single-genome walk.
        for (genome, total) in sticks[done..].iter().zip(totals[done..].iter_mut()) {
            let sb = StickBounds::new(genome);
            for c in 0..frame.num_chunks() {
                let (xs, ys) = frame.chunk(c);
                hints[c] = eq3_chunk_avx512(
                    xs,
                    ys,
                    frame.chunk_bounds(c),
                    frame.chunk_live(c),
                    genome,
                    &sb,
                    hints[c],
                    total,
                );
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn eq3_batch_avx2(
        frame: &PreparedFrame,
        sticks: &[[PreparedStick; 8]],
        hints: &mut [u32],
        totals: &mut [f64],
    ) {
        for (genome, total) in sticks.iter().zip(totals.iter_mut()) {
            let sb = StickBounds::new(genome);
            for c in 0..frame.num_chunks() {
                let (xs, ys) = frame.chunk(c);
                hints[c] = eq3_chunk_avx2(
                    xs,
                    ys,
                    frame.chunk_bounds(c),
                    frame.chunk_live(c),
                    genome,
                    &sb,
                    hints[c],
                    total,
                );
            }
        }
    }
}

fn lanes_eq3_sum(frame: &PreparedFrame, sticks: &[PreparedStick; 8]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            // SAFETY: the feature was detected at runtime.
            return unsafe { x86::eq3_sum_avx512(frame, sticks) };
        }
        if is_x86_feature_detected!("avx2") {
            // SAFETY: the feature was detected at runtime.
            return unsafe { x86::eq3_sum_avx2(frame, sticks) };
        }
    }
    lanes_eq3_sum_impl(frame, sticks)
}

fn lanes_eq3_batch(
    frame: &PreparedFrame,
    sticks: &[[PreparedStick; 8]],
    hints: &mut [u32],
    totals: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            // SAFETY: the feature was detected at runtime.
            return unsafe { x86::eq3_batch_avx512(frame, sticks, hints, totals) };
        }
        if is_x86_feature_detected!("avx2") {
            // SAFETY: the feature was detected at runtime.
            return unsafe { x86::eq3_batch_avx2(frame, sticks, hints, totals) };
        }
    }
    lanes_eq3_batch_impl(frame, sticks, hints, totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::{Angle, StickKind};
    use slj_video::render::render_silhouette;

    fn setup() -> (BodyDims, Camera, Pose) {
        let dims = BodyDims::default();
        let camera = Camera::default();
        let mut pose = Pose::standing(&dims);
        pose.center.x = 0.6;
        (dims, camera, pose)
    }

    #[test]
    fn true_pose_scores_below_one() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let f = fit.evaluate(&pose, &dims);
        // Every silhouette pixel is within its capsule radius of the
        // generating stick, so each term is <= ~1.
        assert!(f < 0.8, "true-pose fitness {f}");
    }

    #[test]
    fn displaced_pose_scores_worse() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let base = fit.evaluate(&pose, &dims);
        let mut shifted = pose;
        shifted.center.x += 0.25;
        assert!(fit.evaluate(&shifted, &dims) > base * 2.0);
        let mut rotated = pose;
        rotated = rotated.with_angle(StickKind::Trunk, Angle::from_degrees(90.0));
        assert!(fit.evaluate(&rotated, &dims) > base * 1.5);
    }

    #[test]
    fn fitness_is_monotone_in_displacement() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let mut prev = fit.evaluate(&pose, &dims);
        for step in 1..=5 {
            let mut p = pose;
            p.center.x += step as f64 * 0.1;
            let f = fit.evaluate(&p, &dims);
            assert!(f > prev, "step {step}: {f} <= {prev}");
            prev = f;
        }
    }

    #[test]
    fn stride_approximates_full_evaluation() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let full = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let strided = SilhouetteFitness::new(&sil, &dims, &camera, 4).unwrap();
        assert!(strided.sample_count() * 3 < full.sample_count());
        let a = full.evaluate(&pose, &dims);
        let b = strided.evaluate(&pose, &dims);
        assert!((a - b).abs() < 0.1 * a.max(0.05), "full {a} vs strided {b}");
        // Ranking is preserved for a clearly-worse pose.
        let mut bad = pose;
        bad.center.x += 0.3;
        assert!(strided.evaluate(&bad, &dims) > b);
    }

    #[test]
    fn prune_stats_account_for_every_stick() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let stats = fit.prune_stats(&pose, &dims);
        // Every pixel tests all 8 sticks: each is either scored exactly
        // or pruned, and the hint warm-start makes pruning the common
        // case on a well-fitting pose.
        assert_eq!(
            stats.candidates + stats.pruned,
            8 * fit.sample_count() as u64
        );
        assert!(stats.pruned > stats.candidates, "{stats:?}");
        assert_eq!(fit.prune_stats(&pose, &dims), stats);
    }

    #[test]
    fn empty_silhouette_rejected() {
        let (dims, camera, _) = setup();
        let blank = Mask::new(camera.width, camera.height);
        assert!(matches!(
            SilhouetteFitness::new(&blank, &dims, &camera, 1),
            Err(GaError::EmptySilhouette)
        ));
    }

    #[test]
    fn zero_stride_rejected() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        assert!(matches!(
            SilhouetteFitness::new(&sil, &dims, &camera, 0),
            Err(GaError::BadConfig { .. })
        ));
    }

    #[test]
    fn counts_are_reported() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 2).unwrap();
        assert_eq!(fit.total_points(), sil.count());
        assert_eq!(fit.sample_count(), sil.count().div_ceil(2));
    }

    #[test]
    fn true_pose_has_negligible_outside_penalty() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        assert!(fit.outside_penalty(&pose, &dims) < 0.05);
        // Total = Eq.3 + penalty ~= Eq.3 for the true pose.
        let total = fit.evaluate(&pose, &dims);
        let eq3 = fit.evaluate_eq3(&pose, &dims);
        assert!((total - eq3).abs() < 0.05, "total {total} vs eq3 {eq3}");
    }

    #[test]
    fn stick_poking_out_is_penalised() {
        // Arm raised horizontally forward, far outside the standing
        // silhouette: Eq. 3 barely notices, the coverage term does —
        // this is what disambiguates a hidden arm.
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let raised = pose.with_angle(StickKind::UpperArm, Angle::FORWARD);
        let eq3_delta = fit.evaluate_eq3(&raised, &dims) - fit.evaluate_eq3(&pose, &dims);
        let penalty = fit.outside_penalty(&raised, &dims);
        assert!(penalty > 0.5, "penalty {penalty}");
        assert!(
            penalty > eq3_delta.abs() * 2.0,
            "penalty {penalty} should dominate the Eq.3 change {eq3_delta}"
        );
        assert!(fit.evaluate(&raised, &dims) > fit.evaluate(&pose, &dims) + 0.3);
    }

    #[test]
    fn zero_weight_recovers_pure_eq3() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let pure = SilhouetteFitness::with_outside_weight(&sil, &dims, &camera, 1, 0.0).unwrap();
        let raised = pose.with_angle(StickKind::UpperArm, Angle::FORWARD);
        assert_eq!(
            pure.evaluate(&raised, &dims),
            pure.evaluate_eq3(&raised, &dims)
        );
    }

    #[test]
    fn negative_weight_rejected() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        assert!(matches!(
            SilhouetteFitness::with_outside_weight(&sil, &dims, &camera, 1, -1.0),
            Err(GaError::BadConfig { .. })
        ));
    }

    #[test]
    fn pruned_evaluation_is_bit_identical_to_unpruned() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let mut candidates = vec![pose];
        for step in 1..=4 {
            let mut p = pose;
            p.center.x += step as f64 * 0.12;
            p.center.y -= step as f64 * 0.03;
            candidates.push(p);
            candidates
                .push(p.with_angle(StickKind::Trunk, Angle::from_degrees(35.0 * step as f64)));
        }
        for (k, p) in candidates.iter().enumerate() {
            assert_eq!(
                fit.evaluate(p, &dims),
                fit.evaluate_unpruned(p, &dims),
                "candidate {k}: pruned and unpruned full cost diverge"
            );
            assert_eq!(
                fit.evaluate_eq3(p, &dims),
                fit.evaluate_eq3_unpruned(p, &dims),
                "candidate {k}: pruned and unpruned Eq. 3 diverge"
            );
        }
    }

    #[test]
    fn lanes_evaluation_is_bit_identical_to_scalar() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        // Strides 1/3/5 exercise full, ragged-tail and short frames.
        for stride in [1usize, 3, 5] {
            let fit = SilhouetteFitness::new(&sil, &dims, &camera, stride).unwrap();
            let mut candidates = vec![pose];
            for step in 1..=4 {
                let mut p = pose;
                p.center.x += step as f64 * 0.12;
                p.center.y -= step as f64 * 0.03;
                candidates.push(p);
                candidates
                    .push(p.with_angle(StickKind::Trunk, Angle::from_degrees(35.0 * step as f64)));
            }
            for (k, p) in candidates.iter().enumerate() {
                let lanes = fit.evaluate_lanes(p, &dims);
                assert_eq!(
                    lanes.to_bits(),
                    fit.evaluate(p, &dims).to_bits(),
                    "stride {stride} candidate {k}: lanes vs pruned scalar"
                );
                assert_eq!(
                    lanes.to_bits(),
                    fit.evaluate_unpruned(p, &dims).to_bits(),
                    "stride {stride} candidate {k}: lanes vs unpruned scalar"
                );
            }
        }
    }

    #[test]
    fn batch_evaluation_matches_single_calls() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 2).unwrap();
        let mut poses = vec![pose];
        for step in 1..=6 {
            let mut p = pose;
            p.center.x += step as f64 * 0.07;
            poses.push(p);
            poses.push(p.with_angle(StickKind::Thigh, Angle::from_degrees(10.0 * step as f64)));
        }
        // Duplicates in the batch share hint state but must still get
        // the exact per-pose value.
        poses.push(pose);
        let mut out = vec![0.0; poses.len()];
        let mut scratch = BatchScratch::default();
        fit.evaluate_batch(&poses, &dims, &mut out, &mut scratch);
        for (p, &got) in poses.iter().zip(&out) {
            assert_eq!(got.to_bits(), fit.evaluate(p, &dims).to_bits());
        }
        // A second pass with warmed (carried) hints returns the same
        // bits — hints never change values.
        let mut again = vec![0.0; poses.len()];
        fit.evaluate_batch(&poses, &dims, &mut again, &mut scratch);
        assert_eq!(out, again);
    }

    #[test]
    fn distance_field_accessor_matches_mask() {
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        assert_eq!(fit.distance_field().width(), sil.width());
        assert_eq!(fit.distance_field().height(), sil.height());
    }

    #[test]
    fn thickness_normalisation_favors_thin_stick_fit() {
        // A point at equal pixel distance from two sticks is "closer"
        // (per Eq. 3) to the thicker one.
        let (dims, camera, pose) = setup();
        let sil = render_silhouette(&pose, &dims, &camera);
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 1).unwrap();
        let trunk_t = fit.thickness_px[StickKind::Trunk.index()];
        let neck_t = fit.thickness_px[StickKind::Neck.index()];
        assert!(trunk_t > neck_t);
    }
}
