//! GA-based 2-D articulated pose estimation from silhouettes.
//!
//! This is the paper's Section 3 — its primary contribution. A pose is
//! the chromosome `(x0, y0, ρ0..ρ7)`; Eq. 3 scores how well the stick
//! model explains a silhouette; a genetic algorithm with elitism, the
//! paper's grouped multi-crossover and per-group mutation searches for
//! the best pose; and — the delta over Shoji et al. \[5\] — each frame's
//! initial population is **seeded from the previous frame's estimate**,
//! which collapses convergence from ~200 generations to a handful.
//!
//! * [`engine`] — a generic minimising GA with elitism, rank selection
//!   and optional crossbeam-parallel fitness evaluation.
//! * [`fitness`] — Eq. 3: `F_S = (Σ_p min_l d(p, S_l)/t_l) / N`.
//! * [`pose_problem`] — the chromosome encoding, grouped crossover,
//!   mutation, validity constraint and initial-population strategies.
//! * [`tracker`] — frame-to-frame tracking with temporal seeding.
//! * [`baseline`] — the non-temporal single-frame GA of \[5\], plus
//!   random-search and hill-climbing comparison baselines.
//! * [`particle`] — a Condensation-style particle-filter tracker over
//!   the same Eq. 3 cost, for like-for-like method comparison.
//!
//! # Example
//!
//! ```
//! use slj_ga::tracker::{TrackerConfig, TemporalTracker};
//! use slj_video::{SceneConfig, SyntheticJump};
//! use slj_motion::JumpConfig;
//!
//! let jump_cfg = JumpConfig { frames: 4, ..JumpConfig::default() };
//! let jump = SyntheticJump::generate(&SceneConfig::clean(), &jump_cfg, 9);
//! let tracker = TemporalTracker::new(TrackerConfig::fast());
//! // Track frames 1.. from the (ground-truth) first-frame pose, using
//! // the true silhouettes.
//! let result = tracker
//!     .track(&jump.silhouettes, jump.poses.poses()[0], &jump.jump.dims, &jump.scene.camera)
//!     .unwrap();
//! assert_eq!(result.frames.len(), 4);
//! ```

pub mod baseline;
pub mod engine;
pub mod error;
pub mod fitness;
pub mod particle;
pub mod pose_problem;
pub mod tracker;

pub use engine::{evolve, GaConfig, GaRun, Problem};
pub use error::GaError;
pub use fitness::{BatchScratch, Eq3Kernel, PruneStats, SilhouetteFitness};
pub use particle::{ParticleFilter, ParticleFilterConfig, ParticleRun};
pub use pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig, ProblemScratch};
pub use tracker::{
    RecoveryAction, RecoveryPolicy, TemporalTracker, TrackResult, TrackScratch, TrackerConfig,
    TrackerStream,
};
