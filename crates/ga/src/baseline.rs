//! Comparison baselines for the temporal GA.
//!
//! * [`SingleFrameEstimator`] — Shoji et al. \[5\] as the paper describes
//!   it: full-range initialisation, no temporal information, ~200
//!   generations ("a proper stick model with a high accuracy can be
//!   found in 200 generations").
//! * [`RandomSearch`] — draws N chromosomes from the same initial
//!   distribution and keeps the best: the floor any evolutionary
//!   strategy must beat at equal evaluation budget.
//! * [`HillClimber`] — single-chain stochastic hill climbing from the
//!   seed pose: the greedy alternative to a population.

use crate::engine::{evolve, GaConfig, GaRun, Problem};
use crate::error::GaError;
use crate::pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use slj_imgproc::mask::Mask;
use slj_motion::{BodyDims, Pose};
use slj_video::Camera;

/// The non-temporal single-frame GA of \[5\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SingleFrameEstimator {
    /// GA engine parameters (defaults to 200 generations, no early
    /// stopping, as \[5\] reports).
    pub ga: GaConfig,
    /// Genetic-operator parameters.
    pub problem: PoseProblemConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SingleFrameEstimator {
    fn default() -> Self {
        SingleFrameEstimator {
            ga: GaConfig {
                population_size: 100,
                max_generations: 200,
                patience: None,
                ..GaConfig::default()
            },
            problem: PoseProblemConfig::default(),
            seed: 0xBA5E,
        }
    }
}

impl SingleFrameEstimator {
    /// Estimates a pose from a single silhouette with no temporal prior.
    ///
    /// # Errors
    ///
    /// Propagates [`GaError`] from problem construction and evolution
    /// (blank silhouette, failed initialisation, bad config).
    pub fn estimate(
        &self,
        silhouette: &Mask,
        dims: &BodyDims,
        camera: &Camera,
    ) -> Result<GaRun<Pose>, GaError> {
        let problem = PoseProblem::new(
            silhouette,
            dims,
            camera,
            InitStrategy::FullRange,
            self.problem,
        )?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        evolve(&problem, &self.ga, &mut rng)
    }
}

/// Pure random search over a problem's initial distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomSearch {
    /// Number of samples to draw.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch {
            samples: 2000,
            seed: 0x5EED,
        }
    }
}

/// The outcome of a baseline search.
#[derive(Debug, Clone)]
pub struct SearchRun<G> {
    /// Best genome found.
    pub best: G,
    /// Its fitness.
    pub best_fitness: f64,
    /// Fitness evaluations spent.
    pub evaluations: usize,
    /// Evaluation index (0-based) at which the best was found.
    pub found_at: usize,
}

impl RandomSearch {
    /// Runs random search over any [`Problem`]. Invalid samples are
    /// skipped but still count against the budget (they cost a validity
    /// check, not a fitness evaluation).
    ///
    /// # Errors
    ///
    /// Returns [`GaError::InitFailed`] when no valid sample was found in
    /// the whole budget.
    pub fn run<P: Problem>(&self, problem: &P) -> Result<SearchRun<P::Genome>, GaError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<(P::Genome, f64, usize)> = None;
        let mut evaluations = 0usize;
        for i in 0..self.samples {
            let g = problem.random_genome(&mut rng);
            if !problem.is_valid(&g) {
                continue;
            }
            let f = problem.fitness(&g);
            evaluations += 1;
            if best.as_ref().is_none_or(|(_, bf, _)| f < *bf) {
                best = Some((g, f, i));
            }
        }
        match best {
            Some((best, best_fitness, found_at)) => Ok(SearchRun {
                best,
                best_fitness,
                evaluations,
                found_at,
            }),
            None => Err(GaError::InitFailed {
                attempts: self.samples,
            }),
        }
    }
}

/// Stochastic hill climbing over poses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HillClimber {
    /// Number of proposal steps.
    pub iterations: usize,
    /// Angle proposal half-range, degrees.
    pub angle_step: f64,
    /// Centre proposal half-range, metres.
    pub center_step: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HillClimber {
    fn default() -> Self {
        HillClimber {
            iterations: 2000,
            angle_step: 8.0,
            center_step: 0.02,
            seed: 0xC11B,
        }
    }
}

impl HillClimber {
    /// Climbs from `start`, evaluating with the given problem's fitness
    /// (validity is enforced on proposals; invalid proposals are
    /// rejected).
    pub fn run(&self, problem: &PoseProblem, start: Pose) -> SearchRun<Pose> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut current = start;
        let mut current_f = problem.fitness(&current);
        let mut evaluations = 1usize;
        let mut found_at = 0usize;
        for i in 0..self.iterations {
            let mut proposal = current;
            // Perturb one random gene group's worth of state: either the
            // centre or one stick angle.
            if rng.gen_bool(0.2) {
                proposal.center.x += rng.gen_range(-self.center_step..=self.center_step);
                proposal.center.y += rng.gen_range(-self.center_step..=self.center_step);
            } else {
                let l = rng.gen_range(0..slj_motion::model::STICK_COUNT);
                proposal.angles[l] =
                    proposal.angles[l] + rng.gen_range(-self.angle_step..=self.angle_step);
            }
            if !problem.is_valid(&proposal) {
                continue;
            }
            let f = problem.fitness(&proposal);
            evaluations += 1;
            if f < current_f {
                current = proposal;
                current_f = f;
                found_at = i + 1;
            }
        }
        SearchRun {
            best: current,
            best_fitness: current_f,
            evaluations,
            found_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pose_problem::DEFAULT_DELTA_ANGLES;
    use slj_video::render::render_silhouette;

    fn setup() -> (Mask, BodyDims, Camera, Pose) {
        let dims = BodyDims::default();
        let camera = Camera::default();
        let mut pose = Pose::standing(&dims);
        pose.center.x = 0.6;
        let sil = render_silhouette(&pose, &dims, &camera);
        (sil, dims, camera, pose)
    }

    fn temporal_problem(sil: &Mask, dims: &BodyDims, camera: &Camera, prev: Pose) -> PoseProblem {
        PoseProblem::new(
            sil,
            dims,
            camera,
            InitStrategy::Temporal {
                previous: prev,
                delta_center: 0.1,
                delta_angles: DEFAULT_DELTA_ANGLES,
            },
            PoseProblemConfig {
                stride: 4,
                ..PoseProblemConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn single_frame_estimator_converges_with_budget() {
        let (sil, dims, camera, truth) = setup();
        // Give the baseline the budget [5] reports it needs: ~200
        // generations from a full-range initial population.
        let est = SingleFrameEstimator {
            ga: GaConfig {
                population_size: 80,
                max_generations: 200,
                patience: None,
                ..GaConfig::default()
            },
            problem: PoseProblemConfig {
                stride: 4,
                ..PoseProblemConfig::default()
            },
            // Convergence-from-full-range is seed-sensitive; this seed
            // is tuned to the vendored RNG's stream (most seeds land
            // within tolerance, a minority need more budget).
            seed: 3,
        };
        let run = est.estimate(&sil, &dims, &camera).unwrap();
        let err = run.best.error_against(&truth);
        assert!(
            err.center_distance < 0.25,
            "centre off {}",
            err.center_distance
        );
        assert!(run.best_fitness < 1.5, "fitness {}", run.best_fitness);
        // And it genuinely needed many generations (no temporal prior).
        assert!(
            run.generations_to_near_best(0.10) > 5,
            "full-range search converged suspiciously fast: {}",
            run.generations_to_near_best(0.10)
        );
    }

    #[test]
    fn random_search_finds_reasonable_pose_with_temporal_prior() {
        let (sil, dims, camera, truth) = setup();
        let problem = temporal_problem(&sil, &dims, &camera, truth);
        let rs = RandomSearch {
            samples: 300,
            seed: 2,
        };
        let run = rs.run(&problem).unwrap();
        assert!(run.best_fitness < 1.5, "fitness {}", run.best_fitness);
        assert!(run.evaluations > 0 && run.evaluations <= 300);
        assert!(run.found_at < 300);
    }

    #[test]
    fn hill_climber_improves_from_perturbed_start() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (sil, dims, camera, truth) = setup();
        let problem = temporal_problem(&sil, &dims, &camera, truth);
        let mut rng = StdRng::seed_from_u64(3);
        let start = slj_motion::synth::perturb_pose(&truth, 0.02, 12.0, &mut rng);
        let start_f = problem.fitness_fn().evaluate(&start, &dims);
        let hc = HillClimber {
            iterations: 300,
            seed: 4,
            ..HillClimber::default()
        };
        let run = hc.run(&problem, start);
        assert!(
            run.best_fitness <= start_f,
            "{} > {start_f}",
            run.best_fitness
        );
        assert!(run.best_fitness < start_f * 0.95 || start_f < 0.3);
    }

    #[test]
    fn hill_climber_on_optimum_stays_put() {
        let (sil, dims, camera, truth) = setup();
        let problem = temporal_problem(&sil, &dims, &camera, truth);
        let hc = HillClimber {
            iterations: 50,
            seed: 5,
            ..HillClimber::default()
        };
        let run = hc.run(&problem, truth);
        let err = run.best.error_against(&truth);
        // May wiggle within noise but must not wander off.
        assert!(err.center_distance < 0.05);
        assert!(err.mean_angle_error() < 10.0);
    }

    #[test]
    fn random_search_deterministic() {
        let (sil, dims, camera, truth) = setup();
        let problem = temporal_problem(&sil, &dims, &camera, truth);
        let rs = RandomSearch {
            samples: 100,
            seed: 6,
        };
        let a = rs.run(&problem).unwrap();
        let b = rs.run(&problem).unwrap();
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.found_at, b.found_at);
    }
}
