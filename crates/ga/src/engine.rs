//! A generic minimising genetic algorithm with elitism.
//!
//! The paper's evolution strategy: *"the elitism is used. Meaning, in
//! each generation, only the fittest chromosomes can be left and they
//! have a higher probability to be picked for generating the next
//! generation. Crossover and mutation are applied to two selected
//! chromosomes to generate new chromosomes."*
//!
//! The engine owns population management, rank-biased parent selection,
//! elitism, validity retries and termination; the [`Problem`] owns the
//! domain: genome sampling, crossover, mutation and validity. Fitness is
//! **minimised** (Eq. 3's `F_S` is a cost: "the smaller the FS is, the
//! better the stick model fits the silhouette").
//!
//! Fitness evaluation can optionally fan out over crossbeam scoped
//! threads; evaluation is pure, so parallelism never changes results —
//! all stochastic choices draw from the caller's seeded RNG on one
//! thread.

use crate::error::GaError;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A GA problem definition: the engine is generic over this.
pub trait Problem: Sync {
    /// The chromosome type.
    type Genome: Clone + Send + Sync;

    /// Cost of a genome; **lower is better**. Must be finite for valid
    /// genomes.
    fn fitness(&self, genome: &Self::Genome) -> f64;

    /// Evaluates a slice of genomes into `out` (same length). The
    /// default delegates to [`Problem::fitness`] one genome at a time;
    /// implementations may override it to amortise shared work across
    /// the batch (deduplication, shared frame walks), but **must**
    /// write exactly the value `fitness` would return for each genome —
    /// the engine calls this per worker chunk, so any batch-shape
    /// dependence would break thread-count determinism.
    fn fitness_batch(&self, genomes: &[Self::Genome], out: &mut [f64]) {
        for (genome, slot) in genomes.iter().zip(out.iter_mut()) {
            *slot = self.fitness(genome);
        }
    }

    /// Samples a fresh genome from the problem's initial distribution.
    fn random_genome(&self, rng: &mut StdRng) -> Self::Genome;

    /// Produces two children from two parents.
    fn crossover(
        &self,
        a: &Self::Genome,
        b: &Self::Genome,
        rng: &mut StdRng,
    ) -> (Self::Genome, Self::Genome);

    /// Mutates a genome in place.
    fn mutate(&self, genome: &mut Self::Genome, rng: &mut StdRng);

    /// Whether a genome satisfies the problem's hard constraints
    /// (the paper removes chromosomes "not in the boundary of the
    /// silhouette"). Default: everything is valid.
    fn is_valid(&self, _genome: &Self::Genome) -> bool {
        true
    }

    /// Genomes that must be injected into the initial population (the
    /// tracker injects the previous frame's best). Default: none.
    fn seeds(&self) -> Vec<Self::Genome> {
        Vec::new()
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Number of chromosomes per generation.
    pub population_size: usize,
    /// Fraction of the population carried over unchanged (elitism).
    pub elite_fraction: f64,
    /// Hard cap on generations.
    pub max_generations: usize,
    /// Stop early after this many generations without improvement.
    pub patience: Option<usize>,
    /// Stop early once best fitness is at or below this value.
    pub target_fitness: Option<f64>,
    /// Attempts per slot when sampling valid genomes (initialisation and
    /// offspring repair).
    pub validity_retries: usize,
    /// Evaluate fitness on this many crossbeam threads (1 = serial).
    pub threads: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population_size: 100,
            elite_fraction: 0.10,
            max_generations: 60,
            patience: Some(15),
            target_fitness: None,
            validity_retries: 30,
            threads: 1,
        }
    }
}

impl GaConfig {
    fn validate(&self) -> Result<(), GaError> {
        if self.population_size < 2 {
            return Err(GaError::BadConfig {
                what: "population_size must be at least 2",
            });
        }
        if !(0.0..=1.0).contains(&self.elite_fraction) {
            return Err(GaError::BadConfig {
                what: "elite_fraction must be in [0, 1]",
            });
        }
        if self.max_generations == 0 {
            return Err(GaError::BadConfig {
                what: "max_generations must be positive",
            });
        }
        if self.threads == 0 {
            return Err(GaError::BadConfig {
                what: "threads must be positive",
            });
        }
        Ok(())
    }

    fn elite_count(&self) -> usize {
        ((self.population_size as f64 * self.elite_fraction).round() as usize)
            .clamp(1, self.population_size)
    }
}

/// The outcome of one GA run.
#[derive(Debug, Clone)]
pub struct GaRun<G> {
    /// The fittest genome found.
    pub best: G,
    /// Its fitness (cost).
    pub best_fitness: f64,
    /// Best fitness after each generation (index 0 = after
    /// initialisation).
    pub history: Vec<f64>,
    /// The generation at which the final best first appeared
    /// (0 = already in the initial population — the paper's Fig. 7
    /// reports "generated at the second generation").
    pub generation_of_best: usize,
    /// Generations actually run (≤ `max_generations`).
    pub generations_run: usize,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
}

impl<G> GaRun<G> {
    /// The first generation whose best fitness was within
    /// `(1 + tolerance)` of the final best (0 = already in the initial
    /// population). One quantification of "how fast did the GA reach a
    /// good model"; see also [`GaRun::generations_to_fitness`], which
    /// measures against an absolute quality bar — the metric behind the
    /// paper's "the shown best estimated model was generated at the
    /// second generation".
    pub fn generations_to_near_best(&self, tolerance: f64) -> usize {
        let target = self.best_fitness * (1.0 + tolerance.max(0.0));
        self.history
            .iter()
            .position(|&f| f <= target)
            .unwrap_or(self.history.len().saturating_sub(1))
    }

    /// The first generation whose best fitness was at or below an
    /// absolute threshold, or `None` if the run never got there.
    /// Experiments use the ground-truth pose's own fitness (plus slack)
    /// as the threshold: "when did the GA have a model as good as the
    /// truth?"
    pub fn generations_to_fitness(&self, threshold: f64) -> Option<usize> {
        self.history.iter().position(|&f| f <= threshold)
    }
}

struct Individual<G> {
    genome: G,
    fitness: f64,
}

/// A worker thread only pays for its spawn/join overhead when it gets
/// at least this many genomes; smaller batches evaluate serially.
/// (This threshold used to be an inline `2 * threads` comparison that
/// silently dropped small batches to serial — now it is named, and the
/// spawned thread count is additionally capped at the batch size so a
/// `threads > population` configuration can never spawn idle workers.)
pub const MIN_GENOMES_PER_THREAD: usize = 2;

/// Evaluates fitness for a batch, optionally in parallel.
///
/// Evaluation is pure, so the parallel path is bit-identical to the
/// serial one (asserted by `parallel_matches_serial` and the boundary
/// tests below).
fn evaluate_batch<P: Problem>(
    problem: &P,
    genomes: Vec<P::Genome>,
    threads: usize,
) -> Vec<Individual<P::Genome>> {
    let threads = threads.min(genomes.len());
    let n = genomes.len();
    let mut fitnesses = vec![0.0f64; n];
    if threads <= 1 || n < MIN_GENOMES_PER_THREAD * threads {
        problem.fitness_batch(&genomes, &mut fitnesses);
    } else {
        let chunk = n.div_ceil(threads);
        crossbeam::scope(|scope| {
            for (gs, fs) in genomes.chunks(chunk).zip(fitnesses.chunks_mut(chunk)) {
                scope.spawn(move |_| problem.fitness_batch(gs, fs));
            }
        })
        .expect("fitness worker panicked");
    }
    genomes
        .into_iter()
        .zip(fitnesses)
        .map(|(genome, fitness)| Individual { genome, fitness })
        .collect()
}

/// Rank-biased parent index: squaring the uniform variate biases the
/// draw toward rank 0 (the fittest) while leaving everyone reachable.
fn pick_rank_biased(rng: &mut StdRng, len: usize) -> usize {
    let u: f64 = rng.gen();
    ((u * u * len as f64) as usize).min(len - 1)
}

/// Runs the GA to completion.
///
/// # Errors
///
/// * [`GaError::BadConfig`] for out-of-range configuration.
/// * [`GaError::InitFailed`] when no valid initial population can be
///   sampled within the retry budget.
pub fn evolve<P: Problem>(
    problem: &P,
    config: &GaConfig,
    rng: &mut StdRng,
) -> Result<GaRun<P::Genome>, GaError> {
    config.validate()?;
    let pop_size = config.population_size;

    // ---- Initial population: injected seeds + valid random samples.
    let mut genomes: Vec<P::Genome> = Vec::with_capacity(pop_size);
    for seed in problem.seeds() {
        if genomes.len() < pop_size {
            genomes.push(seed);
        }
    }
    let mut attempts = 0usize;
    let budget = config.validity_retries.max(1) * pop_size;
    while genomes.len() < pop_size {
        if attempts >= budget {
            return Err(GaError::InitFailed { attempts });
        }
        attempts += 1;
        let g = problem.random_genome(rng);
        if problem.is_valid(&g) {
            genomes.push(g);
        }
    }

    let mut evaluations = genomes.len();
    let mut population = evaluate_batch(problem, genomes, config.threads);
    population.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));

    let mut best = population[0].genome.clone();
    let mut best_fitness = population[0].fitness;
    let mut generation_of_best = 0usize;
    let mut history = vec![best_fitness];
    let mut stale = 0usize;
    let mut generations_run = 0usize;

    for generation in 1..=config.max_generations {
        if let Some(target) = config.target_fitness {
            if best_fitness <= target {
                break;
            }
        }
        if let Some(p) = config.patience {
            if stale >= p {
                break;
            }
        }
        generations_run = generation;

        // ---- Elites survive unchanged.
        let elite_count = config.elite_count();
        let mut next_genomes: Vec<P::Genome> = population[..elite_count]
            .iter()
            .map(|i| i.genome.clone())
            .collect();

        // ---- Offspring from rank-biased parents.
        while next_genomes.len() < pop_size {
            let pa = pick_rank_biased(rng, population.len());
            let pb = pick_rank_biased(rng, population.len());
            let (mut c1, mut c2) =
                problem.crossover(&population[pa].genome, &population[pb].genome, rng);
            problem.mutate(&mut c1, rng);
            problem.mutate(&mut c2, rng);
            for child in [c1, c2] {
                if next_genomes.len() >= pop_size {
                    break;
                }
                if problem.is_valid(&child) {
                    next_genomes.push(child);
                } else {
                    // Repair budget: resample fresh valid genomes, else
                    // fall back to the parent.
                    let mut placed = false;
                    for _ in 0..config.validity_retries {
                        let g = problem.random_genome(rng);
                        if problem.is_valid(&g) {
                            next_genomes.push(g);
                            placed = true;
                            break;
                        }
                    }
                    if !placed {
                        next_genomes.push(population[pa].genome.clone());
                    }
                }
            }
        }

        evaluations += next_genomes.len();
        population = evaluate_batch(problem, next_genomes, config.threads);
        population.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));

        if population[0].fitness < best_fitness {
            best_fitness = population[0].fitness;
            best = population[0].genome.clone();
            generation_of_best = generation;
            stale = 0;
        } else {
            stale += 1;
        }
        history.push(best_fitness);
    }

    Ok(GaRun {
        best,
        best_fitness,
        history,
        generation_of_best,
        generations_run,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A toy problem: minimise the squared distance of a 3-vector to a
    /// target, searching in [-10, 10]^3.
    struct Sphere {
        target: [f64; 3],
    }

    impl Problem for Sphere {
        type Genome = [f64; 3];

        fn fitness(&self, g: &[f64; 3]) -> f64 {
            g.iter()
                .zip(self.target.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        }

        fn random_genome(&self, rng: &mut StdRng) -> [f64; 3] {
            [(); 3].map(|_| rng.gen_range(-10.0..10.0))
        }

        fn crossover(&self, a: &[f64; 3], b: &[f64; 3], rng: &mut StdRng) -> ([f64; 3], [f64; 3]) {
            let mut c1 = *a;
            let mut c2 = *b;
            for i in 0..3 {
                if rng.gen_bool(0.5) {
                    std::mem::swap(&mut c1[i], &mut c2[i]);
                }
            }
            (c1, c2)
        }

        fn mutate(&self, g: &mut [f64; 3], rng: &mut StdRng) {
            for v in g.iter_mut() {
                if rng.gen_bool(0.2) {
                    *v += rng.gen_range(-0.5..0.5);
                }
            }
        }
    }

    /// A problem whose validity constraint rejects half the space.
    struct ConstrainedSphere(Sphere);

    impl Problem for ConstrainedSphere {
        type Genome = [f64; 3];
        fn fitness(&self, g: &[f64; 3]) -> f64 {
            self.0.fitness(g)
        }
        fn random_genome(&self, rng: &mut StdRng) -> [f64; 3] {
            self.0.random_genome(rng)
        }
        fn crossover(&self, a: &[f64; 3], b: &[f64; 3], rng: &mut StdRng) -> ([f64; 3], [f64; 3]) {
            self.0.crossover(a, b, rng)
        }
        fn mutate(&self, g: &mut [f64; 3], rng: &mut StdRng) {
            self.0.mutate(g, rng)
        }
        fn is_valid(&self, g: &[f64; 3]) -> bool {
            g[0] >= 0.0
        }
    }

    /// Validity that rejects everything — initialisation must fail.
    struct Impossible(Sphere);

    impl Problem for Impossible {
        type Genome = [f64; 3];
        fn fitness(&self, g: &[f64; 3]) -> f64 {
            self.0.fitness(g)
        }
        fn random_genome(&self, rng: &mut StdRng) -> [f64; 3] {
            self.0.random_genome(rng)
        }
        fn crossover(&self, a: &[f64; 3], b: &[f64; 3], rng: &mut StdRng) -> ([f64; 3], [f64; 3]) {
            self.0.crossover(a, b, rng)
        }
        fn mutate(&self, g: &mut [f64; 3], rng: &mut StdRng) {
            self.0.mutate(g, rng)
        }
        fn is_valid(&self, _: &[f64; 3]) -> bool {
            false
        }
    }

    fn cfg() -> GaConfig {
        GaConfig {
            population_size: 60,
            max_generations: 80,
            patience: None,
            ..GaConfig::default()
        }
    }

    #[test]
    fn converges_on_sphere() {
        let problem = Sphere {
            target: [3.0, -2.0, 7.5],
        };
        let mut rng = StdRng::seed_from_u64(1);
        let run = evolve(&problem, &cfg(), &mut rng).unwrap();
        assert!(run.best_fitness < 0.5, "fitness {}", run.best_fitness);
        for (g, t) in run.best.iter().zip(problem.target.iter()) {
            assert!((g - t).abs() < 0.7, "{g} vs {t}");
        }
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let problem = Sphere {
            target: [1.0, 2.0, 3.0],
        };
        let mut rng = StdRng::seed_from_u64(2);
        let run = evolve(&problem, &cfg(), &mut rng).unwrap();
        for w in run.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert_eq!(run.history.len(), run.generations_run + 1);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let problem = Sphere {
            target: [0.0, 0.0, 0.0],
        };
        let a = evolve(&problem, &cfg(), &mut StdRng::seed_from_u64(7)).unwrap();
        let b = evolve(&problem, &cfg(), &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn parallel_matches_serial() {
        let problem = Sphere {
            target: [4.0, 4.0, 4.0],
        };
        let serial = evolve(&problem, &cfg(), &mut StdRng::seed_from_u64(3)).unwrap();
        let par_cfg = GaConfig {
            threads: 4,
            ..cfg()
        };
        let parallel = evolve(&problem, &par_cfg, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(serial.best, parallel.best);
        assert_eq!(serial.history, parallel.history);
    }

    #[test]
    fn thread_counts_at_and_beyond_population_match_serial() {
        // Boundary cases of the batch threshold: as many threads as
        // genomes, and far more threads than genomes. Both must produce
        // exactly the serial result (and not panic spawning idle
        // workers).
        let problem = Sphere {
            target: [2.0, -1.0, 0.5],
        };
        let small = GaConfig {
            population_size: 8,
            max_generations: 12,
            patience: None,
            ..GaConfig::default()
        };
        let serial = evolve(&problem, &small, &mut StdRng::seed_from_u64(21)).unwrap();
        for threads in [8, 9, 64] {
            let cfg = GaConfig { threads, ..small };
            let run = evolve(&problem, &cfg, &mut StdRng::seed_from_u64(21)).unwrap();
            assert_eq!(serial.best, run.best, "threads = {threads}");
            assert_eq!(serial.history, run.history, "threads = {threads}");
        }
    }

    #[test]
    fn batch_threshold_boundary_matches_serial() {
        // population == MIN_GENOMES_PER_THREAD * threads sits exactly on
        // the parallel side of the threshold; one genome fewer falls to
        // serial. Both sides must agree with the single-thread run.
        let problem = Sphere {
            target: [0.5, 0.5, 0.5],
        };
        let threads = 3;
        for population_size in [
            MIN_GENOMES_PER_THREAD * threads,
            MIN_GENOMES_PER_THREAD * threads - 1,
        ] {
            let base = GaConfig {
                population_size,
                max_generations: 10,
                patience: None,
                ..GaConfig::default()
            };
            let serial = evolve(&problem, &base, &mut StdRng::seed_from_u64(22)).unwrap();
            let cfg = GaConfig { threads, ..base };
            let run = evolve(&problem, &cfg, &mut StdRng::seed_from_u64(22)).unwrap();
            assert_eq!(serial.best, run.best, "population = {population_size}");
            assert_eq!(
                serial.history, run.history,
                "population = {population_size}"
            );
        }
    }

    #[test]
    fn validity_constraint_is_respected() {
        let problem = ConstrainedSphere(Sphere {
            // Target in the *invalid* half: best valid answer has
            // x = 0.
            target: [-5.0, 1.0, 1.0],
        });
        let mut rng = StdRng::seed_from_u64(4);
        let run = evolve(&problem, &cfg(), &mut rng).unwrap();
        assert!(run.best[0] >= 0.0, "invalid best {:?}", run.best);
        assert!(run.best[0] < 1.0, "should press against the boundary");
    }

    #[test]
    fn impossible_constraints_fail_init() {
        let problem = Impossible(Sphere { target: [0.0; 3] });
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            evolve(&problem, &cfg(), &mut rng),
            Err(GaError::InitFailed { .. })
        ));
    }

    #[test]
    fn target_fitness_stops_early() {
        let problem = Sphere {
            target: [0.0, 0.0, 0.0],
        };
        let config = GaConfig {
            target_fitness: Some(10.0),
            ..cfg()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let run = evolve(&problem, &config, &mut rng).unwrap();
        assert!(run.generations_run < 80);
        assert!(run.best_fitness <= 10.0 || run.generations_run == 0);
    }

    #[test]
    fn patience_stops_stagnation() {
        let problem = Sphere {
            target: [0.0, 0.0, 0.0],
        };
        let config = GaConfig {
            patience: Some(3),
            max_generations: 1000,
            ..cfg()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let run = evolve(&problem, &config, &mut rng).unwrap();
        assert!(run.generations_run < 1000);
    }

    #[test]
    fn seeds_are_injected_and_win_if_best() {
        struct Seeded(Sphere);
        impl Problem for Seeded {
            type Genome = [f64; 3];
            fn fitness(&self, g: &[f64; 3]) -> f64 {
                self.0.fitness(g)
            }
            fn random_genome(&self, rng: &mut StdRng) -> [f64; 3] {
                self.0.random_genome(rng)
            }
            fn crossover(
                &self,
                a: &[f64; 3],
                b: &[f64; 3],
                rng: &mut StdRng,
            ) -> ([f64; 3], [f64; 3]) {
                self.0.crossover(a, b, rng)
            }
            fn mutate(&self, g: &mut [f64; 3], rng: &mut StdRng) {
                self.0.mutate(g, rng)
            }
            fn seeds(&self) -> Vec<[f64; 3]> {
                vec![self.0.target] // the exact optimum
            }
        }
        let problem = Seeded(Sphere {
            target: [2.0, -3.0, 1.0],
        });
        let config = GaConfig {
            max_generations: 3,
            ..cfg()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let run = evolve(&problem, &config, &mut rng).unwrap();
        assert_eq!(run.best_fitness, 0.0);
        assert_eq!(run.generation_of_best, 0);
    }

    #[test]
    fn bad_configs_rejected() {
        let problem = Sphere { target: [0.0; 3] };
        let mut rng = StdRng::seed_from_u64(9);
        for bad in [
            GaConfig {
                population_size: 1,
                ..cfg()
            },
            GaConfig {
                elite_fraction: 1.5,
                ..cfg()
            },
            GaConfig {
                max_generations: 0,
                ..cfg()
            },
            GaConfig {
                threads: 0,
                ..cfg()
            },
        ] {
            assert!(matches!(
                evolve(&problem, &bad, &mut rng),
                Err(GaError::BadConfig { .. })
            ));
        }
    }

    #[test]
    fn generation_of_best_is_consistent_with_history() {
        let problem = Sphere {
            target: [1.0, 1.0, 1.0],
        };
        let mut rng = StdRng::seed_from_u64(10);
        let run = evolve(&problem, &cfg(), &mut rng).unwrap();
        // History at generation_of_best equals the final best fitness.
        assert_eq!(run.history[run.generation_of_best], run.best_fitness);
        if run.generation_of_best > 0 {
            assert!(run.history[run.generation_of_best - 1] > run.best_fitness);
        }
    }

    #[test]
    fn rank_bias_prefers_low_indices() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[pick_rank_biased(&mut rng, 10)] += 1;
        }
        assert!(counts[0] > counts[9] * 2, "counts {counts:?}");
        assert!(counts[9] > 0, "everyone must stay reachable");
    }

    #[test]
    fn evaluations_are_counted() {
        let problem = Sphere { target: [0.0; 3] };
        let config = GaConfig {
            population_size: 10,
            max_generations: 5,
            patience: None,
            ..GaConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(12);
        let run = evolve(&problem, &config, &mut rng).unwrap();
        assert_eq!(run.evaluations, 10 * (run.generations_run + 1));
    }
}
