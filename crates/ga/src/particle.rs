//! A particle-filter tracker (comparison baseline, not in the paper).
//!
//! The paper tracks by re-running a GA per frame with temporal seeding.
//! The contemporaneous alternative in the tracking literature is the
//! particle filter (Isard & Blake's Condensation): carry a weighted set
//! of pose hypotheses across frames, diffuse them by a motion model,
//! and re-weight by an observation likelihood. Implementing it against
//! the same Eq. 3 cost makes a like-for-like comparison possible: both
//! methods spend their budget in "fitness evaluations per frame".
//!
//! The observation likelihood is `exp(−cost / temperature)`; diffusion
//! reuses the tracker's per-stick Δρ ranges scaled by a factor.

use crate::error::GaError;
use crate::fitness::SilhouetteFitness;
use crate::pose_problem::DEFAULT_DELTA_ANGLES;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use slj_imgproc::mask::Mask;
use slj_motion::model::STICK_COUNT;
use slj_motion::{BodyDims, Pose, PoseSeq};
use slj_video::Camera;

/// Particle-filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParticleFilterConfig {
    /// Number of particles.
    pub particles: usize,
    /// Likelihood temperature: weight = `exp(−cost / temperature)`.
    /// Smaller = peakier posterior.
    pub temperature: f64,
    /// Diffusion scale as a fraction of the per-stick Δρ ranges.
    pub diffusion_scale: f64,
    /// Centre diffusion half-range, metres.
    pub center_diffusion: f64,
    /// Per-stick angle half-ranges (degrees) the diffusion is scaled
    /// from.
    pub delta_angles: [f64; STICK_COUNT],
    /// Eq. 3 subsampling stride.
    pub stride: usize,
    /// Master seed; frame k uses `seed + k`.
    pub seed: u64,
}

impl Default for ParticleFilterConfig {
    fn default() -> Self {
        ParticleFilterConfig {
            particles: 400,
            temperature: 0.08,
            diffusion_scale: 0.5,
            center_diffusion: 0.08,
            delta_angles: DEFAULT_DELTA_ANGLES,
            stride: 2,
            seed: 0xBF17,
        }
    }
}

/// One frame's particle-filter output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParticleFrame {
    /// The highest-weight particle.
    pub pose: Pose,
    /// Its Eq. 3 cost.
    pub fitness: f64,
    /// Effective sample size after weighting (low = degeneracy).
    pub effective_sample_size: f64,
    /// Fitness evaluations spent on this frame.
    pub evaluations: usize,
    /// Whether the silhouette was unusable and the estimate carried
    /// over.
    pub carried_over: bool,
}

/// The whole-clip particle-filter run.
#[derive(Debug, Clone)]
pub struct ParticleRun {
    /// Per-frame outputs, index-aligned with the silhouettes.
    pub frames: Vec<ParticleFrame>,
}

impl ParticleRun {
    /// The estimated poses as a sequence.
    pub fn to_pose_seq(&self, fps: f64) -> PoseSeq {
        PoseSeq::new(self.frames.iter().map(|f| f.pose).collect(), fps)
    }

    /// Total evaluations across the clip.
    pub fn total_evaluations(&self) -> usize {
        self.frames.iter().map(|f| f.evaluations).sum()
    }
}

/// The Condensation-style tracker.
#[derive(Debug, Clone, Default)]
pub struct ParticleFilter {
    config: ParticleFilterConfig,
}

impl ParticleFilter {
    /// Creates a filter with the given configuration.
    pub fn new(config: ParticleFilterConfig) -> Self {
        ParticleFilter { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ParticleFilterConfig {
        &self.config
    }

    /// Tracks a clip from a known first-frame pose (same contract as
    /// [`crate::tracker::TemporalTracker::track`]).
    ///
    /// # Errors
    ///
    /// * [`GaError::NoFrames`] when `silhouettes` is empty.
    /// * [`GaError::BadConfig`] for nonsensical configuration.
    pub fn track(
        &self,
        silhouettes: &[Mask],
        first_pose: Pose,
        dims: &BodyDims,
        camera: &Camera,
    ) -> Result<ParticleRun, GaError> {
        if silhouettes.is_empty() {
            return Err(GaError::NoFrames);
        }
        if self.config.particles < 2 {
            return Err(GaError::BadConfig {
                what: "particles must be at least 2",
            });
        }
        // NaN must also be rejected, hence the partial_cmp form.
        if self.config.temperature.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(GaError::BadConfig {
                what: "temperature must be positive",
            });
        }

        let mut frames = Vec::with_capacity(silhouettes.len());
        frames.push(ParticleFrame {
            pose: first_pose,
            fitness: match SilhouetteFitness::new(&silhouettes[0], dims, camera, self.config.stride)
            {
                Ok(f) => f.evaluate(&first_pose, dims),
                Err(_) => f64::INFINITY,
            },
            effective_sample_size: self.config.particles as f64,
            evaluations: 1,
            carried_over: false,
        });

        // The particle cloud starts as copies of the first pose.
        let mut cloud: Vec<Pose> = vec![first_pose; self.config.particles];
        let mut best_prev = first_pose;

        for (k, sil) in silhouettes.iter().enumerate().skip(1) {
            let fitness = match SilhouetteFitness::new(sil, dims, camera, self.config.stride) {
                Ok(f) => f,
                Err(GaError::EmptySilhouette) => {
                    frames.push(ParticleFrame {
                        pose: best_prev,
                        fitness: f64::INFINITY,
                        effective_sample_size: 0.0,
                        evaluations: 0,
                        carried_over: true,
                    });
                    continue;
                }
                Err(e) => return Err(e),
            };
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(k as u64));

            // Predict: diffuse every particle.
            for p in cloud.iter_mut() {
                *p = self.diffuse(p, &mut rng);
            }

            // Weight: likelihood from the Eq. 3 cost.
            let costs: Vec<f64> = cloud.iter().map(|p| fitness.evaluate(p, dims)).collect();
            let min_cost = costs.iter().copied().fold(f64::INFINITY, f64::min);
            let weights: Vec<f64> = costs
                .iter()
                .map(|c| (-(c - min_cost) / self.config.temperature).exp())
                .collect();
            let sum_w: f64 = weights.iter().sum();
            let ess = sum_w * sum_w / weights.iter().map(|w| w * w).sum::<f64>().max(1e-300);

            // Estimate: the best particle.
            let best_idx = costs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty cloud");
            best_prev = cloud[best_idx];
            frames.push(ParticleFrame {
                pose: cloud[best_idx],
                fitness: costs[best_idx],
                effective_sample_size: ess,
                evaluations: cloud.len(),
                carried_over: false,
            });

            // Resample: systematic, proportional to weight.
            cloud = systematic_resample(&cloud, &weights, sum_w, &mut rng);
        }
        Ok(ParticleRun { frames })
    }

    /// Diffusion kernel: uniform jitter on the centre and every angle.
    fn diffuse(&self, pose: &Pose, rng: &mut StdRng) -> Pose {
        let mut out = *pose;
        let dc = self.config.center_diffusion;
        out.center.x += rng.gen_range(-dc..=dc);
        out.center.y += rng.gen_range(-dc..=dc);
        for (l, a) in out.angles.iter_mut().enumerate() {
            let d = self.config.delta_angles[l] * self.config.diffusion_scale;
            if d > 0.0 {
                *a = *a + rng.gen_range(-d..=d);
            }
        }
        out
    }
}

/// Systematic resampling: one uniform offset, N evenly spaced pointers.
fn systematic_resample(cloud: &[Pose], weights: &[f64], sum_w: f64, rng: &mut StdRng) -> Vec<Pose> {
    let n = cloud.len();
    if sum_w <= 0.0 || !sum_w.is_finite() {
        return cloud.to_vec();
    }
    let step = sum_w / n as f64;
    let mut pointer = rng.gen_range(0.0..step);
    let mut out = Vec::with_capacity(n);
    let mut acc = 0.0;
    let mut i = 0;
    for _ in 0..n {
        while acc + weights[i] < pointer {
            acc += weights[i];
            i += 1;
        }
        out.push(cloud[i]);
        pointer += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::synth::{synthesize_jump, JumpConfig};
    use slj_video::render::render_silhouette;

    fn fixture(take: usize) -> (Vec<Mask>, Vec<Pose>, BodyDims, Camera) {
        let cfg = JumpConfig::default();
        let poses = synthesize_jump(&cfg);
        let camera = Camera::compact();
        let truth: Vec<Pose> = poses.poses().iter().take(take).copied().collect();
        let sils = truth
            .iter()
            .map(|p| render_silhouette(p, &cfg.dims, &camera))
            .collect();
        (sils, truth, cfg.dims, camera)
    }

    fn fast_config() -> ParticleFilterConfig {
        ParticleFilterConfig {
            particles: 150,
            stride: 4,
            seed: 7,
            ..ParticleFilterConfig::default()
        }
    }

    #[test]
    fn tracks_a_short_jump() {
        let (sils, truth, dims, camera) = fixture(6);
        let pf = ParticleFilter::new(fast_config());
        let run = pf.track(&sils, truth[0], &dims, &camera).unwrap();
        assert_eq!(run.frames.len(), 6);
        for (k, (est, gt)) in run.frames.iter().zip(truth.iter()).enumerate() {
            let err = est.pose.error_against(gt);
            assert!(
                err.center_distance < 0.2,
                "frame {k}: centre off {} m",
                err.center_distance
            );
            assert!(!est.carried_over);
        }
        assert!(run.total_evaluations() > 0);
    }

    #[test]
    fn deterministic_in_the_seed() {
        let (sils, truth, dims, camera) = fixture(4);
        let pf = ParticleFilter::new(fast_config());
        let a = pf.track(&sils, truth[0], &dims, &camera).unwrap();
        let b = pf.track(&sils, truth[0], &dims, &camera).unwrap();
        for (x, y) in a.frames.iter().zip(b.frames.iter()) {
            assert_eq!(x.pose.to_genes(), y.pose.to_genes());
        }
    }

    #[test]
    fn empty_silhouette_carries_over() {
        let (mut sils, truth, dims, camera) = fixture(4);
        sils[2] = Mask::new(camera.width, camera.height);
        let pf = ParticleFilter::new(fast_config());
        let run = pf.track(&sils, truth[0], &dims, &camera).unwrap();
        assert!(run.frames[2].carried_over);
        assert!(!run.frames[3].carried_over);
    }

    #[test]
    fn bad_configs_rejected() {
        let (sils, truth, dims, camera) = fixture(2);
        for cfg in [
            ParticleFilterConfig {
                particles: 1,
                ..fast_config()
            },
            ParticleFilterConfig {
                temperature: 0.0,
                ..fast_config()
            },
        ] {
            assert!(matches!(
                ParticleFilter::new(cfg).track(&sils, truth[0], &dims, &camera),
                Err(GaError::BadConfig { .. })
            ));
        }
        assert!(matches!(
            ParticleFilter::new(fast_config()).track(&[], truth[0], &dims, &camera),
            Err(GaError::NoFrames)
        ));
    }

    #[test]
    fn effective_sample_size_is_bounded() {
        let (sils, truth, dims, camera) = fixture(4);
        let pf = ParticleFilter::new(fast_config());
        let run = pf.track(&sils, truth[0], &dims, &camera).unwrap();
        for f in run.frames.iter().skip(1) {
            assert!(f.effective_sample_size >= 1.0 - 1e-9);
            assert!(f.effective_sample_size <= 150.0 + 1e-9);
        }
    }

    #[test]
    fn systematic_resample_follows_weights() {
        let dims = BodyDims::default();
        let a = Pose::standing(&dims);
        let mut b = a;
        b.center.x += 1.0;
        let cloud = vec![a, b];
        // All weight on b.
        let weights = vec![0.0, 1.0];
        let mut rng = StdRng::seed_from_u64(1);
        let out = systematic_resample(&cloud, &weights, 1.0, &mut rng);
        assert!(out.iter().all(|p| p.center.x == b.center.x));
        // Degenerate weights: cloud passes through.
        let out = systematic_resample(&cloud, &[0.0, 0.0], 0.0, &mut rng);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn to_pose_seq_roundtrip() {
        let (sils, truth, dims, camera) = fixture(3);
        let pf = ParticleFilter::new(fast_config());
        let run = pf.track(&sils, truth[0], &dims, &camera).unwrap();
        let seq = run.to_pose_seq(10.0);
        assert_eq!(seq.len(), 3);
    }
}
