//! Frame-to-frame pose tracking with temporal seeding (the paper's
//! modification of \[5\] "for video sequences").
//!
//! The caller supplies the first frame's pose — the paper has "a trained
//! person … draw the stick figure for the human object in the first
//! frame" — and the tracker estimates every later frame by running the
//! GA with the previous frame's estimate as the seed of the initial
//! population.
//!
//! When a frame resists the temporal seed — the silhouette jumped
//! further than the Δ windows allow, or segmentation handed back debris
//! — the tracker climbs a [`RecoveryPolicy`] escalation ladder instead
//! of silently freezing: retry the GA with widened Δ-centre/Δρ windows,
//! then cold-restart from the silhouette centroid, then interpolate the
//! pose kinematically from the neighbouring healthy estimates, and only
//! then carry the previous pose over verbatim. Each frame's
//! [`TrackResult`] records which rung fired in
//! [`TrackResult::recovery`].

use crate::engine::{evolve, GaConfig, GaRun};
use crate::error::GaError;
use crate::fitness::{PruneStats, SilhouetteFitness};
use crate::pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig, DEFAULT_DELTA_ANGLES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use slj_imgproc::geometry::Point2;
use slj_imgproc::mask::Mask;
use slj_imgproc::moments;
use slj_motion::model::STICK_COUNT;
use slj_motion::{BodyDims, Pose, PoseSeq};
use slj_runtime::Parallelism;
use slj_video::Camera;
use std::sync::Arc;

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// GA engine parameters used per frame.
    pub ga: GaConfig,
    /// Genetic-operator parameters.
    pub problem: PoseProblemConfig,
    /// Half-width of the centre rectangle around the silhouette
    /// centroid, metres.
    pub delta_center: f64,
    /// Per-stick half-range Δρ_l, degrees.
    pub delta_angles: [f64; STICK_COUNT],
    /// Master seed; frame k uses `seed + k` so runs are reproducible
    /// and frames are decorrelated.
    pub seed: u64,
    /// What to do when a frame resists the temporal seed.
    pub recovery: RecoveryPolicy,
    /// Worker threads for per-genome fitness evaluation, resolved into
    /// [`GaConfig::threads`] when tracking runs. Frames themselves stay
    /// sequential — frame k's seed *is* frame k−1's estimate — so the
    /// fan-out happens inside each frame's GA. Overrides `ga.threads`.
    pub parallelism: Parallelism,
}

/// The escalation ladder for frames the temporal seed cannot explain.
///
/// Rungs fire in order; a rung is skipped when its precondition fails
/// (e.g. a blank silhouette has no centroid to cold-restart from):
///
/// 1. **Temporal** (not a recovery) — the paper's seeding, as before.
/// 2. **Widened retry** — same seeding with Δ-centre and Δρ scaled by
///    [`RecoveryPolicy::widen_factor`]: catches motion that outran the
///    windows (dropped frames double the apparent velocity).
/// 3. **Cold restart** — the previous pose re-centred on the silhouette
///    centroid with widened windows: catches a body that teleported
///    (camera jitter, frames lost in a burst).
/// 4. **Kinematic interpolation** — when no GA candidate exists at all
///    (blank or unfittable silhouette), continue the trunk centre
///    through the gap at damped constant velocity from the two most
///    recent accepted estimates, keeping the joint angles of the last
///    estimate.
/// 5. **Carry over** — the previous estimate verbatim, flagged; the
///    rung of last resort (frame 1 has no penultimate estimate to
///    interpolate from, and the policy may disable interpolation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Scale applied to `delta_center` and `delta_angles` on the
    /// widened retry and the cold restart (angles cap at 180°).
    pub widen_factor: f64,
    /// Fitness above which an estimate is distrusted and the ladder
    /// escalates; `None` escalates only on hard failures (no valid
    /// initial population).
    pub max_acceptable_fitness: Option<f64>,
    /// Whether the cold-restart rung is attempted at all.
    pub cold_restart: bool,
    /// Whether unfittable frames interpolate the pose kinematically
    /// from the neighbouring accepted estimates instead of carrying the
    /// previous pose over verbatim.
    pub interpolate: bool,
    /// Per-gap-frame damping λ applied to the centre velocity on the
    /// interpolation rung: each consecutive unusable frame advances the
    /// trunk centre by λ times the previous step, so a long gap
    /// asymptotically coasts to a stop instead of diverging. 1.0 is
    /// undamped constant velocity; 0.0 degenerates to carry-over.
    /// The default (0.9) was chosen by the `slj-eval` fault-matrix
    /// sweep (see EXPERIMENTS.md): real jumps decelerate into landing,
    /// so a mild damp beats both extremes.
    pub interpolate_damping: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            widen_factor: 2.0,
            max_acceptable_fitness: Some(3.0),
            cold_restart: true,
            interpolate: true,
            interpolate_damping: 0.9,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that never retries: hard failures carry over
    /// immediately (the pre-ladder behaviour).
    pub fn none() -> Self {
        RecoveryPolicy {
            widen_factor: 1.0,
            max_acceptable_fitness: None,
            cold_restart: false,
            interpolate: false,
            interpolate_damping: 0.9,
        }
    }

    fn accepts(&self, fitness: f64) -> bool {
        self.max_acceptable_fitness.is_none_or(|t| fitness <= t)
    }
}

/// Which rung of the recovery ladder produced a frame's estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RecoveryAction {
    /// Plain temporal seeding worked (the normal case).
    #[default]
    None,
    /// The widened-window retry produced the estimate.
    WidenedSearch,
    /// The cold restart from the silhouette centroid produced the
    /// estimate.
    ColdRestart,
    /// No GA candidate existed; the trunk centre was extrapolated at
    /// damped constant velocity from the two most recent accepted
    /// estimates, with the last estimate's joint angles kept.
    Interpolated,
    /// Every rung failed; the previous pose was carried over.
    CarriedOver,
}

impl std::fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RecoveryAction::None => "tracked",
            RecoveryAction::WidenedSearch => "widened search",
            RecoveryAction::ColdRestart => "cold restart",
            RecoveryAction::Interpolated => "interpolated",
            RecoveryAction::CarriedOver => "carried over",
        };
        f.write_str(s)
    }
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            ga: GaConfig {
                population_size: 100,
                max_generations: 40,
                patience: Some(10),
                ..GaConfig::default()
            },
            problem: PoseProblemConfig::default(),
            delta_center: 0.12,
            delta_angles: DEFAULT_DELTA_ANGLES,
            seed: 0x51_1A_B0,
            recovery: RecoveryPolicy::default(),
            parallelism: Parallelism::Serial,
        }
    }
}

impl TrackerConfig {
    /// A reduced-budget configuration for tests and quick demos
    /// (smaller population, coarser fitness sampling).
    pub fn fast() -> Self {
        TrackerConfig {
            ga: GaConfig {
                population_size: 40,
                max_generations: 15,
                patience: Some(6),
                ..GaConfig::default()
            },
            problem: PoseProblemConfig {
                stride: 4,
                ..PoseProblemConfig::default()
            },
            ..TrackerConfig::default()
        }
    }
}

/// The estimate for one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackResult {
    /// The estimated pose.
    pub pose: Pose,
    /// Its Eq. 3 fitness (lower = better); infinite when the frame was
    /// carried over.
    pub fitness: f64,
    /// Generation at which the best chromosome first appeared (0 = in
    /// the initial population).
    pub generation_of_best: usize,
    /// Generations the GA ran for this frame.
    pub generations_run: usize,
    /// First generation whose best was within 10% of the frame's final
    /// best fitness (0 = the seeded initial population was already
    /// there).
    pub generations_to_near_best: usize,
    /// Fitness evaluations spent on this frame.
    pub evaluations: usize,
    /// True when the silhouette was unusable (blank) and the previous
    /// pose was carried over unchanged. Equivalent to
    /// `recovery == RecoveryAction::CarriedOver`; kept for callers that
    /// predate the recovery ladder.
    pub carried_over: bool,
    /// Which rung of the recovery ladder produced this estimate.
    pub recovery: RecoveryAction,
    /// Best fitness after each GA generation for this frame (index 0 =
    /// the seeded initial population). Empty for frame 0 and carried
    /// frames.
    pub history: Vec<f64>,
    /// Recovery-ladder rungs that completed a GA run for this frame (0
    /// for frame 0 and synthesised frames; 1 when the temporal seed
    /// succeeded first try).
    pub rungs_attempted: usize,
    /// Distinct genomes evaluated across all rungs (fitness-memo
    /// insertions; 0 when the memo is disabled). A set size, so it is
    /// invariant under the parallel fitness fan-out even though the
    /// racy hit/miss split is not.
    pub unique_genomes: usize,
    /// Exact Eq. 3 stick evaluations when re-scoring the final pose
    /// through the branch-and-bound path (observability accounting,
    /// computed once per frame off the GA hot path).
    pub bb_candidates: u64,
    /// Stick evaluations the branch-and-bound pruned on that same
    /// pass; `bb_candidates + bb_pruned = 8 × sample pixels`.
    pub bb_pruned: u64,
}

impl TrackResult {
    /// True when the pose came out of a GA run on this frame's own
    /// silhouette (rungs temporal/widened/cold-restart) — the frames
    /// whose convergence statistics are meaningful. Interpolated and
    /// carried frames are synthesised without evaluating the frame.
    pub fn ga_estimated(&self) -> bool {
        !matches!(
            self.recovery,
            RecoveryAction::Interpolated | RecoveryAction::CarriedOver
        )
    }
}

/// The whole-clip tracking output.
#[derive(Debug, Clone)]
pub struct TrackingRun {
    /// Per-frame estimates, index-aligned with the input silhouettes.
    pub frames: Vec<TrackResult>,
}

impl TrackingRun {
    /// The estimated poses as a sequence (at the given fps).
    pub fn to_pose_seq(&self, fps: f64) -> PoseSeq {
        PoseSeq::new(self.frames.iter().map(|f| f.pose).collect(), fps)
    }

    /// Total fitness evaluations across all frames.
    pub fn total_evaluations(&self) -> usize {
        self.frames.iter().map(|f| f.evaluations).sum()
    }

    /// Mean generation-of-best over tracked (non-carried) frames after
    /// the first.
    pub fn mean_generation_of_best(&self) -> f64 {
        Self::mean_over(
            self.frames
                .iter()
                .skip(1)
                .filter(|f| f.ga_estimated())
                .map(|f| f.generation_of_best),
        )
    }

    /// Mean generations-to-near-best over tracked frames after the first
    /// — the quantity behind the paper's "the shown best estimated model
    /// was generated at the second generation".
    pub fn mean_generations_to_near_best(&self) -> f64 {
        Self::mean_over(
            self.frames
                .iter()
                .skip(1)
                .filter(|f| f.ga_estimated())
                .map(|f| f.generations_to_near_best),
        )
    }

    fn mean_over(iter: impl Iterator<Item = usize>) -> f64 {
        let gens: Vec<usize> = iter.collect();
        if gens.is_empty() {
            0.0
        } else {
            gens.iter().sum::<usize>() as f64 / gens.len() as f64
        }
    }
}

/// The temporal GA tracker.
#[derive(Debug, Clone, Default)]
pub struct TemporalTracker {
    config: TrackerConfig,
}

impl TemporalTracker {
    /// Creates a tracker with the given configuration.
    pub fn new(config: TrackerConfig) -> Self {
        TemporalTracker { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// The per-frame GA configuration actually used: the shared
    /// [`Parallelism`] knob resolved into a concrete worker count.
    pub fn effective_ga(&self) -> GaConfig {
        GaConfig {
            threads: self.config.parallelism.threads(),
            ..self.config.ga
        }
    }

    /// Tracks a clip: `silhouettes\[0\]` is described by `first_pose`
    /// (the hand-drawn model); every later frame is estimated by the
    /// temporally-seeded GA.
    ///
    /// Frames whose silhouette is unusable — blank, or so inconsistent
    /// with the seed pose that no valid chromosome exists — carry the
    /// previous estimate forward and are flagged `carried_over`.
    ///
    /// Implemented as a loop over [`TrackerStream::push`], so batch and
    /// incremental tracking are identical by construction.
    ///
    /// # Errors
    ///
    /// * [`GaError::NoFrames`] when `silhouettes` is empty.
    /// * [`GaError::BadConfig`] for invalid configuration.
    pub fn track(
        &self,
        silhouettes: &[Mask],
        first_pose: Pose,
        dims: &BodyDims,
        camera: &Camera,
    ) -> Result<TrackingRun, GaError> {
        if silhouettes.is_empty() {
            return Err(GaError::NoFrames);
        }
        let mut stream = self.stream(first_pose, dims, camera);
        let mut frames = Vec::with_capacity(silhouettes.len());
        for sil in silhouettes {
            frames.push(stream.push(sil)?);
        }
        Ok(TrackingRun { frames })
    }

    /// Starts incremental tracking: silhouettes are then fed one at a
    /// time through [`TrackerStream::push`]. The first pushed frame is
    /// described by `first_pose` (the hand-drawn model), exactly as in
    /// [`TemporalTracker::track`].
    pub fn stream(&self, first_pose: Pose, dims: &BodyDims, camera: &Camera) -> TrackerStream {
        TrackerStream {
            tracker: self.clone(),
            first_pose,
            dims: dims.clone(),
            camera: *camera,
            previous: first_pose,
            penultimate: None,
            next_frame: 0,
            scratch: TrackScratch::default(),
        }
    }

    /// Estimates one frame, climbing the recovery ladder as needed.
    /// `penultimate` is the accepted estimate before `previous` (absent
    /// until two frames have been accepted) — the second anchor of the
    /// kinematic-interpolation rung.
    #[allow(clippy::too_many_arguments)]
    fn estimate_frame(
        &self,
        k: usize,
        sil: &Mask,
        previous: Pose,
        penultimate: Option<Pose>,
        dims: &BodyDims,
        camera: &Camera,
        scratch: &mut TrackScratch,
    ) -> Result<TrackResult, GaError> {
        let policy = self.config.recovery;
        let widen = policy.widen_factor.max(1.0);
        let widened_center = self.config.delta_center * widen;
        let mut widened_angles = self.config.delta_angles;
        for a in widened_angles.iter_mut() {
            *a = (*a * widen).min(180.0);
        }
        // The cold-restart anchor: the silhouette's geometric centre in
        // world coordinates. Absent for a blank mask.
        let centroid_world = moments::centroid(sil).map(|c| camera.image_to_world(c));

        let mut rungs: Vec<(RecoveryAction, InitStrategy)> = vec![(
            RecoveryAction::None,
            InitStrategy::Temporal {
                previous,
                delta_center: self.config.delta_center,
                delta_angles: self.config.delta_angles,
            },
        )];
        if widen > 1.0 {
            rungs.push((
                RecoveryAction::WidenedSearch,
                InitStrategy::Temporal {
                    previous,
                    delta_center: widened_center,
                    delta_angles: widened_angles,
                },
            ));
        }
        if policy.cold_restart {
            if let Some(anchor) = centroid_world {
                rungs.push((
                    RecoveryAction::ColdRestart,
                    InitStrategy::Temporal {
                        previous: previous.with_center(anchor),
                        delta_center: widened_center,
                        delta_angles: widened_angles,
                    },
                ));
            }
        }

        // One Eq. 3 evaluator serves every rung: the silhouette's point
        // list and distance field don't depend on the init strategy, so
        // escalation costs a config re-validation, not a re-preparation.
        // A spare evaluator reclaimed from the previous frame is rebuilt
        // in place (value-identical to a fresh build) so steady-state
        // tracking re-uses the point planes and distance field storage.
        let shared_fitness: Option<Arc<SilhouetteFitness>> =
            if let Some(mut f) = scratch.fitness.take() {
                match f.rebuild(sil, dims, camera, self.config.problem.stride) {
                    Ok(()) => Some(Arc::new(f)),
                    Err(GaError::EmptySilhouette) => {
                        scratch.fitness = Some(f);
                        None
                    }
                    Err(e) => return Err(e),
                }
            } else {
                match SilhouetteFitness::new(sil, dims, camera, self.config.problem.stride) {
                    Ok(f) => Some(Arc::new(f)),
                    Err(GaError::EmptySilhouette) => None,
                    Err(e) => return Err(e),
                }
            };

        let ga = self.effective_ga();
        let mut spent_evaluations = 0usize;
        let mut rungs_attempted = 0usize;
        let mut unique_genomes = 0usize;
        let mut best: Option<TrackResult> = None;
        for (rung_index, (action, init)) in rungs.into_iter().enumerate() {
            let Some(fitness) = shared_fitness.as_ref() else {
                break; // blank silhouette: fall through to carry-over
            };
            if scratch.problems.len() <= rung_index {
                scratch
                    .problems
                    .resize_with(rung_index + 1, Default::default);
            }
            let problem = match PoseProblem::with_fitness_scratch(
                sil,
                Arc::clone(fitness),
                dims,
                camera,
                init,
                self.config.problem,
                std::mem::take(&mut scratch.problems[rung_index]),
            ) {
                Ok(p) => p,
                Err(GaError::EmptySilhouette) | Err(GaError::InitFailed { .. }) => continue,
                Err(e) => return Err(e),
            };
            // Rung 0 reproduces the pre-ladder RNG stream exactly;
            // later rungs get decorrelated streams.
            let mut rng = StdRng::seed_from_u64(
                self.config
                    .seed
                    .wrapping_add(k as u64)
                    .wrapping_add((rung_index as u64).wrapping_mul(0x9E37_79B9)),
            );
            let run = match evolve(&problem, &ga, &mut rng) {
                Ok(run) => run,
                Err(GaError::InitFailed { .. }) => continue,
                Err(e) => return Err(e),
            };
            spent_evaluations += run.evaluations;
            rungs_attempted += 1;
            // The memo is per-rung, so its final size is exactly this
            // rung's distinct-genome count (read before the problem's
            // heavy state goes back to the per-rung scratch slot).
            unique_genomes += problem.memo().len();
            scratch.problems[rung_index] = problem.reclaim();
            let candidate = Self::to_result(run, action, spent_evaluations);
            let acceptable = policy.accepts(candidate.fitness);
            if best.as_ref().is_none_or(|b| candidate.fitness < b.fitness) {
                best = Some(candidate);
            }
            if acceptable {
                break;
            }
        }

        let result = match best {
            Some(mut b) => {
                // All rungs' work is billed to the frame, whichever won.
                b.evaluations = spent_evaluations;
                b.rungs_attempted = rungs_attempted;
                b.unique_genomes = unique_genomes;
                if let Some(fitness) = shared_fitness.as_ref() {
                    let stats = fitness.prune_stats(&b.pose, dims);
                    b.bb_candidates = stats.candidates;
                    b.bb_pruned = stats.pruned;
                }
                b
            }
            // No GA candidate exists: the silhouette was unusable
            // (blank, or so inconsistent with every seed that no valid
            // chromosome exists). Interpolate the trajectory through
            // the gap when the policy allows and two accepted estimates
            // anchor it: advance the trunk centre by λ times the last
            // observed step and keep the joint angles — translation is
            // the kinematically predictable part of a jump, while
            // extrapolating the noisy per-stick angles doubles their GA
            // noise and can coast into poses no later init can recover
            // from. Causal — no future frame needed — so streaming and
            // batch stay identical. Fitness stays infinite: the pose
            // was never matched against this frame's (unusable)
            // silhouette.
            None => {
                let interpolated = if policy.interpolate {
                    let lambda = policy.interpolate_damping.max(0.0);
                    penultimate.map(|pen| {
                        let c = previous.center;
                        previous.with_center(Point2::new(
                            c.x + lambda * (c.x - pen.center.x),
                            c.y + lambda * (c.y - pen.center.y),
                        ))
                    })
                } else {
                    None
                };
                let (pose, recovery, carried_over) = match interpolated {
                    Some(p) => (p, RecoveryAction::Interpolated, false),
                    // Rung of last resort: carry the previous estimate
                    // verbatim, flagged.
                    None => (previous, RecoveryAction::CarriedOver, true),
                };
                TrackResult {
                    pose,
                    fitness: f64::INFINITY,
                    generation_of_best: 0,
                    generations_run: 0,
                    generations_to_near_best: 0,
                    evaluations: spent_evaluations,
                    carried_over,
                    recovery,
                    history: Vec::new(),
                    rungs_attempted,
                    unique_genomes,
                    bb_candidates: 0,
                    bb_pruned: 0,
                }
            }
        };
        // Every per-rung problem has been dismantled, so this frame's
        // Arc is unique again: reclaim the evaluator for the next frame.
        if let Some(f) = shared_fitness {
            if let Ok(f) = Arc::try_unwrap(f) {
                scratch.fitness = Some(f);
            }
        }
        Ok(result)
    }

    fn to_result(run: GaRun<Pose>, action: RecoveryAction, evaluations: usize) -> TrackResult {
        // The rung/memo/branch-and-bound accounting is frame-level, not
        // run-level; `estimate_frame` fills it in on the winner.
        TrackResult {
            pose: run.best,
            fitness: run.best_fitness,
            generation_of_best: run.generation_of_best,
            generations_run: run.generations_run,
            generations_to_near_best: run.generations_to_near_best(0.10),
            evaluations,
            carried_over: false,
            recovery: action,
            history: run.history,
            rungs_attempted: 0,
            unique_genomes: 0,
            bb_candidates: 0,
            bb_pruned: 0,
        }
    }
}

/// A tracker stream's recyclable heavy state: the spare Eq. 3 evaluator
/// (point planes + distance field, rebuilt in place per frame) and each
/// recovery rung's [`ProblemScratch`] (memo tables + batch buffers).
/// Purely an allocation cache — results never depend on its contents —
/// so cloning a stream starts the clone with a fresh scratch.
#[derive(Debug, Default)]
pub struct TrackScratch {
    /// Evaluator reclaimed via `Arc::try_unwrap` once a frame's rung
    /// problems have released their handles.
    fitness: Option<SilhouetteFitness>,
    /// Per-rung problem state, indexed by rung position in the ladder.
    problems: Vec<crate::pose_problem::ProblemScratch>,
}

impl Clone for TrackScratch {
    fn clone(&self) -> Self {
        TrackScratch::default()
    }
}

/// Incremental tracking state: one frame estimated per
/// [`push`](TrackerStream::push), in arrival order.
///
/// This is the sequential core of [`TemporalTracker::track`] with the
/// loop inverted — the tracker only ever needs the previous accepted
/// pose and the frame counter, so a streaming caller holds O(1) state
/// regardless of clip length, and the batch path is literally a loop
/// over `push` (identical results by construction, not by test alone —
/// though it is tested too).
#[derive(Debug, Clone)]
pub struct TrackerStream {
    tracker: TemporalTracker,
    first_pose: Pose,
    dims: BodyDims,
    camera: Camera,
    /// Seed for the next frame: the last non-carried estimate.
    previous: Pose,
    /// The accepted estimate before `previous` — the second anchor of
    /// the kinematic-interpolation rung. `None` until two estimates
    /// have been accepted.
    penultimate: Option<Pose>,
    next_frame: usize,
    /// Recyclable per-frame heavy state (see [`TrackScratch`]).
    scratch: TrackScratch,
}

impl TrackerStream {
    /// Estimates the pose for the next frame's silhouette.
    ///
    /// The first push evaluates the hand-drawn `first_pose` for the
    /// record (the paper's manual initialisation); every later push
    /// runs the temporally-seeded GA with the recovery ladder, seeding
    /// from the last non-carried estimate.
    ///
    /// # Errors
    ///
    /// * [`GaError::BadConfig`] for invalid configuration.
    pub fn push(&mut self, sil: &Mask) -> Result<TrackResult, GaError> {
        let k = self.next_frame;
        let result = if k == 0 {
            // Frame 0: the provided (hand-drawn) pose, evaluated for
            // the record. A recycled evaluator (a stream re-seeded via
            // `with_scratch`) is rebuilt in place instead of allocated.
            let stride = self.tracker.config.problem.stride;
            let evaluator = match self.scratch.fitness.take() {
                Some(mut f) => match f.rebuild(sil, &self.dims, &self.camera, stride) {
                    Ok(()) => Some(f),
                    Err(GaError::EmptySilhouette) => {
                        self.scratch.fitness = Some(f);
                        None
                    }
                    Err(e) => return Err(e),
                },
                None => match SilhouetteFitness::new(sil, &self.dims, &self.camera, stride) {
                    Ok(f) => Some(f),
                    Err(GaError::EmptySilhouette) => None,
                    Err(e) => return Err(e),
                },
            };
            let (fitness, bb) = match evaluator {
                Some(f) => {
                    let record = (
                        f.evaluate(&self.first_pose, &self.dims),
                        f.prune_stats(&self.first_pose, &self.dims),
                    );
                    // Seed the scratch so frame 1 starts the rebuild
                    // cycle with this frame's buffers.
                    self.scratch.fitness = Some(f);
                    record
                }
                None => (f64::INFINITY, PruneStats::default()),
            };
            TrackResult {
                pose: self.first_pose,
                fitness,
                generation_of_best: 0,
                generations_run: 0,
                generations_to_near_best: 0,
                evaluations: 1,
                carried_over: false,
                recovery: RecoveryAction::None,
                history: Vec::new(),
                rungs_attempted: 0,
                unique_genomes: 0,
                bb_candidates: bb.candidates,
                bb_pruned: bb.pruned,
            }
        } else {
            self.tracker.estimate_frame(
                k,
                sil,
                self.previous,
                self.penultimate,
                &self.dims,
                &self.camera,
                &mut self.scratch,
            )?
        };
        self.next_frame = k + 1;
        if !result.carried_over {
            // Interpolated poses advance the anchors too: each
            // consecutive unusable frame then continues the trajectory
            // with a further-damped step (λ, λ², …) instead of
            // replaying the same one-frame step.
            if k > 0 {
                self.penultimate = Some(self.previous);
            }
            self.previous = result.pose;
        }
        Ok(result)
    }

    /// Frames pushed so far.
    pub fn frames_pushed(&self) -> usize {
        self.next_frame
    }

    /// The seed pose the next frame will start from: the last
    /// non-carried estimate (the first pose before any push).
    pub fn previous_pose(&self) -> &Pose {
        &self.previous
    }

    /// Installs recycled scratch (typically a retired stream's
    /// [`reclaim_scratch`](TrackerStream::reclaim_scratch)). Purely an
    /// allocation cache: every estimate is byte-identical with or
    /// without it.
    pub fn with_scratch(mut self, scratch: TrackScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// Consumes the stream, handing its recyclable heavy state to the
    /// next clip's tracker.
    pub fn reclaim_scratch(self) -> TrackScratch {
        self.scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::synth::{synthesize_jump, JumpConfig};
    use slj_video::render::render_silhouette;

    /// Ground-truth silhouettes: the first `take` frames of a
    /// realistically-paced 20-frame jump (slicing keeps per-frame joint
    /// velocities realistic while keeping tests cheap).
    fn jump_silhouettes(take: usize) -> (Vec<Mask>, Vec<slj_motion::Pose>, BodyDims, Camera) {
        let cfg = JumpConfig::default();
        let poses = synthesize_jump(&cfg);
        let camera = Camera::default();
        let truth: Vec<slj_motion::Pose> = poses.poses().iter().take(take).copied().collect();
        let sils = truth
            .iter()
            .map(|p| render_silhouette(p, &cfg.dims, &camera))
            .collect();
        (sils, truth, cfg.dims, camera)
    }

    #[test]
    fn tracks_a_short_jump_accurately() {
        let (sils, truth, dims, camera) = jump_silhouettes(6);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        assert_eq!(run.frames.len(), 6);
        for (k, (est, gt)) in run.frames.iter().zip(truth.iter()).enumerate() {
            let err = est.pose.error_against(gt);
            assert!(
                err.center_distance < 0.15,
                "frame {k}: centre off by {} m",
                err.center_distance
            );
            assert!(!est.carried_over);
            assert!(est.fitness < 1.2, "frame {k}: fitness {}", est.fitness);
        }
    }

    #[test]
    fn temporal_seeding_converges_in_few_generations() {
        let (sils, truth, dims, camera) = jump_silhouettes(4);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        // The paper's headline observation: with temporal seeding a
        // near-best model appears within the first few generations.
        let mean = run.mean_generations_to_near_best();
        assert!(mean <= 5.0, "mean generations to near-best {mean}");
    }

    #[test]
    fn empty_silhouette_interpolates_through_the_gap() {
        // Blank a flight-phase frame: the centre is moving there, so
        // the extrapolated pose is visibly distinct from a carry.
        let (mut sils, truth, dims, camera) = jump_silhouettes(12);
        sils[10] = Mask::new(camera.width, camera.height);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        let f = &run.frames[10];
        assert_eq!(f.recovery, RecoveryAction::Interpolated);
        assert!(!f.carried_over);
        assert!(f.fitness.is_infinite());
        assert!(!f.ga_estimated());
        // The centre is the damped constant-velocity continuation of
        // the frame 8 → 9 step; the angles are frame 9's verbatim —
        // translation extrapolates, the noisy angle estimates do not.
        let lambda = RecoveryPolicy::default().interpolate_damping;
        let (c8, c9) = (run.frames[8].pose.center, run.frames[9].pose.center);
        let expected = run.frames[9].pose.with_center(Point2::new(
            c9.x + lambda * (c9.x - c8.x),
            c9.y + lambda * (c9.y - c8.y),
        ));
        assert_eq!(f.pose.to_genes(), expected.to_genes());
        assert_ne!(f.pose.to_genes(), run.frames[9].pose.to_genes());
        assert_eq!(f.pose.angles, run.frames[9].pose.angles);
        // Tracking resumes afterwards.
        assert!(run.frames[11].ga_estimated());
    }

    #[test]
    fn empty_silhouette_carries_when_interpolation_is_disabled() {
        let (mut sils, truth, dims, camera) = jump_silhouettes(4);
        sils[2] = Mask::new(camera.width, camera.height);
        let tracker = TemporalTracker::new(TrackerConfig {
            recovery: RecoveryPolicy {
                interpolate: false,
                ..RecoveryPolicy::default()
            },
            ..TrackerConfig::fast()
        });
        let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        assert!(run.frames[2].carried_over);
        assert_eq!(run.frames[2].recovery, RecoveryAction::CarriedOver);
        assert!(run.frames[2].fitness.is_infinite());
        assert_eq!(run.frames[2].pose.to_genes(), run.frames[1].pose.to_genes());
        assert!(!run.frames[3].carried_over);
    }

    #[test]
    fn first_gap_without_penultimate_anchor_carries_over() {
        // A blank frame 1 has only one accepted estimate behind it —
        // no velocity to continue — so even with interpolation enabled
        // the ladder falls through to the carry rung.
        let (mut sils, truth, dims, camera) = jump_silhouettes(4);
        sils[1] = Mask::new(camera.width, camera.height);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        assert_eq!(run.frames[1].recovery, RecoveryAction::CarriedOver);
        assert!(run.frames[1].carried_over);
        assert_eq!(run.frames[1].pose.to_genes(), run.frames[0].pose.to_genes());
    }

    #[test]
    fn consecutive_gaps_continue_the_trajectory() {
        // Two blank flight-phase frames in a row: each interpolated
        // pose becomes the next anchor, so the centre keeps moving —
        // by λ times the previous step each frame — instead of
        // replaying one step.
        let (mut sils, truth, dims, camera) = jump_silhouettes(13);
        sils[10] = Mask::new(camera.width, camera.height);
        sils[11] = Mask::new(camera.width, camera.height);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        assert_eq!(run.frames[10].recovery, RecoveryAction::Interpolated);
        assert_eq!(run.frames[11].recovery, RecoveryAction::Interpolated);
        let lambda = RecoveryPolicy::default().interpolate_damping;
        let (c9, c10) = (run.frames[9].pose.center, run.frames[10].pose.center);
        let step2 = run.frames[10].pose.with_center(Point2::new(
            c10.x + lambda * (c10.x - c9.x),
            c10.y + lambda * (c10.y - c9.y),
        ));
        assert_eq!(run.frames[11].pose.to_genes(), step2.to_genes());
        assert_ne!(
            run.frames[11].pose.to_genes(),
            run.frames[10].pose.to_genes(),
            "the second gap frame must keep moving"
        );
        assert!(!run.frames[12].carried_over);
    }

    #[test]
    fn stream_push_matches_batch_track() {
        // `track` is a loop over `push`, so this can only fail if the
        // stream mismanages its own state (previous pose or counter).
        let (mut sils, truth, dims, camera) = jump_silhouettes(5);
        sils[2] = Mask::new(camera.width, camera.height); // exercise the interpolation rung
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let batch = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        let mut stream = tracker.stream(truth[0], &dims, &camera);
        assert_eq!(stream.frames_pushed(), 0);
        for (k, sil) in sils.iter().enumerate() {
            let result = stream.push(sil).unwrap();
            assert_eq!(result, batch.frames[k], "frame {k}");
        }
        assert_eq!(stream.frames_pushed(), sils.len());
        // The stream's seed pose is the last non-carried estimate.
        assert_eq!(
            stream.previous_pose().to_genes(),
            batch.frames[4].pose.to_genes()
        );
    }

    #[test]
    fn no_frames_is_an_error() {
        let dims = BodyDims::default();
        let camera = Camera::default();
        let tracker = TemporalTracker::default();
        assert!(matches!(
            tracker.track(&[], Pose::standing(&dims), &dims, &camera),
            Err(GaError::NoFrames)
        ));
    }

    #[test]
    fn tracking_is_deterministic() {
        let (sils, truth, dims, camera) = jump_silhouettes(3);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let a = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        let b = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        for (x, y) in a.frames.iter().zip(b.frames.iter()) {
            assert_eq!(x.pose.to_genes(), y.pose.to_genes());
            assert_eq!(x.fitness, y.fitness);
        }
    }

    #[test]
    fn parallel_tracking_matches_serial_exactly() {
        // Thread count is a throughput knob, never a semantics knob:
        // every per-frame field — pose bits, fitness, convergence stats,
        // history — must be identical at any parallelism.
        let (sils, truth, dims, camera) = jump_silhouettes(4);
        let serial = TemporalTracker::new(TrackerConfig::fast())
            .track(&sils, truth[0], &dims, &camera)
            .unwrap();
        for parallelism in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let tracker = TemporalTracker::new(TrackerConfig {
                parallelism,
                ..TrackerConfig::fast()
            });
            assert_eq!(tracker.effective_ga().threads, parallelism.threads());
            let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
            assert_eq!(run.frames, serial.frames, "parallelism = {parallelism}");
        }
    }

    #[test]
    fn to_pose_seq_and_totals() {
        let (sils, truth, dims, camera) = jump_silhouettes(3);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        let seq = run.to_pose_seq(10.0);
        assert_eq!(seq.len(), 3);
        assert!(run.total_evaluations() > 0);
    }

    #[test]
    fn carried_frame_keeps_stats_and_resumes_with_fresh_previous() {
        // The carry-over branch in detail: stats are zeroed, the pose is
        // bit-identical to the last good estimate, and the *carried*
        // pose (not the blank frame) seeds the next frame. Interpolation
        // is disabled so the gap exercises the carry rung.
        let (mut sils, truth, dims, camera) = jump_silhouettes(5);
        sils[2] = Mask::new(camera.width, camera.height);
        sils[3] = Mask::new(camera.width, camera.height);
        let tracker = TemporalTracker::new(TrackerConfig {
            recovery: RecoveryPolicy {
                interpolate: false,
                ..RecoveryPolicy::default()
            },
            ..TrackerConfig::fast()
        });
        let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        for k in [2, 3] {
            let f = &run.frames[k];
            assert!(f.carried_over);
            assert_eq!(f.recovery, RecoveryAction::CarriedOver);
            assert!(f.fitness.is_infinite());
            assert_eq!(f.evaluations, 0, "blank silhouette costs nothing");
            assert_eq!(f.generations_run, 0);
            assert!(f.history.is_empty());
            assert_eq!(f.pose.to_genes(), run.frames[1].pose.to_genes());
        }
        // Frame 4 resumes from frame 1's estimate and tracks again.
        assert!(!run.frames[4].carried_over);
        // Carried frames are excluded from the convergence means.
        assert!(run.mean_generations_to_near_best().is_finite());
    }

    #[test]
    fn outrun_windows_recover_via_the_ladder() {
        // Rotate most of frame 3's body by 100° relative to frame 2 —
        // beyond every per-stick Δρ window, as if frames were lost and
        // the motion outran the temporal seed. Rung 0 cannot represent
        // the pose; the widened retry (Δρ ×2) can.
        use slj_motion::StickKind;
        let cfg = JumpConfig::default();
        let poses = synthesize_jump(&cfg);
        let camera = Camera::default();
        let truth: Vec<slj_motion::Pose> = poses.poses().iter().take(4).copied().collect();
        let mut moved = truth.clone();
        let mut p = moved[3];
        for stick in [
            StickKind::Trunk,
            StickKind::Thigh,
            StickKind::Shank,
            StickKind::UpperArm,
            StickKind::Forearm,
        ] {
            let a = p.angle(stick);
            p = p.with_angle(stick, a + 100.0);
        }
        moved[3] = p;
        let sils: Vec<Mask> = moved
            .iter()
            .map(|q| render_silhouette(q, &cfg.dims, &camera))
            .collect();

        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, truth[0], &cfg.dims, &camera).unwrap();
        let f = &run.frames[3];
        assert!(
            matches!(
                f.recovery,
                RecoveryAction::WidenedSearch | RecoveryAction::ColdRestart
            ),
            "expected an escalated rung, got {:?} (fitness {})",
            f.recovery,
            f.fitness
        );
        assert!(!f.carried_over);
        assert!(f.fitness < 3.0, "recovered fit is poor: {}", f.fitness);
        let err = f.pose.error_against(&moved[3]);
        assert!(
            err.center_distance < 0.2,
            "recovered estimate centre off by {} m",
            err.center_distance
        );

        // Without the ladder the same frame either carries over or
        // keeps a distrusted fit — the escalation is what buys the
        // accepted estimate.
        let rigid = TemporalTracker::new(TrackerConfig {
            recovery: RecoveryPolicy::none(),
            ..TrackerConfig::fast()
        });
        let run = rigid.track(&sils, truth[0], &cfg.dims, &camera).unwrap();
        let f = &run.frames[3];
        assert!(
            f.carried_over || f.fitness > 3.0,
            "policy none() unexpectedly matched the rotated body (fitness {})",
            f.fitness
        );
    }

    #[test]
    fn ladder_escalation_order_is_widen_cold_interpolate_carry() {
        // The ladder's rung order, end to end on one clip shape:
        // a trackable frame stays on rung 0; an outrun frame escalates
        // to widen/cold-restart; an unusable frame interpolates when
        // two anchors exist; and only when interpolation is impossible
        // (disabled, or no penultimate anchor) does carry-over fire.
        let (mut sils, truth, dims, camera) = jump_silhouettes(5);
        sils[3] = Mask::new(camera.width, camera.height);
        let run = TemporalTracker::new(TrackerConfig::fast())
            .track(&sils, truth[0], &dims, &camera)
            .unwrap();
        assert_eq!(run.frames[1].recovery, RecoveryAction::None);
        assert_eq!(run.frames[3].recovery, RecoveryAction::Interpolated);

        // GA rungs outrank interpolation: a frame with any usable
        // silhouette never reaches the synthesis rungs.
        for f in &run.frames {
            if f.ga_estimated() {
                assert!(f.fitness.is_finite());
            } else {
                assert!(f.fitness.is_infinite());
            }
        }

        // With interpolation disabled the same gap carries over — the
        // rung below interpolation, never above it.
        let no_interp = TemporalTracker::new(TrackerConfig {
            recovery: RecoveryPolicy {
                interpolate: false,
                ..RecoveryPolicy::default()
            },
            ..TrackerConfig::fast()
        })
        .track(&sils, truth[0], &dims, &camera)
        .unwrap();
        assert_eq!(no_interp.frames[3].recovery, RecoveryAction::CarriedOver);
        // Frames untouched by the ladder are bit-identical across the
        // two policies: the interpolation rung changes nothing else.
        for k in [0, 1, 2] {
            assert_eq!(run.frames[k], no_interp.frames[k], "frame {k}");
        }
    }

    #[test]
    fn interpolation_rung_is_bit_deterministic_across_parallelism() {
        // The interpolation rung is pure arithmetic on accepted poses,
        // but those poses come out of the (parallelism-invariant) GA —
        // assert the whole chain stays bit-identical at any thread
        // count, including the interpolated frames.
        let (mut sils, truth, dims, camera) = jump_silhouettes(5);
        sils[2] = Mask::new(camera.width, camera.height);
        sils[3] = Mask::new(camera.width, camera.height);
        let serial = TemporalTracker::new(TrackerConfig::fast())
            .track(&sils, truth[0], &dims, &camera)
            .unwrap();
        assert_eq!(serial.frames[2].recovery, RecoveryAction::Interpolated);
        assert_eq!(serial.frames[3].recovery, RecoveryAction::Interpolated);
        for parallelism in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let run = TemporalTracker::new(TrackerConfig {
                parallelism,
                ..TrackerConfig::fast()
            })
            .track(&sils, truth[0], &dims, &camera)
            .unwrap();
            assert_eq!(run.frames, serial.frames, "parallelism = {parallelism}");
        }
    }

    #[test]
    fn recovery_policy_defaults_are_sane() {
        let p = RecoveryPolicy::default();
        assert!(p.widen_factor > 1.0);
        assert!(p.cold_restart);
        assert!(p.interpolate);
        assert!(p.accepts(1.0));
        assert!(!p.accepts(f64::INFINITY));
        let n = RecoveryPolicy::none();
        assert!(n.accepts(f64::INFINITY));
        assert!(!n.interpolate);
    }

    #[test]
    fn normal_tracking_reports_no_recovery() {
        let (sils, truth, dims, camera) = jump_silhouettes(4);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        for f in &run.frames {
            assert_eq!(f.recovery, RecoveryAction::None);
        }
    }

    #[test]
    fn perturbed_first_pose_still_tracks() {
        // The "trained person" draws imperfectly: perturb the first-frame
        // pose and confirm tracking still locks on.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (sils, truth, dims, camera) = jump_silhouettes(4);
        let mut rng = StdRng::seed_from_u64(99);
        let sloppy = slj_motion::synth::perturb_pose(&truth[0], 0.03, 8.0, &mut rng);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, sloppy, &dims, &camera).unwrap();
        let last_err = run.frames[3].pose.error_against(&truth[3]);
        assert!(last_err.center_distance < 0.2, "lost track: {last_err}");
    }
}
