//! Frame-to-frame pose tracking with temporal seeding (the paper's
//! modification of \[5\] "for video sequences").
//!
//! The caller supplies the first frame's pose — the paper has "a trained
//! person … draw the stick figure for the human object in the first
//! frame" — and the tracker estimates every later frame by running the
//! GA with the previous frame's estimate as the seed of the initial
//! population.

use crate::engine::{evolve, GaConfig};
use crate::error::GaError;
use crate::pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig, DEFAULT_DELTA_ANGLES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use slj_imgproc::mask::Mask;
use slj_motion::model::STICK_COUNT;
use slj_motion::{BodyDims, Pose, PoseSeq};
use slj_video::Camera;

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// GA engine parameters used per frame.
    pub ga: GaConfig,
    /// Genetic-operator parameters.
    pub problem: PoseProblemConfig,
    /// Half-width of the centre rectangle around the silhouette
    /// centroid, metres.
    pub delta_center: f64,
    /// Per-stick half-range Δρ_l, degrees.
    pub delta_angles: [f64; STICK_COUNT],
    /// Master seed; frame k uses `seed + k` so runs are reproducible
    /// and frames are decorrelated.
    pub seed: u64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            ga: GaConfig {
                population_size: 100,
                max_generations: 40,
                patience: Some(10),
                ..GaConfig::default()
            },
            problem: PoseProblemConfig::default(),
            delta_center: 0.12,
            delta_angles: DEFAULT_DELTA_ANGLES,
            seed: 0x51_1A_B0,
        }
    }
}

impl TrackerConfig {
    /// A reduced-budget configuration for tests and quick demos
    /// (smaller population, coarser fitness sampling).
    pub fn fast() -> Self {
        TrackerConfig {
            ga: GaConfig {
                population_size: 40,
                max_generations: 15,
                patience: Some(6),
                ..GaConfig::default()
            },
            problem: PoseProblemConfig {
                stride: 4,
                ..PoseProblemConfig::default()
            },
            ..TrackerConfig::default()
        }
    }
}

/// The estimate for one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackResult {
    /// The estimated pose.
    pub pose: Pose,
    /// Its Eq. 3 fitness (lower = better); infinite when the frame was
    /// carried over.
    pub fitness: f64,
    /// Generation at which the best chromosome first appeared (0 = in
    /// the initial population).
    pub generation_of_best: usize,
    /// Generations the GA ran for this frame.
    pub generations_run: usize,
    /// First generation whose best was within 10% of the frame's final
    /// best fitness (0 = the seeded initial population was already
    /// there).
    pub generations_to_near_best: usize,
    /// Fitness evaluations spent on this frame.
    pub evaluations: usize,
    /// True when the silhouette was unusable (blank) and the previous
    /// pose was carried over unchanged.
    pub carried_over: bool,
    /// Best fitness after each GA generation for this frame (index 0 =
    /// the seeded initial population). Empty for frame 0 and carried
    /// frames.
    pub history: Vec<f64>,
}

/// The whole-clip tracking output.
#[derive(Debug, Clone)]
pub struct TrackingRun {
    /// Per-frame estimates, index-aligned with the input silhouettes.
    pub frames: Vec<TrackResult>,
}

impl TrackingRun {
    /// The estimated poses as a sequence (at the given fps).
    pub fn to_pose_seq(&self, fps: f64) -> PoseSeq {
        PoseSeq::new(self.frames.iter().map(|f| f.pose).collect(), fps)
    }

    /// Total fitness evaluations across all frames.
    pub fn total_evaluations(&self) -> usize {
        self.frames.iter().map(|f| f.evaluations).sum()
    }

    /// Mean generation-of-best over tracked (non-carried) frames after
    /// the first.
    pub fn mean_generation_of_best(&self) -> f64 {
        Self::mean_over(self.frames.iter().skip(1).filter(|f| !f.carried_over).map(|f| f.generation_of_best))
    }

    /// Mean generations-to-near-best over tracked frames after the first
    /// — the quantity behind the paper's "the shown best estimated model
    /// was generated at the second generation".
    pub fn mean_generations_to_near_best(&self) -> f64 {
        Self::mean_over(self.frames.iter().skip(1).filter(|f| !f.carried_over).map(|f| f.generations_to_near_best))
    }

    fn mean_over(iter: impl Iterator<Item = usize>) -> f64 {
        let gens: Vec<usize> = iter.collect();
        if gens.is_empty() {
            0.0
        } else {
            gens.iter().sum::<usize>() as f64 / gens.len() as f64
        }
    }
}

/// The temporal GA tracker.
#[derive(Debug, Clone, Default)]
pub struct TemporalTracker {
    config: TrackerConfig,
}

impl TemporalTracker {
    /// Creates a tracker with the given configuration.
    pub fn new(config: TrackerConfig) -> Self {
        TemporalTracker { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Tracks a clip: `silhouettes\[0\]` is described by `first_pose`
    /// (the hand-drawn model); every later frame is estimated by the
    /// temporally-seeded GA.
    ///
    /// Frames whose silhouette is unusable — blank, or so inconsistent
    /// with the seed pose that no valid chromosome exists — carry the
    /// previous estimate forward and are flagged `carried_over`.
    ///
    /// # Errors
    ///
    /// * [`GaError::NoFrames`] when `silhouettes` is empty.
    /// * [`GaError::BadConfig`] for invalid configuration.
    pub fn track(
        &self,
        silhouettes: &[Mask],
        first_pose: Pose,
        dims: &BodyDims,
        camera: &Camera,
    ) -> Result<TrackingRun, GaError> {
        if silhouettes.is_empty() {
            return Err(GaError::NoFrames);
        }
        let mut frames = Vec::with_capacity(silhouettes.len());

        // Frame 0: the provided (hand-drawn) pose, evaluated for the
        // record.
        let first_fitness = match crate::fitness::SilhouetteFitness::new(
            &silhouettes[0],
            dims,
            camera,
            self.config.problem.stride,
        ) {
            Ok(f) => f.evaluate(&first_pose, dims),
            Err(GaError::EmptySilhouette) => f64::INFINITY,
            Err(e) => return Err(e),
        };
        frames.push(TrackResult {
            pose: first_pose,
            fitness: first_fitness,
            generation_of_best: 0,
            generations_run: 0,
            generations_to_near_best: 0,
            evaluations: 1,
            carried_over: false,
            history: Vec::new(),
        });

        let mut previous = first_pose;
        for (k, sil) in silhouettes.iter().enumerate().skip(1) {
            let init = InitStrategy::Temporal {
                previous,
                delta_center: self.config.delta_center,
                delta_angles: self.config.delta_angles,
            };
            let problem = match PoseProblem::new(sil, dims, camera, init, self.config.problem) {
                Ok(p) => p,
                Err(GaError::EmptySilhouette) | Err(GaError::InitFailed { .. }) => {
                    frames.push(TrackResult {
                        pose: previous,
                        fitness: f64::INFINITY,
                        generation_of_best: 0,
                        generations_run: 0,
                        generations_to_near_best: 0,
                        evaluations: 0,
                        carried_over: true,
                        history: Vec::new(),
                    });
                    continue;
                }
                Err(e) => return Err(e),
            };
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(k as u64));
            let run = match evolve(&problem, &self.config.ga, &mut rng) {
                Ok(run) => run,
                Err(GaError::InitFailed { .. }) => {
                    // The silhouette is so inconsistent with the seed
                    // pose that no valid chromosome exists (e.g. a
                    // corrupted frame): degrade gracefully by carrying
                    // the previous estimate, as with a blank silhouette.
                    frames.push(TrackResult {
                        pose: previous,
                        fitness: f64::INFINITY,
                        generation_of_best: 0,
                        generations_run: 0,
                        generations_to_near_best: 0,
                        evaluations: 0,
                        carried_over: true,
                        history: Vec::new(),
                    });
                    continue;
                }
                Err(e) => return Err(e),
            };
            previous = run.best;
            frames.push(TrackResult {
                pose: run.best,
                fitness: run.best_fitness,
                generation_of_best: run.generation_of_best,
                generations_run: run.generations_run,
                generations_to_near_best: run.generations_to_near_best(0.10),
                evaluations: run.evaluations,
                carried_over: false,
                history: run.history,
            });
        }
        Ok(TrackingRun { frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::synth::{synthesize_jump, JumpConfig};
    use slj_video::render::render_silhouette;

    /// Ground-truth silhouettes: the first `take` frames of a
    /// realistically-paced 20-frame jump (slicing keeps per-frame joint
    /// velocities realistic while keeping tests cheap).
    fn jump_silhouettes(take: usize) -> (Vec<Mask>, Vec<slj_motion::Pose>, BodyDims, Camera) {
        let cfg = JumpConfig::default();
        let poses = synthesize_jump(&cfg);
        let camera = Camera::default();
        let truth: Vec<slj_motion::Pose> = poses.poses().iter().take(take).copied().collect();
        let sils = truth
            .iter()
            .map(|p| render_silhouette(p, &cfg.dims, &camera))
            .collect();
        (sils, truth, cfg.dims, camera)
    }

    #[test]
    fn tracks_a_short_jump_accurately() {
        let (sils, truth, dims, camera) = jump_silhouettes(6);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker
            .track(&sils, truth[0], &dims, &camera)
            .unwrap();
        assert_eq!(run.frames.len(), 6);
        for (k, (est, gt)) in run.frames.iter().zip(truth.iter()).enumerate() {
            let err = est.pose.error_against(gt);
            assert!(
                err.center_distance < 0.15,
                "frame {k}: centre off by {} m",
                err.center_distance
            );
            assert!(!est.carried_over);
            assert!(est.fitness < 1.2, "frame {k}: fitness {}", est.fitness);
        }
    }

    #[test]
    fn temporal_seeding_converges_in_few_generations() {
        let (sils, truth, dims, camera) = jump_silhouettes(4);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker
            .track(&sils, truth[0], &dims, &camera)
            .unwrap();
        // The paper's headline observation: with temporal seeding a
        // near-best model appears within the first few generations.
        let mean = run.mean_generations_to_near_best();
        assert!(mean <= 5.0, "mean generations to near-best {mean}");
    }

    #[test]
    fn empty_silhouette_carries_previous_pose() {
        let (mut sils, truth, dims, camera) = jump_silhouettes(4);
        sils[2] = Mask::new(camera.width, camera.height);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker
            .track(&sils, truth[0], &dims, &camera)
            .unwrap();
        assert!(run.frames[2].carried_over);
        assert!(run.frames[2].fitness.is_infinite());
        assert_eq!(
            run.frames[2].pose.to_genes(),
            run.frames[1].pose.to_genes()
        );
        // Tracking resumes afterwards.
        assert!(!run.frames[3].carried_over);
    }

    #[test]
    fn no_frames_is_an_error() {
        let dims = BodyDims::default();
        let camera = Camera::default();
        let tracker = TemporalTracker::default();
        assert!(matches!(
            tracker.track(&[], Pose::standing(&dims), &dims, &camera),
            Err(GaError::NoFrames)
        ));
    }

    #[test]
    fn tracking_is_deterministic() {
        let (sils, truth, dims, camera) = jump_silhouettes(3);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let a = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        let b = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        for (x, y) in a.frames.iter().zip(b.frames.iter()) {
            assert_eq!(x.pose.to_genes(), y.pose.to_genes());
            assert_eq!(x.fitness, y.fitness);
        }
    }

    #[test]
    fn to_pose_seq_and_totals() {
        let (sils, truth, dims, camera) = jump_silhouettes(3);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, truth[0], &dims, &camera).unwrap();
        let seq = run.to_pose_seq(10.0);
        assert_eq!(seq.len(), 3);
        assert!(run.total_evaluations() > 0);
    }

    #[test]
    fn perturbed_first_pose_still_tracks() {
        // The "trained person" draws imperfectly: perturb the first-frame
        // pose and confirm tracking still locks on.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (sils, truth, dims, camera) = jump_silhouettes(4);
        let mut rng = StdRng::seed_from_u64(99);
        let sloppy = slj_motion::synth::perturb_pose(&truth[0], 0.03, 8.0, &mut rng);
        let tracker = TemporalTracker::new(TrackerConfig::fast());
        let run = tracker.track(&sils, sloppy, &dims, &camera).unwrap();
        let last_err = run.frames[3].pose.error_against(&truth[3]);
        assert!(
            last_err.center_distance < 0.2,
            "lost track: {last_err}"
        );
    }
}
