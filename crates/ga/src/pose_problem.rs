//! The pose-estimation GA problem: chromosome, crossover groups,
//! mutation, validity and initial-population strategies.
//!
//! The chromosome is the paper's `(x0, y0, ρ0, …, ρ7)` — represented
//! directly as a [`Pose`]. The two initialisation strategies are the
//! crux of the reproduction:
//!
//! * [`InitStrategy::FullRange`] — Shoji et al. \[5\]: the centre anywhere
//!   over the silhouette, every angle uniform in `[0°, 360°)`. Needs
//!   ~200 generations.
//! * [`InitStrategy::Temporal`] — the paper's contribution: the centre
//!   near the silhouette's geometric centre (`(x_c ± Δx, y_c ± Δy)`),
//!   each angle within `ρ_{l,k−1} ± Δρ_l` of the previous frame, with
//!   `Δρ_l` "determined by the nature of connected joints" (here: from
//!   the measured per-stick angular velocity of a real jump).

use crate::engine::Problem;
use crate::error::GaError;
use crate::fitness::{BatchScratch, Eq3Kernel, SilhouetteFitness};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use slj_imgproc::geometry::Point2;
use slj_imgproc::mask::Mask;
use slj_imgproc::moments;
use slj_motion::model::{GENE_COUNT, GENE_GROUPS, STICK_COUNT};
use slj_motion::{Angle, BodyDims, Pose};
use slj_video::Camera;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Per-stick half-range Δρ (degrees) for temporal initialisation,
/// paper order ρ0..ρ7. Derived from the maximum frame-to-frame angular
/// velocity of the synthesised jump at 10 fps (trunk ~20°/frame, arms up
/// to ~80°/frame during the swing), with ~25% headroom.
pub const DEFAULT_DELTA_ANGLES: [f64; STICK_COUNT] =
    [30.0, 20.0, 100.0, 45.0, 20.0, 85.0, 75.0, 35.0];

/// How the initial population is drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitStrategy {
    /// Uniform over the silhouette bounding box and all angles — the
    /// non-temporal baseline of \[5\].
    FullRange,
    /// Seeded from the previous frame's pose (the paper's method).
    ///
    /// A constant-velocity extrapolation seed was evaluated during
    /// development and *rejected*: at ~10 fps jump speeds the velocity
    /// estimate is noisy enough that motion-predicted seeds compound
    /// drift (see EXPERIMENTS.md, Fig. 7 notes).
    Temporal {
        /// The previous frame's estimated pose.
        previous: Pose,
        /// Half-width Δx = Δy of the centre rectangle around the
        /// silhouette centroid, metres.
        delta_center: f64,
        /// Per-stick half-range Δρ_l, degrees.
        delta_angles: [f64; STICK_COUNT],
    },
}

/// Genetic-operator parameters (the paper's Section 3 values as
/// defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoseProblemConfig {
    /// Per-group crossover probability ("we can set the crossover rate
    /// to 0.2").
    pub crossover_rate: f64,
    /// Per-group mutation probability ("mutation can be applied to each
    /// group with a probability 0.01").
    pub mutation_rate: f64,
    /// Mutation jitter half-range for angle genes, degrees.
    pub mutation_angle_step: f64,
    /// Mutation jitter half-range for centre genes, metres.
    pub mutation_center_step: f64,
    /// Eq. 3 subsampling stride (1 = every silhouette pixel).
    pub stride: usize,
    /// Fraction of per-stick axis samples that must fall inside the
    /// silhouette for a chromosome to be valid.
    pub validity_fraction: f64,
    /// Number of axis samples per stick for the validity test.
    pub validity_samples: usize,
    /// Use the exact AABB branch-and-bound over the 8 sticks when
    /// evaluating Eq. 3 (see `fitness` module docs). The pruned result
    /// is bit-identical to the exhaustive scan; disabling it exists
    /// only so the perf baseline can measure the unoptimised path.
    pub eq3_pruning: bool,
    /// Memoise fitness on the exact chromosome bits. The elitist GA
    /// re-scores every surviving elite each generation, and low
    /// crossover/mutation rates mean many offspring are verbatim copies
    /// of a parent — the memo returns their cached cost instead of
    /// re-walking the silhouette. Evaluation is pure, so a hit is
    /// always exactly the value a fresh evaluation would produce.
    pub fitness_memo: bool,
    /// Which Eq. 3 kernel to use (bit-identical results either way):
    /// `Lanes` is the chunked SoA kernel with batched population
    /// evaluation; `Scalar` keeps the genome-at-a-time warm-started
    /// scan alive as the perf harness's reference. Only meaningful with
    /// `eq3_pruning` — the unpruned baseline is always scalar.
    /// (Deserialises to the default when absent, so configs serialised
    /// before this field existed still load.)
    pub eq3_kernel: Eq3Kernel,
}

impl Default for PoseProblemConfig {
    fn default() -> Self {
        PoseProblemConfig {
            crossover_rate: 0.2,
            mutation_rate: 0.01,
            mutation_angle_step: 20.0,
            mutation_center_step: 0.06,
            stride: 2,
            validity_fraction: 0.65,
            validity_samples: 5,
            eq3_pruning: true,
            fitness_memo: true,
            eq3_kernel: Eq3Kernel::default(),
        }
    }
}

/// A concurrent fitness memo keyed on the exact bit pattern of the
/// chromosome's genes. Purely an evaluation cache: since Eq. 3 is a
/// pure function of the genes, a hit returns exactly what recomputation
/// would, on any thread, in any order — parallelism and memoisation
/// both preserve bit-identical GA trajectories.
#[derive(Default)]
pub struct FitnessMemo {
    map: Mutex<HashMap<[u64; GENE_COUNT], f64, BuildChromoHasher>>,
    validity: Mutex<HashMap<[u64; GENE_COUNT], bool, BuildChromoHasher>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// Multiply-xor hasher for chromosome keys (12 `u64` gene-bit words).
/// The default SipHash is keyed against adversarial collisions, which a
/// memo over trusted keys does not need; this folds each word in a few
/// cycles instead. Deterministic, and the maps are only ever probed
/// (`get`/`insert`/`len`), so the table order can never leak into
/// results.
#[derive(Clone, Copy, Default)]
struct ChromoHasher(u64);

impl std::hash::Hasher for ChromoHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, word: u64) {
        // fxhash-style fold: rotate, mix, multiply by an odd constant
        // derived from pi. Good avalanche for full-width float bits.
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type BuildChromoHasher = std::hash::BuildHasherDefault<ChromoHasher>;

impl FitnessMemo {
    fn key(genome: &Pose) -> [u64; GENE_COUNT] {
        genome.to_genes().map(f64::to_bits)
    }

    fn get(&self, key: &[u64; GENE_COUNT]) -> Option<f64> {
        let found = self.map.lock().expect("memo poisoned").get(key).copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: [u64; GENE_COUNT], fitness: f64) {
        self.map.lock().expect("memo poisoned").insert(key, fitness);
    }

    fn get_validity(&self, key: &[u64; GENE_COUNT]) -> Option<bool> {
        self.validity
            .lock()
            .expect("memo poisoned")
            .get(key)
            .copied()
    }

    fn insert_validity(&self, key: [u64; GENE_COUNT], valid: bool) {
        self.validity
            .lock()
            .expect("memo poisoned")
            .insert(key, valid);
    }

    /// `(hits, misses)` so far — perf diagnostics only.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct chromosomes cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo poisoned").len()
    }

    /// Empties both memo tables — keeping their (large) hash-table
    /// storage — and zeroes the hit/miss counters. Called when a memo
    /// is recycled for a different silhouette: stale values can never
    /// leak because every key is gone.
    pub fn clear(&self) {
        self.map.lock().expect("memo poisoned").clear();
        self.validity.lock().expect("memo poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Whether the memo has cached anything yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Clone for FitnessMemo {
    fn clone(&self) -> Self {
        FitnessMemo {
            map: Mutex::new(self.map.lock().expect("memo poisoned").clone()),
            validity: Mutex::new(self.validity.lock().expect("memo poisoned").clone()),
            hits: AtomicUsize::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicUsize::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for FitnessMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("FitnessMemo")
            .field("entries", &self.len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

/// Per-call scratch for the batched evaluation path: the memo-miss
/// work list, the deduplicated poses, their values, and the evaluator's
/// own [`BatchScratch`]. Pooled on the problem so steady-state batch
/// evaluation performs no heap allocation (`tests/zero_alloc.rs`).
#[derive(Debug, Default)]
struct EvalScratch {
    /// `(chromosome bits, genome index)` for every genome the memo did
    /// not already answer. Sorted to group exact duplicates.
    pending: Vec<([u64; GENE_COUNT], u32)>,
    /// First occurrence of each distinct pending chromosome.
    poses: Vec<Pose>,
    /// One fitness value per entry of `poses`.
    values: Vec<f64>,
    /// Stick-set and prune-hint storage for the lane kernel.
    fit: BatchScratch,
}

/// A lock-guarded stack of [`EvalScratch`] buffers: each concurrent
/// batch evaluation pops one (or starts fresh) and pushes it back
/// warmed. Purely a cache — cloning a problem starts an empty pool.
#[derive(Debug, Default)]
struct ScratchPool(Mutex<Vec<EvalScratch>>);

impl ScratchPool {
    fn take(&self) -> EvalScratch {
        self.0
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn put(&self, scratch: EvalScratch) {
        self.0.lock().expect("scratch pool poisoned").push(scratch);
    }
}

impl Clone for ScratchPool {
    fn clone(&self) -> Self {
        ScratchPool::default()
    }
}

/// A problem's recyclable heavy state: the fitness/validity memo maps
/// (hash tables that grow to thousands of entries over a GA run) and
/// the batched-evaluation scratch pool. Reclaim it from a finished
/// problem with [`PoseProblem::reclaim`] and thread it into the next
/// frame's problem with [`PoseProblem::with_fitness_scratch`]; the memo
/// is cleared (not dropped) on adoption, so steady-state tracking
/// re-uses the table storage without any cross-silhouette leakage.
#[derive(Debug, Default)]
pub struct ProblemScratch {
    memo: FitnessMemo,
    pool: ScratchPool,
}

/// The pose-estimation problem for one silhouette.
#[derive(Debug, Clone)]
pub struct PoseProblem {
    /// Shared Eq. 3 evaluator. `Arc` so the tracker's recovery ladder
    /// can rebuild the problem with a different init strategy without
    /// re-deriving the silhouette's point list and distance field.
    fitness: Arc<SilhouetteFitness>,
    /// Per-stick thickness in pixels, paper order.
    thickness_px: [f64; STICK_COUNT],
    dims: BodyDims,
    camera: Camera,
    init: InitStrategy,
    config: PoseProblemConfig,
    memo: FitnessMemo,
    /// Pooled scratch for batched lane evaluation — a pure cache, so
    /// clones start with a fresh (empty) pool.
    scratch: ScratchPool,
    /// Silhouette centroid in world coordinates.
    centroid_world: Point2,
    /// Silhouette bounding box in world coordinates
    /// `(x_min, y_min, x_max, y_max)`.
    bbox_world: (f64, f64, f64, f64),
}

impl PoseProblem {
    /// Prepares the problem for a silhouette.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::EmptySilhouette`] for a blank mask and
    /// [`GaError::BadConfig`] for out-of-range operator parameters.
    pub fn new(
        silhouette: &Mask,
        dims: &BodyDims,
        camera: &Camera,
        init: InitStrategy,
        config: PoseProblemConfig,
    ) -> Result<Self, GaError> {
        let fitness = Arc::new(SilhouetteFitness::new(
            silhouette,
            dims,
            camera,
            config.stride,
        )?);
        PoseProblem::with_fitness(silhouette, fitness, dims, camera, init, config)
    }

    /// Like [`PoseProblem::new`] but reusing an already-prepared
    /// evaluator for the same silhouette. This is the amortised path:
    /// the tracker's recovery ladder tries up to three init strategies
    /// per frame, and the Eq. 3 point list / distance field are
    /// identical across all of them.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::EmptySilhouette`] for a blank mask and
    /// [`GaError::BadConfig`] for out-of-range operator parameters.
    pub fn with_fitness(
        silhouette: &Mask,
        fitness: Arc<SilhouetteFitness>,
        dims: &BodyDims,
        camera: &Camera,
        init: InitStrategy,
        config: PoseProblemConfig,
    ) -> Result<Self, GaError> {
        Self::with_fitness_scratch(
            silhouette,
            fitness,
            dims,
            camera,
            init,
            config,
            ProblemScratch::default(),
        )
    }

    /// Like [`PoseProblem::with_fitness`] but adopting recycled memo
    /// tables and scratch buffers from a previous problem (see
    /// [`ProblemScratch`]). The memo is cleared on entry, so results
    /// are identical to a fresh problem; only allocations differ.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::EmptySilhouette`] for a blank mask and
    /// [`GaError::BadConfig`] for out-of-range operator parameters.
    pub fn with_fitness_scratch(
        silhouette: &Mask,
        fitness: Arc<SilhouetteFitness>,
        dims: &BodyDims,
        camera: &Camera,
        init: InitStrategy,
        config: PoseProblemConfig,
        scratch: ProblemScratch,
    ) -> Result<Self, GaError> {
        if !(0.0..=1.0).contains(&config.crossover_rate) {
            return Err(GaError::BadConfig {
                what: "crossover_rate must be in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&config.mutation_rate) {
            return Err(GaError::BadConfig {
                what: "mutation_rate must be in [0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&config.validity_fraction) {
            return Err(GaError::BadConfig {
                what: "validity_fraction must be in [0, 1]",
            });
        }
        if config.validity_samples == 0 {
            return Err(GaError::BadConfig {
                what: "validity_samples must be positive",
            });
        }
        let centroid_px = moments::centroid(silhouette).ok_or(GaError::EmptySilhouette)?;
        let bb = moments::bounding_box(silhouette).ok_or(GaError::EmptySilhouette)?;
        let tl = camera.image_to_world(Point2::new(bb.x_min as f64, bb.y_max as f64));
        let br = camera.image_to_world(Point2::new(bb.x_max as f64, bb.y_min as f64));
        let mut thickness_px = [0.0; STICK_COUNT];
        for s in slj_motion::model::ALL_STICKS {
            thickness_px[s.index()] = camera.length_to_pixels(dims.thickness(s)).max(1.0);
        }
        scratch.memo.clear();
        Ok(PoseProblem {
            fitness,
            thickness_px,
            dims: dims.clone(),
            camera: *camera,
            init,
            config,
            memo: scratch.memo,
            scratch: scratch.pool,
            centroid_world: camera.image_to_world(centroid_px),
            bbox_world: (tl.x, tl.y, br.x, br.y),
        })
    }

    /// Dismantles the problem into its recyclable heavy state for the
    /// next frame's [`PoseProblem::with_fitness_scratch`]. Read any
    /// memo statistics you need (e.g. `memo().len()`) *before* calling
    /// this.
    pub fn reclaim(self) -> ProblemScratch {
        ProblemScratch {
            memo: self.memo,
            pool: self.scratch,
        }
    }

    /// The silhouette centroid, world metres.
    pub fn centroid(&self) -> Point2 {
        self.centroid_world
    }

    /// The prepared Eq. 3 evaluator.
    pub fn fitness_fn(&self) -> &SilhouetteFitness {
        &self.fitness
    }

    /// A shareable handle to the Eq. 3 evaluator, for building further
    /// problems over the same silhouette without re-preparation.
    pub fn shared_fitness(&self) -> Arc<SilhouetteFitness> {
        Arc::clone(&self.fitness)
    }

    /// The fitness memo (hit/miss diagnostics).
    pub fn memo(&self) -> &FitnessMemo {
        &self.memo
    }

    /// The operator configuration.
    pub fn config(&self) -> &PoseProblemConfig {
        &self.config
    }

    /// Evaluates Eq. 3 (plus the outside-silhouette penalty) for a
    /// chromosome, honouring the configured pruning flag but bypassing
    /// the memo.
    fn evaluate_genome(&self, genome: &Pose) -> f64 {
        if !self.config.eq3_pruning {
            // The unpruned baseline is always the scalar reference scan.
            self.fitness.evaluate_unpruned(genome, &self.dims)
        } else if self.config.eq3_kernel == Eq3Kernel::Lanes {
            self.fitness.evaluate_lanes(genome, &self.dims)
        } else {
            self.fitness.evaluate(genome, &self.dims)
        }
    }

    /// Fraction of axis samples of `pose`'s sticks that lie inside (or
    /// within one stick-thickness of) the silhouette.
    ///
    /// Uses the evaluator's chamfer distance field: an axis sample
    /// counts as "inside" when it lies within the stick's own thickness
    /// of a silhouette pixel — tolerant of the mask erosion and holes a
    /// real pipeline produces.
    pub fn inside_fraction(&self, pose: &Pose) -> f64 {
        let segs = pose.segments(&self.dims);
        let n = self.config.validity_samples;
        let df = self.fitness.distance_field();
        let mut inside = 0usize;
        let mut total = 0usize;
        for (stick, seg) in segs.iter() {
            let s_px = self.camera.segment_to_image(seg);
            let tol = self.thickness_px[stick.index()];
            for p in s_px.sample_iter(n) {
                total += 1;
                let (x, y) = (p.x.round(), p.y.round());
                if x >= 0.0
                    && y >= 0.0
                    && (x as usize) < df.width()
                    && (y as usize) < df.height()
                    && df.distance(x as usize, y as usize) <= tol
                {
                    inside += 1;
                }
            }
        }
        inside as f64 / total.max(1) as f64
    }
}

impl Problem for PoseProblem {
    type Genome = Pose;

    fn fitness(&self, genome: &Pose) -> f64 {
        if !self.config.fitness_memo {
            return self.evaluate_genome(genome);
        }
        let key = FitnessMemo::key(genome);
        if let Some(cached) = self.memo.get(&key) {
            return cached;
        }
        let value = self.evaluate_genome(genome);
        self.memo.insert(key, value);
        value
    }

    /// Batched evaluation: memo lookups first, then the distinct
    /// missing chromosomes are projected and walked against the
    /// prepared frame in one chunk-outer pass (`Eq3Kernel::Lanes`
    /// only — the scalar kernel and the unpruned baseline keep the
    /// genome-at-a-time reference path). Each distinct chromosome is
    /// evaluated and memoised exactly once however often it repeats in
    /// the batch, so `memo.len()` — the observability layer's
    /// `unique_genomes` — counts exactly what the scalar path counts.
    /// Values are bit-identical to per-genome `fitness` calls at any
    /// batch split (property-tested).
    fn fitness_batch(&self, genomes: &[Pose], out: &mut [f64]) {
        if self.config.eq3_kernel != Eq3Kernel::Lanes || !self.config.eq3_pruning {
            for (genome, slot) in genomes.iter().zip(out.iter_mut()) {
                *slot = self.fitness(genome);
            }
            return;
        }
        let mut scratch = self.scratch.take();
        scratch.pending.clear();
        for (i, genome) in genomes.iter().enumerate() {
            let key = FitnessMemo::key(genome);
            if self.config.fitness_memo {
                if let Some(cached) = self.memo.get(&key) {
                    out[i] = cached;
                    continue;
                }
            }
            scratch.pending.push((key, i as u32));
        }
        if scratch.pending.is_empty() {
            self.scratch.put(scratch);
            return;
        }
        // Group exact duplicates; ties keep the lowest genome index
        // first, so `poses` holds each distinct chromosome's first
        // occurrence (any occurrence has identical bits anyway).
        scratch.pending.sort_unstable();
        scratch.poses.clear();
        let mut previous: Option<&[u64; GENE_COUNT]> = None;
        for (key, idx) in &scratch.pending {
            if previous != Some(key) {
                scratch.poses.push(genomes[*idx as usize]);
                previous = Some(key);
            }
        }
        scratch.values.clear();
        scratch.values.resize(scratch.poses.len(), 0.0);
        self.fitness.evaluate_batch(
            &scratch.poses,
            &self.dims,
            &mut scratch.values,
            &mut scratch.fit,
        );
        // Scatter each group's value to every duplicate and memoise the
        // chromosome once.
        let mut unique = 0usize;
        let mut start = 0usize;
        while start < scratch.pending.len() {
            let key = scratch.pending[start].0;
            let value = scratch.values[unique];
            let mut end = start;
            while end < scratch.pending.len() && scratch.pending[end].0 == key {
                out[scratch.pending[end].1 as usize] = value;
                end += 1;
            }
            if self.config.fitness_memo {
                self.memo.insert(key, value);
            }
            unique += 1;
            start = end;
        }
        self.scratch.put(scratch);
    }

    fn random_genome(&self, rng: &mut StdRng) -> Pose {
        match &self.init {
            InitStrategy::FullRange => {
                let (x0, y0, x1, y1) = self.bbox_world;
                let center = Point2::new(
                    if x1 > x0 { rng.gen_range(x0..=x1) } else { x0 },
                    if y1 > y0 { rng.gen_range(y0..=y1) } else { y0 },
                );
                let mut angles = [Angle::UP; STICK_COUNT];
                for a in angles.iter_mut() {
                    *a = Angle::from_degrees(rng.gen_range(0.0..360.0));
                }
                Pose::new(center, angles)
            }
            InitStrategy::Temporal {
                previous,
                delta_center,
                delta_angles,
            } => {
                let dc = *delta_center;
                let base = previous;
                // The paper samples the centre around the silhouette's
                // geometric centre; when segmentation leaves ghost blobs
                // the centroid can sit in empty space, so half the
                // population is anchored on the base pose's centre
                // instead — whichever anchor matches the real body wins
                // through fitness.
                let anchor = if rng.gen_bool(0.5) {
                    self.centroid_world
                } else {
                    base.center
                };
                let center = Point2::new(
                    anchor.x + rng.gen_range(-dc..=dc),
                    anchor.y + rng.gen_range(-dc..=dc),
                );
                let mut angles = base.angles;
                for (l, a) in angles.iter_mut().enumerate() {
                    let d = delta_angles[l];
                    *a = *a + rng.gen_range(-d..=d);
                }
                Pose::new(center, angles)
            }
        }
    }

    fn crossover(&self, a: &Pose, b: &Pose, rng: &mut StdRng) -> (Pose, Pose) {
        let mut g1 = a.to_genes();
        let mut g2 = b.to_genes();
        for group in GENE_GROUPS {
            if rng.gen_bool(self.config.crossover_rate) {
                for &i in group {
                    g1.swap_with_slice_at(&mut g2, i);
                }
            }
        }
        (
            Pose::from_genes(&g1).expect("gene swap preserves validity"),
            Pose::from_genes(&g2).expect("gene swap preserves validity"),
        )
    }

    fn mutate(&self, genome: &mut Pose, rng: &mut StdRng) {
        let mut genes = genome.to_genes();
        for group in GENE_GROUPS {
            if rng.gen_bool(self.config.mutation_rate) {
                for &i in group {
                    if i < 2 {
                        let s = self.config.mutation_center_step;
                        genes[i] += rng.gen_range(-s..=s);
                    } else {
                        let s = self.config.mutation_angle_step;
                        genes[i] += rng.gen_range(-s..=s);
                    }
                }
            }
        }
        *genome = Pose::from_genes(&genes).expect("mutation keeps genes finite");
    }

    fn is_valid(&self, genome: &Pose) -> bool {
        if !self.config.fitness_memo {
            return self.inside_fraction(genome) >= self.config.validity_fraction;
        }
        // Offspring of a converged population repeat chromosomes
        // bit-for-bit (typically >70% of validity checks in a tracking
        // run), so the boolean is memoised alongside the fitness value.
        let key = FitnessMemo::key(genome);
        if let Some(cached) = self.memo.get_validity(&key) {
            return cached;
        }
        let valid = self.inside_fraction(genome) >= self.config.validity_fraction;
        self.memo.insert_validity(key, valid);
        valid
    }

    fn seeds(&self) -> Vec<Pose> {
        match &self.init {
            InitStrategy::FullRange => Vec::new(),
            InitStrategy::Temporal { previous, .. } => {
                // The previous pose itself, and the previous pose
                // recentred on the silhouette's geometric centre (the
                // paper's explicit first move).
                vec![*previous, previous.with_center(self.centroid_world)]
            }
        }
    }
}

/// Helper: swap a single index between two gene arrays. Extension trait
/// keeps the call site readable inside `crossover`.
trait SwapAt {
    fn swap_with_slice_at(&mut self, other: &mut Self, index: usize);
}

impl SwapAt for [f64; GENE_COUNT] {
    fn swap_with_slice_at(&mut self, other: &mut Self, index: usize) {
        std::mem::swap(&mut self[index], &mut other[index]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use slj_video::render::render_silhouette;

    fn setup() -> (Mask, BodyDims, Camera, Pose) {
        let dims = BodyDims::default();
        let camera = Camera::default();
        let mut pose = Pose::standing(&dims);
        pose.center.x = 0.6;
        let sil = render_silhouette(&pose, &dims, &camera);
        (sil, dims, camera, pose)
    }

    fn temporal(previous: Pose) -> InitStrategy {
        InitStrategy::Temporal {
            previous,
            delta_center: 0.1,
            delta_angles: DEFAULT_DELTA_ANGLES,
        }
    }

    #[test]
    fn true_pose_is_valid() {
        let (sil, dims, camera, pose) = setup();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            temporal(pose),
            PoseProblemConfig::default(),
        )
        .unwrap();
        assert!(p.is_valid(&pose));
        assert!(p.inside_fraction(&pose) > 0.95);
    }

    #[test]
    fn displaced_pose_is_invalid() {
        let (sil, dims, camera, pose) = setup();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            temporal(pose),
            PoseProblemConfig::default(),
        )
        .unwrap();
        let mut far = pose;
        far.center.x += 0.8;
        assert!(!p.is_valid(&far));
        assert!(p.inside_fraction(&far) < 0.3);
    }

    #[test]
    fn centroid_is_near_trunk_center() {
        let (sil, dims, camera, pose) = setup();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            temporal(pose),
            PoseProblemConfig::default(),
        )
        .unwrap();
        assert!(p.centroid().distance(pose.center) < 0.25);
    }

    #[test]
    fn temporal_samples_stay_in_deltas() {
        let (sil, dims, camera, pose) = setup();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            temporal(pose),
            PoseProblemConfig::default(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let g = p.random_genome(&mut rng);
            // Centre is within the delta box of one of the two anchors
            // (silhouette centroid or previous centre).
            let near = |a: slj_imgproc::geometry::Point2| {
                (g.center.x - a.x).abs() <= 0.1 + 1e-9 && (g.center.y - a.y).abs() <= 0.1 + 1e-9
            };
            assert!(near(p.centroid()) || near(pose.center));
            for (l, ((ga, pa), limit)) in g
                .angles
                .iter()
                .zip(&pose.angles)
                .zip(DEFAULT_DELTA_ANGLES)
                .enumerate()
            {
                let d = ga.distance(*pa);
                assert!(d <= limit + 1e-9, "stick {l} moved {d}° (limit {limit})");
            }
        }
    }

    #[test]
    fn full_range_samples_cover_bbox() {
        let (sil, dims, camera, pose) = setup();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            InitStrategy::FullRange,
            PoseProblemConfig::default(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut spread_x = (f64::INFINITY, f64::NEG_INFINITY);
        for _ in 0..200 {
            let g = p.random_genome(&mut rng);
            spread_x.0 = spread_x.0.min(g.center.x);
            spread_x.1 = spread_x.1.max(g.center.x);
        }
        // The standing silhouette bbox is narrow; samples span it.
        assert!(spread_x.1 - spread_x.0 > 0.1);
        let _ = pose;
    }

    #[test]
    fn crossover_swaps_whole_groups() {
        let (sil, dims, camera, pose) = setup();
        let cfg = PoseProblemConfig {
            crossover_rate: 1.0, // always swap every group
            ..PoseProblemConfig::default()
        };
        let p = PoseProblem::new(&sil, &dims, &camera, temporal(pose), cfg).unwrap();
        let a = pose;
        let mut b = pose;
        b.center.x += 0.05;
        for l in 0..STICK_COUNT {
            b.angles[l] = b.angles[l] + 10.0;
        }
        let mut rng = StdRng::seed_from_u64(3);
        let (c1, c2) = p.crossover(&a, &b, &mut rng);
        // With rate 1 every group swaps: children are the parents
        // exchanged.
        assert_eq!(c1.to_genes(), b.to_genes());
        assert_eq!(c2.to_genes(), a.to_genes());
    }

    #[test]
    fn crossover_rate_zero_is_identity() {
        let (sil, dims, camera, pose) = setup();
        let cfg = PoseProblemConfig {
            crossover_rate: 0.0,
            ..PoseProblemConfig::default()
        };
        let p = PoseProblem::new(&sil, &dims, &camera, temporal(pose), cfg).unwrap();
        let mut b = pose;
        b.center.y += 0.1;
        let mut rng = StdRng::seed_from_u64(4);
        let (c1, c2) = p.crossover(&pose, &b, &mut rng);
        assert_eq!(c1.to_genes(), pose.to_genes());
        assert_eq!(c2.to_genes(), b.to_genes());
    }

    #[test]
    fn crossover_preserves_gene_multiset_per_group() {
        let (sil, dims, camera, pose) = setup();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            temporal(pose),
            PoseProblemConfig::default(),
        )
        .unwrap();
        let mut b = pose;
        b.center.x += 0.07;
        for l in 0..STICK_COUNT {
            b.angles[l] = b.angles[l] + (l as f64 + 1.0) * 7.0;
        }
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let (c1, c2) = p.crossover(&pose, &b, &mut rng);
            let (g1, g2) = (c1.to_genes(), c2.to_genes());
            let (pa, pb) = (pose.to_genes(), b.to_genes());
            for group in GENE_GROUPS {
                // Each group in the children comes wholesale from one
                // parent.
                let from_a1 = group.iter().all(|&i| g1[i] == pa[i]);
                let from_b1 = group.iter().all(|&i| g1[i] == pb[i]);
                assert!(from_a1 || from_b1, "group {group:?} mixed in child 1");
                let from_a2 = group.iter().all(|&i| g2[i] == pa[i]);
                let from_b2 = group.iter().all(|&i| g2[i] == pb[i]);
                assert!(from_a2 || from_b2, "group {group:?} mixed in child 2");
                // And the two children together hold both parents' genes.
                assert!(
                    (from_a1 && from_b2) || (from_b1 && from_a2),
                    "group {group:?} lost"
                );
            }
        }
    }

    #[test]
    fn mutation_rate_zero_is_identity() {
        let (sil, dims, camera, pose) = setup();
        let cfg = PoseProblemConfig {
            mutation_rate: 0.0,
            ..PoseProblemConfig::default()
        };
        let p = PoseProblem::new(&sil, &dims, &camera, temporal(pose), cfg).unwrap();
        let mut g = pose;
        let mut rng = StdRng::seed_from_u64(6);
        p.mutate(&mut g, &mut rng);
        assert_eq!(g.to_genes(), pose.to_genes());
    }

    #[test]
    fn mutation_jitter_is_bounded() {
        let (sil, dims, camera, pose) = setup();
        let cfg = PoseProblemConfig {
            mutation_rate: 1.0,
            mutation_angle_step: 5.0,
            mutation_center_step: 0.02,
            ..PoseProblemConfig::default()
        };
        let p = PoseProblem::new(&sil, &dims, &camera, temporal(pose), cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut g = pose;
            p.mutate(&mut g, &mut rng);
            assert!((g.center.x - pose.center.x).abs() <= 0.02 + 1e-9);
            let e = g.error_against(&pose);
            assert!(e.max_angle_error() <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn seeds_include_previous_pose() {
        let (sil, dims, camera, pose) = setup();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            temporal(pose),
            PoseProblemConfig::default(),
        )
        .unwrap();
        let seeds = p.seeds();
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0].to_genes(), pose.to_genes());
        assert!(seeds[1].center.distance(p.centroid()) < 1e-9);
        // Full-range has no seeds.
        let p2 = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            InitStrategy::FullRange,
            PoseProblemConfig::default(),
        )
        .unwrap();
        assert!(p2.seeds().is_empty());
    }

    #[test]
    fn bad_configs_rejected() {
        let (sil, dims, camera, pose) = setup();
        for cfg in [
            PoseProblemConfig {
                crossover_rate: 1.5,
                ..PoseProblemConfig::default()
            },
            PoseProblemConfig {
                mutation_rate: -0.1,
                ..PoseProblemConfig::default()
            },
            PoseProblemConfig {
                validity_fraction: 2.0,
                ..PoseProblemConfig::default()
            },
            PoseProblemConfig {
                validity_samples: 0,
                ..PoseProblemConfig::default()
            },
        ] {
            assert!(matches!(
                PoseProblem::new(&sil, &dims, &camera, temporal(pose), cfg),
                Err(GaError::BadConfig { .. })
            ));
        }
    }

    #[test]
    fn memo_caches_exact_values() {
        let (sil, dims, camera, pose) = setup();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            temporal(pose),
            PoseProblemConfig::default(),
        )
        .unwrap();
        let fresh = p.fitness_fn().evaluate(&pose, &dims);
        let first = p.fitness(&pose);
        let second = p.fitness(&pose);
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        let (hits, misses) = p.memo().stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(p.memo().len(), 1);
    }

    #[test]
    fn memo_distinguishes_mutated_chromosomes() {
        let (sil, dims, camera, pose) = setup();
        let cfg = PoseProblemConfig {
            mutation_rate: 1.0,
            ..PoseProblemConfig::default()
        };
        let p = PoseProblem::new(&sil, &dims, &camera, temporal(pose), cfg).unwrap();
        let before = p.fitness(&pose);
        let mut mutated = pose;
        let mut rng = StdRng::seed_from_u64(11);
        p.mutate(&mut mutated, &mut rng);
        assert_ne!(mutated.to_genes(), pose.to_genes());
        // The mutated chromosome is a distinct key: its cached value is
        // exactly a fresh evaluation, not the parent's stale one.
        let after = p.fitness(&mutated);
        assert_eq!(after, p.fitness_fn().evaluate(&mutated, &dims));
        assert_eq!(p.fitness(&pose), before);
        assert_eq!(p.memo().len(), 2);
    }

    #[test]
    fn memo_disabled_never_caches() {
        let (sil, dims, camera, pose) = setup();
        let cfg = PoseProblemConfig {
            fitness_memo: false,
            ..PoseProblemConfig::default()
        };
        let p = PoseProblem::new(&sil, &dims, &camera, temporal(pose), cfg).unwrap();
        let a = p.fitness(&pose);
        let b = p.fitness(&pose);
        assert_eq!(a, b);
        assert!(p.memo().is_empty());
        assert_eq!(p.memo().stats(), (0, 0));
    }

    #[test]
    fn pruning_flag_changes_nothing_observable() {
        let (sil, dims, camera, pose) = setup();
        let pruned = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            temporal(pose),
            PoseProblemConfig::default(),
        )
        .unwrap();
        let exhaustive = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            temporal(pose),
            PoseProblemConfig {
                eq3_pruning: false,
                ..PoseProblemConfig::default()
            },
        )
        .unwrap();
        let mut shifted = pose;
        shifted.center.x += 0.03;
        for g in [pose, shifted] {
            assert_eq!(pruned.fitness(&g), exhaustive.fitness(&g));
        }
    }

    #[test]
    fn with_fitness_reuses_prepared_evaluator() {
        let (sil, dims, camera, pose) = setup();
        let base = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            temporal(pose),
            PoseProblemConfig::default(),
        )
        .unwrap();
        let rebuilt = PoseProblem::with_fitness(
            &sil,
            base.shared_fitness(),
            &dims,
            &camera,
            InitStrategy::FullRange,
            PoseProblemConfig::default(),
        )
        .unwrap();
        assert!(Arc::ptr_eq(
            &base.shared_fitness(),
            &rebuilt.shared_fitness()
        ));
        assert_eq!(base.fitness(&pose), rebuilt.fitness(&pose));
        // The rebuilt problem still validates its own config.
        assert!(matches!(
            PoseProblem::with_fitness(
                &sil,
                base.shared_fitness(),
                &dims,
                &camera,
                InitStrategy::FullRange,
                PoseProblemConfig {
                    validity_samples: 0,
                    ..PoseProblemConfig::default()
                },
            ),
            Err(GaError::BadConfig { .. })
        ));
    }

    #[test]
    fn blank_silhouette_rejected() {
        let (_, dims, camera, pose) = setup();
        let blank = Mask::new(camera.width, camera.height);
        assert!(matches!(
            PoseProblem::new(
                &blank,
                &dims,
                &camera,
                temporal(pose),
                PoseProblemConfig::default()
            ),
            Err(GaError::EmptySilhouette)
        ));
    }
}
