//! Error type for the GA crate.

use std::fmt;

/// Error returned by fallible `slj-ga` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GaError {
    /// No valid chromosome could be generated for the initial population
    /// (e.g. the silhouette is blank or the seed pose is far outside it).
    InitFailed {
        /// Generation attempts made.
        attempts: usize,
    },
    /// A configuration value is out of range.
    BadConfig {
        /// What was wrong.
        what: &'static str,
    },
    /// The silhouette has no foreground pixels, so Eq. 3 is undefined.
    EmptySilhouette,
    /// Tracking was asked to run over an empty silhouette sequence.
    NoFrames,
}

impl fmt::Display for GaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaError::InitFailed { attempts } => {
                write!(f, "no valid chromosome found after {attempts} attempts")
            }
            GaError::BadConfig { what } => write!(f, "bad configuration: {what}"),
            GaError::EmptySilhouette => write!(f, "silhouette has no foreground pixels"),
            GaError::NoFrames => write!(f, "no frames to track"),
        }
    }
}

impl std::error::Error for GaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(GaError::InitFailed { attempts: 10 }
            .to_string()
            .contains("10"));
        assert!(GaError::BadConfig {
            what: "population_size"
        }
        .to_string()
        .contains("population_size"));
        assert!(!GaError::EmptySilhouette.to_string().is_empty());
        assert!(!GaError::NoFrames.to_string().is_empty());
    }

    #[test]
    fn is_error_send_sync() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<GaError>();
    }
}
