//! Allocation regression test: steady-state batched fitness
//! evaluation must not touch the heap.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up batch (growing the pooled [`EvalScratch`] buffers to their
//! high-water mark), a second batch through the same
//! `PoseProblem::fitness_batch` path is asserted to perform **zero**
//! allocations — through pose projection, the lane Eq. 3 kernel, and
//! the outside-penalty term. A separate test covers the memoised
//! all-hit path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use slj_ga::engine::Problem;
use slj_ga::fitness::Eq3Kernel;
use slj_ga::pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig};
use slj_motion::{BodyDims, Pose};
use slj_video::render::render_silhouette;
use slj_video::Camera;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-global, so concurrently running
/// tests would pollute each other's deltas; take this before measuring.
static MEASURE: Mutex<()> = Mutex::new(());

/// System allocator plus a global allocation counter.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

// SAFETY: defers to the system allocator; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A pose problem over a rendered standing silhouette plus a batch of
/// random genomes with deliberate duplicates (exercising the dedup
/// path).
fn fixture(config: PoseProblemConfig) -> (PoseProblem, Vec<Pose>) {
    let dims = BodyDims::default();
    let camera = Camera::compact();
    let mut pose = Pose::standing(&dims);
    pose.center.x = 0.6;
    let sil = render_silhouette(&pose, &dims, &camera);
    let problem = PoseProblem::new(&sil, &dims, &camera, InitStrategy::FullRange, config).unwrap();
    let mut rng = StdRng::seed_from_u64(47);
    let mut genomes: Vec<Pose> = (0..12).map(|_| problem.random_genome(&mut rng)).collect();
    // Duplicates: in-batch repeats must share one projection.
    genomes.push(genomes[0]);
    genomes.push(genomes[5]);
    genomes.push(genomes[5]);
    (problem, genomes)
}

#[test]
fn batched_evaluation_is_allocation_free() {
    // Memo off: every batch takes the full dedup → project → lane
    // kernel → outside-penalty path.
    let (problem, genomes) = fixture(PoseProblemConfig {
        eq3_kernel: Eq3Kernel::Lanes,
        fitness_memo: false,
        ..PoseProblemConfig::default()
    });
    let mut out = vec![0.0f64; genomes.len()];
    // Warm-up batch grows every pooled scratch buffer.
    problem.fitness_batch(&genomes, &mut out);
    let expected = out.clone();

    let _guard = MEASURE.lock().unwrap();
    let before = allocations();
    problem.fitness_batch(&genomes, &mut out);
    let delta = allocations() - before;
    assert_eq!(delta, 0, "steady-state batch performed {delta} allocations");
    assert_eq!(
        out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
}

#[test]
fn memoised_batch_is_allocation_free_on_full_hit() {
    // Memo on: the warm-up batch pays the HashMap inserts; a repeat of
    // the same genomes is answered entirely from the memo without
    // touching the heap.
    let (problem, genomes) = fixture(PoseProblemConfig {
        eq3_kernel: Eq3Kernel::Lanes,
        fitness_memo: true,
        ..PoseProblemConfig::default()
    });
    let mut out = vec![0.0f64; genomes.len()];
    problem.fitness_batch(&genomes, &mut out);
    let expected = out.clone();

    let _guard = MEASURE.lock().unwrap();
    let before = allocations();
    problem.fitness_batch(&genomes, &mut out);
    let delta = allocations() - before;
    assert_eq!(delta, 0, "memoised batch performed {delta} allocations");
    assert_eq!(
        out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
}
