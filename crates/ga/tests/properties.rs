//! Property-based tests for the GA crate: engine invariants under
//! arbitrary valid configurations, operator laws of the pose problem,
//! and fitness-function envelope properties.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slj_ga::engine::{evolve, GaConfig, Problem};
use slj_ga::fitness::SilhouetteFitness;
use slj_ga::pose_problem::{InitStrategy, PoseProblem, PoseProblemConfig, DEFAULT_DELTA_ANGLES};
use slj_motion::{BodyDims, Pose};
use slj_video::render::render_silhouette;
use slj_video::Camera;

/// A cheap convex toy problem for engine-law testing.
struct Sphere;

impl Problem for Sphere {
    type Genome = [f64; 4];
    fn fitness(&self, g: &[f64; 4]) -> f64 {
        g.iter().map(|v| v * v).sum()
    }
    fn random_genome(&self, rng: &mut StdRng) -> [f64; 4] {
        [(); 4].map(|_| rng.gen_range(-5.0..5.0))
    }
    fn crossover(&self, a: &[f64; 4], b: &[f64; 4], rng: &mut StdRng) -> ([f64; 4], [f64; 4]) {
        let mut c1 = *a;
        let mut c2 = *b;
        for i in 0..4 {
            if rng.gen_bool(0.5) {
                std::mem::swap(&mut c1[i], &mut c2[i]);
            }
        }
        (c1, c2)
    }
    fn mutate(&self, g: &mut [f64; 4], rng: &mut StdRng) {
        for v in g.iter_mut() {
            if rng.gen_bool(0.3) {
                *v += rng.gen_range(-0.3..0.3);
            }
        }
    }
}

/// Shared fixture: a standing silhouette at the compact resolution.
fn fixture() -> (slj_imgproc::mask::Mask, BodyDims, Camera, Pose) {
    let dims = BodyDims::default();
    let camera = Camera::compact();
    let mut pose = Pose::standing(&dims);
    pose.center.x = 0.6;
    let sil = render_silhouette(&pose, &dims, &camera);
    (sil, dims, camera, pose)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ---------- engine ----------

    #[test]
    fn engine_invariants_hold_for_any_valid_config(
        pop in 2usize..40,
        elite in 0.0f64..1.0,
        gens in 1usize..25,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let config = GaConfig {
            population_size: pop,
            elite_fraction: elite,
            max_generations: gens,
            patience: None,
            target_fitness: None,
            validity_retries: 10,
            threads,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let run = evolve(&Sphere, &config, &mut rng).unwrap();
        // History is monotone non-increasing, one entry per generation
        // plus the initial population.
        prop_assert_eq!(run.history.len(), run.generations_run + 1);
        for w in run.history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
        prop_assert_eq!(*run.history.last().unwrap(), run.best_fitness);
        prop_assert!(run.generation_of_best <= run.generations_run);
        prop_assert_eq!(run.history[run.generation_of_best], run.best_fitness);
        prop_assert!(run.evaluations >= pop);
        // Helper metrics are consistent.
        prop_assert!(run.generations_to_near_best(0.1) <= run.generations_run);
        if let Some(g) = run.generations_to_fitness(run.best_fitness) {
            prop_assert_eq!(g, run.generation_of_best);
        }
    }

    #[test]
    fn engine_is_deterministic_in_the_seed(seed in any::<u64>()) {
        let config = GaConfig {
            population_size: 12,
            max_generations: 8,
            patience: None,
            ..GaConfig::default()
        };
        let a = evolve(&Sphere, &config, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = evolve(&Sphere, &config, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a.best, b.best);
        prop_assert_eq!(a.history, b.history);
    }

    // ---------- pose operators ----------

    #[test]
    fn temporal_samples_are_valid_chromosomes(seed in any::<u64>()) {
        let (sil, dims, camera, pose) = fixture();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            InitStrategy::Temporal {
                previous: pose,
                delta_center: 0.08,
                delta_angles: DEFAULT_DELTA_ANGLES,
            },
            PoseProblemConfig::default(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let g = p.random_genome(&mut rng);
            // All genes finite, angles normalised (via Pose invariants).
            for v in g.to_genes() {
                prop_assert!(v.is_finite());
            }
            // Fitness is finite and non-negative for any sample.
            let f = p.fitness(&g);
            prop_assert!(f.is_finite() && f >= 0.0);
        }
    }

    #[test]
    fn crossover_children_keep_genes_from_parents(seed in any::<u64>()) {
        let (sil, dims, camera, _pose) = fixture();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            InitStrategy::FullRange,
            PoseProblemConfig::default(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = p.random_genome(&mut rng);
        let b = p.random_genome(&mut rng);
        let (c1, c2) = p.crossover(&a, &b, &mut rng);
        let (ga, gb) = (a.to_genes(), b.to_genes());
        let (g1, g2) = (c1.to_genes(), c2.to_genes());
        for i in 0..ga.len() {
            // Every child gene comes from one parent, and the pair is
            // conserved.
            prop_assert!(
                (g1[i] == ga[i] && g2[i] == gb[i]) || (g1[i] == gb[i] && g2[i] == ga[i]),
                "gene {i} invented a value"
            );
        }
    }

    // ---------- fitness ----------

    #[test]
    fn fitness_is_translation_sensitive(dx in 0.05f64..0.5) {
        let (sil, dims, camera, pose) = fixture();
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, 2).unwrap();
        let base = fit.evaluate(&pose, &dims);
        let mut moved = pose;
        moved.center.x += dx;
        prop_assert!(fit.evaluate(&moved, &dims) > base, "shift {dx} undetected");
    }

    #[test]
    fn eq3_is_bounded_below_by_zero_and_scales(stride in 1usize..8) {
        let (sil, dims, camera, pose) = fixture();
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, stride).unwrap();
        let f = fit.evaluate_eq3(&pose, &dims);
        prop_assert!(f >= 0.0 && f.is_finite());
        prop_assert!(fit.sample_count() >= fit.total_points() / stride);
    }

    #[test]
    fn aabb_pruned_eq3_is_bit_identical_to_exhaustive(
        dx in -0.4f64..0.4,
        dy in -0.3f64..0.3,
        spin_seed in any::<u64>(),
        stride in 1usize..6,
    ) {
        // The branch-and-bound over the 8 sticks is an *exact*
        // optimisation: for any pose — centred, displaced, or scrambled
        // beyond anything the GA would sample — the pruned evaluation
        // must equal the exhaustive one to the last bit.
        let (sil, dims, camera, pose) = fixture();
        let fit = SilhouetteFitness::new(&sil, &dims, &camera, stride).unwrap();
        let mut g = pose;
        g.center.x += dx;
        g.center.y += dy;
        let mut spin_rng = StdRng::seed_from_u64(spin_seed);
        for l in 0..g.angles.len() {
            g.angles[l] = g.angles[l] + spin_rng.gen_range(-170.0..170.0);
        }
        prop_assert_eq!(fit.evaluate_eq3(&g, &dims), fit.evaluate_eq3_unpruned(&g, &dims));
        prop_assert_eq!(fit.evaluate(&g, &dims), fit.evaluate_unpruned(&g, &dims));
    }

    #[test]
    fn fitness_memo_is_never_stale_under_mutation(seed in any::<u64>()) {
        // Mutating a chromosome changes its gene bits, so the memo must
        // treat it as a fresh key: the cached value for the parent stays
        // the parent's, and the mutant's value equals an uncached
        // evaluation. (A stale memo would poison the GA silently — the
        // engine calls `fitness` on every offspring.)
        let (sil, dims, camera, pose) = fixture();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            InitStrategy::Temporal {
                previous: pose,
                delta_center: 0.08,
                delta_angles: DEFAULT_DELTA_ANGLES,
            },
            PoseProblemConfig {
                mutation_rate: 1.0,
                ..PoseProblemConfig::default()
            },
        )
        .unwrap();
        let reference = SilhouetteFitness::new(&sil, &dims, &camera, p.config().stride).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genome = p.random_genome(&mut rng);
        let mut parent_values = Vec::new();
        for _ in 0..6 {
            let value = p.fitness(&genome);
            prop_assert_eq!(value, reference.evaluate(&genome, &dims));
            // Re-query every chromosome seen so far: cached values must
            // still match a fresh evaluation of *those* genes.
            parent_values.push((genome, value));
            for (g, v) in &parent_values {
                prop_assert_eq!(p.fitness(g), *v);
            }
            p.mutate(&mut genome, &mut rng);
        }
    }

    // ---------- lane kernel / batched evaluation ----------

    #[test]
    fn lane_kernel_is_bit_identical_to_unpruned_reference(
        seed in any::<u64>(),
        stride in 1usize..7,
        height in 1.1f64..1.9,
        weight_pick in 0usize..3,
    ) {
        // Random dims + silhouette + stride (stride varies the tail:
        // point counts that are not a multiple of the lane width) and
        // all three outside-weight regimes, including the pure Eq. 3
        // term with the penalty disabled.
        let dims = BodyDims::for_height(height);
        let camera = Camera::compact();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sil_pose = Pose::standing(&dims);
        sil_pose.center.x = rng.gen_range(0.3..1.0);
        let sil = render_silhouette(&sil_pose, &dims, &camera);
        prop_assume!(sil.count() > 0);
        let weight = [0.0, 1.0, 0.35][weight_pick];
        let fitness =
            SilhouetteFitness::with_outside_weight(&sil, &dims, &camera, stride, weight).unwrap();
        let p = PoseProblem::new(
            &sil,
            &dims,
            &camera,
            InitStrategy::FullRange,
            PoseProblemConfig::default(),
        )
        .unwrap();
        let poses: Vec<Pose> = (0..9).map(|_| p.random_genome(&mut rng)).collect();
        let mut batch = vec![0.0f64; poses.len()];
        let mut scratch = slj_ga::fitness::BatchScratch::default();
        fitness.evaluate_batch(&poses, &dims, &mut batch, &mut scratch);
        for (pose, &batched) in poses.iter().zip(&batch) {
            let reference = fitness.evaluate_unpruned(pose, &dims);
            prop_assert_eq!(fitness.evaluate_lanes(pose, &dims).to_bits(), reference.to_bits());
            prop_assert_eq!(fitness.evaluate(pose, &dims).to_bits(), reference.to_bits());
            // The shared prune-hint walk across genomes never changes
            // the returned fitness.
            prop_assert_eq!(batched.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn batched_problem_fitness_matches_scalar_kernel(
        seed in any::<u64>(),
        memo in any::<bool>(),
        split in 1usize..11,
    ) {
        // `PoseProblem::fitness_batch` with the lane kernel must agree
        // bitwise with the scalar-kernel per-genome path, regardless of
        // memoisation, in-batch duplicates, or how the population is
        // split into batches (thread-chunk independence).
        let (sil, dims, camera, _pose) = fixture();
        let config = |kernel| PoseProblemConfig {
            eq3_kernel: kernel,
            fitness_memo: memo,
            ..PoseProblemConfig::default()
        };
        let lanes = PoseProblem::new(
            &sil, &dims, &camera, InitStrategy::FullRange, config(slj_ga::fitness::Eq3Kernel::Lanes),
        )
        .unwrap();
        let scalar = PoseProblem::new(
            &sil, &dims, &camera, InitStrategy::FullRange, config(slj_ga::fitness::Eq3Kernel::Scalar),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genomes: Vec<Pose> = (0..10).map(|_| lanes.random_genome(&mut rng)).collect();
        genomes.push(genomes[3]);
        genomes.push(genomes[3]);
        let mut whole = vec![0.0f64; genomes.len()];
        lanes.fitness_batch(&genomes, &mut whole);
        let mut chunked = vec![0.0f64; genomes.len()];
        for (gs, out) in genomes.chunks(split).zip(chunked.chunks_mut(split)) {
            lanes.fitness_batch(gs, out);
        }
        for ((genome, &value), &split_value) in genomes.iter().zip(&whole).zip(&chunked) {
            prop_assert_eq!(value.to_bits(), scalar.fitness(genome).to_bits());
            prop_assert_eq!(split_value.to_bits(), value.to_bits());
        }
    }
}
