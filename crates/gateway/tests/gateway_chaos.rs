//! Chaos suite for the HTTP gateway.
//!
//! The contract under test extends the daemon's: **HTTP adds a
//! protocol, not drift, and no client's misbehaviour may change
//! another job's bytes.** Every scenario runs a real daemon (UDS) and a
//! real gateway (loopback TCP), drives them with raw `TcpStream` HTTP
//! clients mixed with raw wire clients, and asserts that healthy
//! submissions get reports **byte-identical** to an in-process
//! [`StreamingAnalyzer`] run — while malformed bodies, mid-upload
//! disconnects, slowloris readers and overload-shed admissions are
//! answered (or reaped) with typed statuses.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::Deserialize;
use slj::prelude::*;
use slj_daemon::{Addr, Client, ClientOptions, Daemon, DaemonConfig, OpenRequest};
use slj_gateway::{Gateway, GatewayConfig, GatewayHandle};

fn scene() -> SceneConfig {
    SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    }
}

fn open_request(jump: &SyntheticJump, scene: &SceneConfig, want_trace: bool) -> OpenRequest {
    OpenRequest {
        camera: scene.camera,
        dims: BodyDims::default(),
        first_pose: jump.poses.poses()[0],
        fps: jump.video.fps(),
        warmup: 14,
        fast: true,
        max_degraded: Some(10),
        want_trace,
    }
}

/// The in-process ground truth, rendered exactly as the daemon renders
/// it: pretty summary JSON (the gateway serves these bytes verbatim).
fn reference(jump: &SyntheticJump, request: &OpenRequest) -> String {
    let config = request.to_session_config();
    let mut stream = StreamingAnalyzer::new(
        config.analyzer,
        &config.camera,
        config.first_pose,
        config.fps,
    )
    .unwrap();
    for frame in jump.video.iter() {
        stream.push_frame(frame).unwrap();
    }
    let analysis = stream.finish().unwrap();
    serde_json::to_string_pretty(&analysis.summary()).unwrap()
}

fn daemon_config() -> DaemonConfig {
    let mut config = DaemonConfig::default();
    config.serve.escalate_after = 30;
    config.serve.trip_after = 40;
    config
}

fn uds_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("slj-gateway-{tag}-{}.sock", std::process::id()))
}

/// A POST /v1/jobs body: one open-request JSON line, then the clip.
fn job_body(request: &OpenRequest, video: &slj_video::Video) -> Vec<u8> {
    let mut body = serde_json::to_string(request).unwrap().into_bytes();
    body.push(b'\n');
    body.extend_from_slice(&slj_video::io::ppm_stream(video));
    body
}

/// One parsed HTTP response.
struct Response {
    status: u16,
    headers: HashMap<String, String>,
    body: Vec<u8>,
}

/// Sends one raw request and reads to EOF (the gateway always closes).
fn http(hostport: &str, request: &[u8]) -> Response {
    let mut sock = TcpStream::connect(hostport).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    sock.write_all(request).unwrap();
    let mut raw = Vec::new();
    sock.read_to_end(&mut raw).unwrap();
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Response {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header block");
    let head = std::str::from_utf8(&raw[..split]).unwrap();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
        }
    }
    Response {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    }
}

fn get(hostport: &str, path: &str) -> Response {
    http(
        hostport,
        format!("GET {path} HTTP/1.1\r\nHost: gw\r\n\r\n").as_bytes(),
    )
}

fn post(hostport: &str, path: &str, body: &[u8]) -> Response {
    let mut request = format!(
        "POST {path} HTTP/1.1\r\nHost: gw\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(body);
    http(hostport, &request)
}

#[derive(Deserialize)]
struct JobReply {
    job: u64,
    state: String,
}

/// Submits a clip and returns the job id (asserting the 202 shape).
fn submit(hostport: &str, body: &[u8]) -> u64 {
    let response = post(hostport, "/v1/jobs", body);
    assert_eq!(
        response.status,
        202,
        "submit failed: {}",
        String::from_utf8_lossy(&response.body)
    );
    let reply: JobReply =
        serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
    assert_eq!(reply.state, "running");
    reply.job
}

/// Polls a job until its report is ready and returns the bytes.
fn fetch_report(hostport: &str, job: u64) -> Vec<u8> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let response = get(hostport, &format!("/v1/jobs/{job}"));
        match response.status {
            200 => return response.body,
            202 => {
                assert!(Instant::now() < deadline, "job {job} never finished");
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!(
                "job {job} failed with {other}: {}",
                String::from_utf8_lossy(&response.body)
            ),
        }
    }
}

fn start_pair(
    tag: &str,
    gateway_config: GatewayConfig,
) -> (slj_daemon::DaemonHandle, GatewayHandle, String) {
    let handle = Daemon::start(&[Addr::Unix(uds_path(tag))], daemon_config()).unwrap();
    let gateway = Gateway::start(
        &Addr::Tcp("127.0.0.1:0".to_owned()),
        handle.addrs[0].clone(),
        gateway_config,
    )
    .unwrap();
    let Addr::Tcp(hostport) = gateway.addr.clone() else {
        unreachable!()
    };
    (handle, gateway, hostport)
}

#[test]
fn concurrent_http_and_wire_clients_get_identical_reports_through_chaos() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 71);
    let request = open_request(&jump, &scene, false);
    let ref_summary = reference(&jump, &request);
    let (handle, gateway, hostport) = start_pair("chaos", GatewayConfig::default());
    let daemon_addr = handle.addrs[0].clone();

    // Chaos crew, concurrent with everything below.
    let chaos: Vec<std::thread::JoinHandle<()>> = vec![
        // 1. Malformed body: no JSON line at all.
        {
            let hostport = hostport.clone();
            std::thread::spawn(move || {
                let response = post(&hostport, "/v1/jobs", b"not json, no newline");
                assert_eq!(response.status, 400);
            })
        },
        // 2. Unparseable open request with a well-shaped body.
        {
            let hostport = hostport.clone();
            std::thread::spawn(move || {
                let response = post(&hostport, "/v1/jobs", b"{\"nope\":1}\nP6...");
                assert_eq!(response.status, 400);
                assert!(String::from_utf8_lossy(&response.body).contains("does not parse"));
            })
        },
        // 3. A clip the daemon cannot decode: refused 400 *after* the
        //    wire round-trip, typed, with no session opened.
        {
            let hostport = hostport.clone();
            let request = request.clone();
            std::thread::spawn(move || {
                let mut body = serde_json::to_string(&request).unwrap().into_bytes();
                body.extend_from_slice(b"\nP6\n9999 9999\n255\nxy");
                let response = post(&hostport, "/v1/jobs", &body);
                assert_eq!(response.status, 400);
                assert!(String::from_utf8_lossy(&response.body).contains("does not decode"));
            })
        },
        // 4. Mid-upload disconnect: declares a body, sends half, dies.
        {
            let hostport = hostport.clone();
            let request = request.clone();
            let jump_body = job_body(&request, &jump.video);
            std::thread::spawn(move || {
                let mut sock = TcpStream::connect(hostport.as_str()).unwrap();
                let head = format!(
                    "POST /v1/jobs HTTP/1.1\r\nHost: gw\r\nContent-Length: {}\r\n\r\n",
                    jump_body.len()
                );
                sock.write_all(head.as_bytes()).unwrap();
                sock.write_all(&jump_body[..jump_body.len() / 2]).unwrap();
                // Dropping the socket tears the upload mid-body.
            })
        },
        // 5. Oversized declaration: refused at the header, body unsent.
        {
            let hostport = hostport.clone();
            std::thread::spawn(move || {
                let response = http(
                    &hostport,
                    format!(
                        "POST /v1/jobs HTTP/1.1\r\nHost: gw\r\nContent-Length: {}\r\n\r\n",
                        usize::MAX / 2
                    )
                    .as_bytes(),
                );
                assert_eq!(response.status, 413);
            })
        },
        // 6. POST without Content-Length.
        {
            let hostport = hostport.clone();
            std::thread::spawn(move || {
                let response = http(&hostport, b"POST /v1/jobs HTTP/1.1\r\nHost: gw\r\n\r\n");
                assert_eq!(response.status, 411);
            })
        },
    ];

    // Four healthy HTTP clients and two raw wire clients, all at once.
    let http_workers: Vec<_> = (0..4)
        .map(|_| {
            let hostport = hostport.clone();
            let body = job_body(&request, &jump.video);
            std::thread::spawn(move || {
                let job = submit(&hostport, &body);
                fetch_report(&hostport, job)
            })
        })
        .collect();
    let wire_workers: Vec<_> = (0..2)
        .map(|_| {
            let addr = daemon_addr.clone();
            let frames: Vec<_> = jump.video.iter().cloned().collect();
            let request = request.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr, ClientOptions::default()).unwrap();
                client.analyze_clip(&request, &frames).unwrap()
            })
        })
        .collect();

    for worker in chaos {
        worker.join().unwrap();
    }
    let mut jobs_checked = 0;
    for worker in http_workers {
        let report = worker.join().unwrap();
        assert_eq!(
            String::from_utf8_lossy(&report),
            ref_summary,
            "HTTP report drifted"
        );
        jobs_checked += 1;
    }
    for worker in wire_workers {
        let analysis = worker.join().unwrap();
        assert_eq!(analysis.summary_json, ref_summary, "wire report drifted");
    }
    assert_eq!(jobs_checked, 4);

    // The event stream surfaces the session's health timeline.
    let body = job_body(&request, &jump.video);
    let job = submit(&hostport, &body);
    fetch_report(&hostport, job);
    let events = get(&hostport, &format!("/v1/jobs/{job}/events"));
    assert_eq!(events.status, 200);
    assert!(String::from_utf8_lossy(&events.body).contains("\"event\":\"finished\""));

    // Resource-level errors are typed.
    assert_eq!(get(&hostport, "/v1/jobs/999999").status, 404);
    assert_eq!(get(&hostport, "/nope").status, 404);
    assert_eq!(get(&hostport, "/v1/jobs").status, 405);
    assert_eq!(
        http(&hostport, b"DELETE /healthz HTTP/1.1\r\nHost: gw\r\n\r\n").status,
        405
    );
    assert_eq!(get(&hostport, "/healthz").status, 200);

    // Metrics counted the traffic: 5 admitted jobs, typed refusals.
    let metrics = get(&hostport, "/metrics");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8_lossy(&metrics.body).into_owned();
    assert!(text.contains("gateway_jobs_admitted = 5"), "{text}");
    assert!(text.contains("gateway_jobs_done = 5"), "{text}");
    assert!(text.contains("gateway_jobs_malformed = 3"), "{text}");

    let metrics = gateway.shutdown();
    assert_eq!(metrics.counter("gateway_jobs_admitted"), 5);
    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.sessions_finished, 7, "5 HTTP + 2 wire sessions");
    assert_eq!(stats.clip_sessions, 5);
    assert_eq!(stats.sessions_failed, 0);
}

#[test]
fn daemon_capacity_shed_maps_to_429_with_retry_after() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 73);
    let request = open_request(&jump, &scene, false);
    let ref_summary = reference(&jump, &request);

    // One daemon slot, held by a raw wire client: the gateway's POST
    // must come back 429 + Retry-After, not hang and not 500.
    let mut config = daemon_config();
    config.serve.max_sessions = 1;
    let handle = Daemon::start(&[Addr::Unix(uds_path("shed"))], config).unwrap();
    let gateway = Gateway::start(
        &Addr::Tcp("127.0.0.1:0".to_owned()),
        handle.addrs[0].clone(),
        GatewayConfig::default(),
    )
    .unwrap();
    let Addr::Tcp(hostport) = gateway.addr.clone() else {
        unreachable!()
    };

    let mut holder = Client::connect(&handle.addrs[0], ClientOptions::default()).unwrap();
    let held = holder.open(&request).unwrap();

    let body = job_body(&request, &jump.video);
    let response = post(&hostport, "/v1/jobs", &body);
    assert_eq!(
        response.status,
        429,
        "{}",
        String::from_utf8_lossy(&response.body)
    );
    assert!(response.headers.contains_key("retry-after"));
    assert!(String::from_utf8_lossy(&response.body).contains("at capacity"));

    // Releasing the slot makes the retry land and finish identically —
    // the shed was an answer, not a wound.
    holder.retire(held).unwrap();
    let job = loop {
        let response = post(&hostport, "/v1/jobs", &body);
        match response.status {
            202 => {
                let reply: JobReply =
                    serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
                break reply.job;
            }
            429 => std::thread::sleep(Duration::from_millis(10)), // RETIRE is async
            other => panic!("unexpected {other}"),
        }
    };
    let report = fetch_report(&hostport, job);
    assert_eq!(String::from_utf8_lossy(&report), ref_summary);

    gateway.shutdown();
    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.clip_sessions, 1);
    assert_eq!(stats.sessions_finished, 1);
}

#[test]
fn gateway_job_table_cap_sheds_locally_without_dialing_the_daemon() {
    // max_jobs 0: every submission is shed at the gateway; the daemon
    // never sees a connection for them.
    let (handle, gateway, hostport) = start_pair(
        "localshed",
        GatewayConfig {
            max_jobs: 0,
            ..GatewayConfig::default()
        },
    );
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 79);
    let request = open_request(&jump, &scene, false);
    let body = job_body(&request, &jump.video);
    let response = post(&hostport, "/v1/jobs", &body);
    assert_eq!(response.status, 429);
    assert!(response.headers.contains_key("retry-after"));

    gateway.shutdown();
    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.connections, 0, "local shed never dialed the daemon");
}

#[test]
fn slowloris_readers_are_reaped_typed_while_neighbours_finish() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 83);
    let request = open_request(&jump, &scene, false);
    let ref_summary = reference(&jump, &request);
    let (handle, gateway, hostport) = start_pair(
        "slowloris",
        GatewayConfig {
            read_timeout: Duration::from_millis(200),
            ..GatewayConfig::default()
        },
    );

    // Three slowloris connections: a half request line, half headers,
    // and a stalled body. Each must be answered 408 (or just closed)
    // within the deadline, not held forever.
    let slow: Vec<_> = [
        b"GET /hea".to_vec(),
        b"GET /healthz HTTP/1.1\r\nHost: gw\r\nX-Drip".to_vec(),
        b"POST /v1/jobs HTTP/1.1\r\nHost: gw\r\nContent-Length: 100\r\n\r\nshort".to_vec(),
    ]
    .into_iter()
    .map(|prefix| {
        let hostport = hostport.clone();
        std::thread::spawn(move || {
            let mut sock = TcpStream::connect(hostport.as_str()).unwrap();
            sock.set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            sock.write_all(&prefix).unwrap();
            // ...and never send the rest.
            let mut raw = Vec::new();
            sock.read_to_end(&mut raw).unwrap();
            if raw.is_empty() {
                return; // reaped with a plain close: acceptable for a dead read
            }
            let response = parse_response(&raw);
            assert_eq!(response.status, 408, "slowloris gets a typed timeout");
        })
    })
    .collect();

    // A healthy job runs to its byte-identical end through the reaping.
    let body = job_body(&request, &jump.video);
    let job = submit(&hostport, &body);
    let report = fetch_report(&hostport, job);
    assert_eq!(String::from_utf8_lossy(&report), ref_summary);

    for worker in slow {
        worker.join().unwrap();
    }
    let metrics = gateway.shutdown();
    assert_eq!(metrics.counter("gateway_reqs_timeout"), 3);
    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.sessions_finished, 1);
}

#[test]
fn drain_stops_admissions_but_reports_stay_fetchable() {
    let scene = scene();
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), 89);
    let request = open_request(&jump, &scene, false);
    let ref_summary = reference(&jump, &request);
    let (handle, gateway, hostport) = start_pair("drain", GatewayConfig::default());

    // A completed job from before the drain...
    let body = job_body(&request, &jump.video);
    let job = submit(&hostport, &body);
    let report = fetch_report(&hostport, job);
    assert_eq!(String::from_utf8_lossy(&report), ref_summary);

    // ...survives the drain: admissions 503, fetches still 200.
    let response = post(&hostport, "/v1/drain", b"");
    assert_eq!(
        response.status,
        200,
        "{}",
        String::from_utf8_lossy(&response.body)
    );
    assert!(String::from_utf8_lossy(&response.body).contains("\"daemon_in_flight\":0"));
    assert_eq!(get(&hostport, "/healthz").status, 503);
    assert_eq!(post(&hostport, "/v1/jobs", &body).status, 503);
    // The drain propagated: a late wire client is refused — or, with
    // nothing in flight, the daemon has already finished draining and
    // is gone altogether.
    match Client::connect(&handle.addrs[0], ClientOptions::default()) {
        Ok(mut late) => assert!(matches!(
            late.open(&request),
            Err(slj_daemon::ClientError::Rejected { .. })
        )),
        Err(slj_daemon::ClientError::Io(_)) => {}
        Err(other) => panic!("unexpected late-connect failure: {other}"),
    }
    let report = get(&hostport, &format!("/v1/jobs/{job}"));
    assert_eq!(report.status, 200);
    assert_eq!(String::from_utf8_lossy(&report.body), ref_summary);

    gateway.shutdown();
    let stats = handle.join();
    assert_eq!(stats.sessions_finished, 1);
}
