//! A deliberately small HTTP/1.1 server side: request reading with hard
//! caps and deadlines, response writing with `Connection: close`.
//!
//! The gateway serves one request per connection — no keep-alive, no
//! chunked transfer, no pipelining. That is not laziness but the
//! robustness posture: every connection's worst case is one bounded
//! read (header cap + declared body) under a socket deadline, so a
//! slowloris or a stalled upload costs one thread for at most the
//! configured timeout and is then reaped with a typed status.

use std::io::{self, ErrorKind, Read, Write};

use slj_daemon::Stream;

/// Caps applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_header: usize,
    /// Maximum declared `Content-Length`.
    pub max_body: usize,
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, query string included.
    pub path: String,
    /// Header names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Every variant maps to one response
/// status (or to silence, when the peer is already gone).
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed or the socket died before a full request; there
    /// is nobody to answer.
    Disconnected,
    /// The socket deadline expired mid-request (slowloris, stalled
    /// upload): `408 Request Timeout`.
    Timeout,
    /// Request line + headers exceeded the cap: `431`.
    HeadersTooLarge,
    /// The request does not parse as HTTP/1.x: `400`.
    Malformed(String),
    /// A body-bearing request without `Content-Length`: `411`.
    LengthRequired,
    /// Declared body over the cap: `413`.
    BodyTooLarge { declared: usize, max: usize },
}

impl HttpError {
    /// The status line this error answers with, or `None` when the
    /// connection is already dead.
    pub fn status(&self) -> Option<(u16, String)> {
        match self {
            HttpError::Disconnected => None,
            HttpError::Timeout => Some((408, "request timed out".to_owned())),
            HttpError::HeadersTooLarge => Some((431, "request headers too large".to_owned())),
            HttpError::Malformed(why) => Some((400, format!("malformed request: {why}"))),
            HttpError::LengthRequired => {
                Some((411, "POST requires a Content-Length header".to_owned()))
            }
            HttpError::BodyTooLarge { declared, max } => Some((
                413,
                format!("body of {declared} bytes exceeds the {max}-byte limit"),
            )),
        }
    }
}

fn io_kind(e: &io::Error) -> HttpError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Disconnected,
    }
}

/// Reads one full request under the socket's deadlines and `limits`.
///
/// # Errors
///
/// A typed [`HttpError`]; see each variant for the status it maps to.
pub fn read_request(stream: &mut Stream, limits: &Limits) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 8 * 1024];
    // Phase 1: accumulate until the blank line ends the header block.
    let header_end = loop {
        if let Some(at) = find_blank_line(&buf) {
            break at;
        }
        if buf.len() > limits.max_header {
            return Err(HttpError::HeadersTooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io_kind(&e)),
        }
    };
    if header_end > limits.max_header {
        return Err(HttpError::HeadersTooLarge);
    }
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::Malformed("headers are not UTF-8".to_owned()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_owned(), p.to_owned(), v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line '{request_line}'"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported {version}")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    // Phase 2: the body, exactly Content-Length bytes. Anything the
    // header read over-fetched is the body's prefix.
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length '{v}'")))
        })
        .transpose()?;
    let declared = match content_length {
        Some(n) => n,
        None if method == "POST" || method == "PUT" => return Err(HttpError::LengthRequired),
        None => 0,
    };
    if declared > limits.max_body {
        return Err(HttpError::BodyTooLarge {
            declared,
            max: limits.max_body,
        });
    }
    let mut body = buf.split_off(header_end + 4);
    body.reserve(declared.saturating_sub(body.len()));
    while body.len() < declared {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io_kind(&e)),
        }
    }
    body.truncate(declared); // drop any pipelined surplus; we close anyway
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The canonical reason phrase for the statuses the gateway emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response and leaves the connection to be
/// closed by the caller (every response carries `Connection: close`).
///
/// # Errors
///
/// Any socket write failure, including an expired write deadline.
pub fn write_response(
    stream: &mut Stream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut out = Vec::with_capacity(256 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {status} {}\r\n", reason(status)).as_bytes());
    out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    out.extend_from_slice(b"Connection: close\r\n");
    for (name, value) in extra_headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    stream.write_all(&out)?;
    stream.flush()
}
