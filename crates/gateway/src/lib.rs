//! HTTP/1.1 gateway in front of the daemon: clip in, report out.
//!
//! The paper closes by imagining a service where users "upload a video
//! sequence of a standing long jump" and get their analysis back. The
//! daemon already speaks `slj-wire/1` for that; this crate puts a plain
//! HTTP face on it so anything that can speak `curl` can submit a clip:
//!
//! - `POST /v1/jobs` — body is one line of open-request JSON followed
//!   by the clip as concatenated binary PPM frames (the on-disk clip
//!   format's `frame_*.ppm` bytes laid end to end). The gateway
//!   forwards it as one `OPEN_CLIP`; the daemon decodes and feeds the
//!   frames itself. Replies `202` with a job id.
//! - `GET /v1/jobs/{id}` — `202` while running, `200` with the report
//!   JSON (byte-identical to `slj analyze --stream --report`), `502`
//!   when the session failed.
//! - `GET /v1/jobs/{id}/events` — the session's health-event JSONL.
//! - `GET /healthz`, `GET /metrics` — liveness and counters.
//! - `POST /v1/drain` — drains gateway and daemon.
//!
//! The robustness posture mirrors the daemon's: every limit is a typed
//! status, not a hang. Admission shed by the daemon maps to `429` with
//! `Retry-After`; draining maps to `503`; malformed or oversized bodies
//! are refused with a `4xx` *before* any wire session is opened; and
//! every connection lives under read/write deadlines so slow or stalled
//! peers are reaped, never accumulated.

pub mod http;

use std::collections::BTreeMap;
use std::io::{self, ErrorKind};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use slj_daemon::{Addr, Client, ClientError, ClientOptions, Listener, OpenRequest, Stream};
use slj_obs::MetricsRegistry;

use http::{read_request, write_response, HttpError, Limits, Request};

/// How long the acceptor sleeps between nonblocking accept polls.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Gateway knobs. The defaults are sized for the daemon's own default
/// wire-frame cap: a body that passes the gateway always fits the one
/// `OPEN_CLIP` frame it becomes.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Maximum request body (open-request line + PPM bytes). Must stay
    /// under the daemon's `max_frame` minus the envelope overhead.
    pub max_body: usize,
    /// Maximum request line + header bytes.
    pub max_header: usize,
    /// In-flight (running) job cap; admissions beyond it get `429`.
    pub max_jobs: usize,
    /// Finished jobs retained for `GET` before the oldest are evicted.
    pub max_done: usize,
    /// Concurrent HTTP connections; accepts beyond it get `503`.
    pub max_conns: usize,
    /// Per-connection socket read deadline (slowloris bound).
    pub read_timeout: Duration,
    /// Per-connection socket write deadline (stalled-reader bound).
    pub write_timeout: Duration,
    /// The `Retry-After` seconds sent with every `429`.
    pub retry_after: u64,
    /// Options for the wire connections the gateway dials.
    pub client: ClientOptions,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            // 4 KiB of slack covers the JSON line + wire envelope.
            max_body: slj_daemon::DEFAULT_MAX_FRAME - 4096,
            max_header: 16 * 1024,
            max_jobs: 16,
            max_done: 256,
            max_conns: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after: 1,
            client: ClientOptions::default(),
        }
    }
}

/// A submitted job's lifecycle.
enum JobState {
    /// The daemon admitted the clip; a worker is waiting on the result.
    Running,
    /// Terminal: the report arrived.
    Done(slj_daemon::RemoteAnalysis),
    /// Terminal: the session failed server-side.
    Failed(String),
}

struct Shared {
    daemon: Addr,
    config: GatewayConfig,
    /// Gateway-initiated or operator-initiated drain: new jobs get 503.
    draining: AtomicBool,
    /// Acceptor stop flag (set by [`GatewayHandle::shutdown`]).
    stop: AtomicBool,
    jobs: Mutex<BTreeMap<u64, JobState>>,
    running: AtomicUsize,
    next_job: AtomicU64,
    conns: AtomicUsize,
    metrics: Mutex<MetricsRegistry>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn inc(&self, name: &'static str) {
        self.metrics.lock().unwrap().inc(name, 1);
    }
}

/// The gateway entry point.
pub struct Gateway;

/// A running gateway. Call [`shutdown`](GatewayHandle::shutdown) to
/// stop accepting and join every thread.
pub struct GatewayHandle {
    /// The address actually bound (OS-assigned ports resolved).
    pub addr: Addr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
}

impl GatewayHandle {
    /// Stops admitting new jobs (they get `503`); existing jobs finish
    /// and their reports stay fetchable.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested (by this handle or an HTTP
    /// `POST /v1/drain`).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Jobs currently running (admitted, terminal not yet recorded).
    pub fn jobs_running(&self) -> usize {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// Stops the acceptor, joins every job worker, and returns the
    /// final metrics. In-flight HTTP connections get up to one
    /// read+write deadline to finish.
    pub fn shutdown(self) -> MetricsRegistry {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.acceptor.join();
        let workers = std::mem::take(&mut *self.shared.workers.lock().unwrap());
        for worker in workers {
            let _ = worker.join();
        }
        let deadline = std::time::Instant::now()
            + self.shared.config.read_timeout
            + self.shared.config.write_timeout;
        while self.shared.conns.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        self.shared.metrics.lock().unwrap().clone()
    }
}

impl Gateway {
    /// Binds `listen` and serves HTTP against the daemon at `daemon`.
    /// The daemon is dialed per job, not at startup — a gateway may
    /// outlive daemon restarts.
    ///
    /// # Errors
    ///
    /// Any bind failure.
    pub fn start(listen: &Addr, daemon: Addr, config: GatewayConfig) -> io::Result<GatewayHandle> {
        let (listener, addr) = Listener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            daemon,
            config,
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            jobs: Mutex::new(BTreeMap::new()),
            running: AtomicUsize::new(0),
            next_job: AtomicU64::new(1),
            conns: AtomicUsize::new(0),
            metrics: Mutex::new(MetricsRegistry::default()),
            workers: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("slj-gateway-accept".to_owned())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn gateway acceptor")
        };
        Ok(GatewayHandle {
            addr,
            shared,
            acceptor,
        })
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: Listener) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            if let Some(path) = listener.unix_path() {
                let _ = std::fs::remove_file(path);
            }
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
                let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                if shared.conns.fetch_add(1, Ordering::SeqCst) >= shared.config.max_conns {
                    // Over the connection cap: answer 503 inline (the
                    // acceptor can afford one bounded write) and close.
                    shared.inc("gateway_conns_shed");
                    let mut stream = stream;
                    let _ = respond_text(&mut stream, 503, "gateway connection limit reached\n");
                    shared.conns.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                shared.inc("gateway_conns");
                let shared = Arc::clone(shared);
                thread::Builder::new()
                    .name("slj-gateway-conn".to_owned())
                    .spawn(move || {
                        handle_connection(&shared, stream);
                        shared.conns.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn gateway connection thread");
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn respond_text(stream: &mut Stream, status: u16, body: &str) -> io::Result<()> {
    write_response(stream, status, "text/plain", &[], body.as_bytes())
}

fn respond_json(stream: &mut Stream, status: u16, body: &str) -> io::Result<()> {
    write_response(stream, status, "application/json", &[], body.as_bytes())
}

/// One request, one response, close. Every path out of here writes a
/// typed status unless the peer is already gone.
fn handle_connection(shared: &Arc<Shared>, mut stream: Stream) {
    let limits = Limits {
        max_header: shared.config.max_header,
        max_body: shared.config.max_body,
    };
    let request = match read_request(&mut stream, &limits) {
        Ok(request) => request,
        Err(err) => {
            shared.inc(match err {
                HttpError::Timeout => "gateway_reqs_timeout",
                HttpError::Disconnected => "gateway_reqs_disconnected",
                _ => "gateway_reqs_malformed",
            });
            if let Some((status, why)) = err.status() {
                let _ = respond_text(&mut stream, status, &format!("{why}\n"));
            }
            stream.shutdown();
            return;
        }
    };
    shared.inc("gateway_reqs");
    route(shared, &mut stream, &request);
    stream.shutdown();
}

fn route(shared: &Arc<Shared>, stream: &mut Stream, request: &Request) {
    let path = request.path.split('?').next().unwrap_or("");
    let outcome = match (request.method.as_str(), path) {
        ("GET", "/healthz") => handle_healthz(shared, stream),
        ("GET", "/metrics") => handle_metrics(shared, stream),
        ("POST", "/v1/jobs") => handle_submit(shared, stream, request),
        ("POST", "/v1/drain") => handle_drain(shared, stream),
        (_, "/healthz" | "/metrics") => method_not_allowed(stream, "GET"),
        (_, "/v1/jobs") => method_not_allowed(stream, "POST"),
        (_, "/v1/drain") => method_not_allowed(stream, "POST"),
        (method, path) => match parse_job_path(path) {
            Some((id, events)) if method == "GET" => handle_job_get(shared, stream, id, events),
            Some(_) => method_not_allowed(stream, "GET"),
            None => respond_text(stream, 404, "no such resource\n"),
        },
    };
    let _ = outcome;
}

/// `/v1/jobs/{id}` and `/v1/jobs/{id}/events` → `(id, wants_events)`.
fn parse_job_path(path: &str) -> Option<(u64, bool)> {
    let rest = path.strip_prefix("/v1/jobs/")?;
    match rest.strip_suffix("/events") {
        Some(id) => id.parse().ok().map(|id| (id, true)),
        None => rest.parse().ok().map(|id| (id, false)),
    }
}

fn method_not_allowed(stream: &mut Stream, allow: &str) -> io::Result<()> {
    write_response(
        stream,
        405,
        "text/plain",
        &[("Allow", allow.to_owned())],
        b"method not allowed\n",
    )
}

fn handle_healthz(shared: &Arc<Shared>, stream: &mut Stream) -> io::Result<()> {
    if shared.draining.load(Ordering::SeqCst) {
        respond_text(stream, 503, "draining\n")
    } else {
        respond_text(stream, 200, "ok\n")
    }
}

fn handle_metrics(shared: &Arc<Shared>, stream: &mut Stream) -> io::Result<()> {
    let rendered = shared.metrics.lock().unwrap().render();
    respond_text(stream, 200, &rendered)
}

/// The ingestion path. Refusal order is deliberate: everything the
/// gateway can decide locally (shape, JSON, drain, job cap) is decided
/// *before* a wire connection is dialed, so bad requests never cost the
/// daemon anything.
fn handle_submit(shared: &Arc<Shared>, stream: &mut Stream, request: &Request) -> io::Result<()> {
    // Body shape: one open-request JSON line, then raw PPM bytes.
    let Some(newline) = request.body.iter().position(|&b| b == b'\n') else {
        shared.inc("gateway_jobs_malformed");
        return respond_text(
            stream,
            400,
            "body must be one open-request JSON line followed by PPM frames\n",
        );
    };
    let (json_line, ppm) = request.body.split_at(newline);
    let ppm = &ppm[1..];
    let open: OpenRequest = match std::str::from_utf8(json_line)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str(s).map_err(|e| e.to_string()))
    {
        Ok(open) => open,
        Err(e) => {
            shared.inc("gateway_jobs_malformed");
            return respond_text(stream, 400, &format!("open request does not parse: {e}\n"));
        }
    };
    if ppm.is_empty() {
        shared.inc("gateway_jobs_malformed");
        return respond_text(stream, 400, "no clip bytes after the open-request line\n");
    }
    if shared.draining.load(Ordering::SeqCst) {
        shared.inc("gateway_jobs_drained");
        return respond_text(stream, 503, "gateway is draining\n");
    }
    // Reserve a job slot before dialing; release on any refusal.
    if shared.running.fetch_add(1, Ordering::SeqCst) >= shared.config.max_jobs {
        shared.running.fetch_sub(1, Ordering::SeqCst);
        shared.inc("gateway_jobs_shed");
        return write_response(
            stream,
            429,
            "text/plain",
            &[("Retry-After", shared.config.retry_after.to_string())],
            b"job table is full; retry shortly\n",
        );
    }
    let admitted = Client::connect(&shared.daemon, shared.config.client.clone())
        .map_err(|e| {
            (
                502u16,
                format!("daemon unreachable: {e}\n"),
                "gateway_jobs_bad_upstream",
            )
        })
        .and_then(|mut client| {
            client
                .open_clip(&open, ppm.to_vec())
                .map(|session| (client, session))
                .map_err(|e| refusal(shared, e))
        });
    let (client, session) = match admitted {
        Ok(pair) => pair,
        Err((status, body, counter)) => {
            shared.running.fetch_sub(1, Ordering::SeqCst);
            shared.inc(counter);
            if status == 429 {
                return write_response(
                    stream,
                    429,
                    "text/plain",
                    &[("Retry-After", shared.config.retry_after.to_string())],
                    body.as_bytes(),
                );
            }
            return respond_text(stream, status, &body);
        }
    };
    let id = shared.next_job.fetch_add(1, Ordering::SeqCst);
    {
        let mut jobs = shared.jobs.lock().unwrap();
        // Evict the oldest finished jobs past the retention cap.
        while jobs.len() >= shared.config.max_jobs + shared.config.max_done {
            let evict = jobs
                .iter()
                .find(|(_, s)| !matches!(s, JobState::Running))
                .map(|(&id, _)| id);
            match evict {
                Some(old) => {
                    jobs.remove(&old);
                }
                None => break, // everything is running; the cap bounds this
            }
        }
        jobs.insert(id, JobState::Running);
    }
    shared.inc("gateway_jobs_admitted");
    let worker = {
        let shared = Arc::clone(shared);
        thread::Builder::new()
            .name(format!("slj-gateway-job-{id}"))
            .spawn(move || job_worker(&shared, id, client, session))
            .expect("spawn gateway job worker")
    };
    shared.workers.lock().unwrap().push(worker);
    respond_json(
        stream,
        202,
        &format!("{{\"job\":{id},\"state\":\"running\"}}\n"),
    )
}

/// Maps a wire-level refusal onto `(status, body, counter)`. The
/// daemon's admission answers become the HTTP backpressure contract:
/// capacity → `429` (with `Retry-After` added by the caller), draining
/// → `503`, an undecodable clip or unparseable request → `400`.
fn refusal(_shared: &Arc<Shared>, err: ClientError) -> (u16, String, &'static str) {
    match err {
        ClientError::Rejected { reason } => {
            if reason.contains("at capacity") {
                (
                    429,
                    format!("daemon {reason}; retry shortly\n"),
                    "gateway_jobs_shed",
                )
            } else if reason.contains("draining") {
                (503, format!("daemon is {reason}\n"), "gateway_jobs_drained")
            } else {
                // "clip does not decode", "open request does not parse"
                (
                    400,
                    format!("daemon refused the clip: {reason}\n"),
                    "gateway_jobs_malformed",
                )
            }
        }
        other => (
            502,
            format!("daemon error: {other}\n"),
            "gateway_jobs_bad_upstream",
        ),
    }
}

/// Owns the wire connection for one admitted job until its terminal.
fn job_worker(shared: &Arc<Shared>, id: u64, mut client: Client, session: u64) {
    let outcome = client.await_result(session);
    let mut jobs = shared.jobs.lock().unwrap();
    match outcome {
        Ok(analysis) => {
            shared.metrics.lock().unwrap().inc("gateway_jobs_done", 1);
            jobs.insert(id, JobState::Done(analysis));
        }
        Err(e) => {
            shared.metrics.lock().unwrap().inc("gateway_jobs_failed", 1);
            jobs.insert(id, JobState::Failed(e.to_string()));
        }
    }
    drop(jobs);
    shared.running.fetch_sub(1, Ordering::SeqCst);
}

fn handle_job_get(
    shared: &Arc<Shared>,
    stream: &mut Stream,
    id: u64,
    events: bool,
) -> io::Result<()> {
    let jobs = shared.jobs.lock().unwrap();
    match jobs.get(&id) {
        None => respond_text(stream, 404, &format!("no job {id}\n")),
        Some(JobState::Running) => respond_json(
            stream,
            202,
            &format!("{{\"job\":{id},\"state\":\"running\"}}\n"),
        ),
        Some(JobState::Failed(error)) => {
            // The vendored serde_json has no json! macro; escape the
            // error by serialising it as a lone string.
            let quoted = serde_json::to_string(error).unwrap_or_else(|_| "\"?\"".to_owned());
            respond_json(
                stream,
                502,
                &format!("{{\"job\":{id},\"state\":\"failed\",\"error\":{quoted}}}\n"),
            )
        }
        Some(JobState::Done(analysis)) => {
            if events {
                let mut body = analysis.events.join("\n");
                body.push('\n');
                drop(jobs);
                write_response(stream, 200, "application/x-ndjson", &[], body.as_bytes())
            } else {
                // The report bytes verbatim: byte-identical to the
                // daemon's ANALYSIS and to `slj analyze --stream`.
                let body = analysis.summary_json.clone();
                drop(jobs);
                respond_json(stream, 200, &body)
            }
        }
    }
}

/// Drains gateway and daemon: local admissions stop first, then the
/// wire `DRAIN` is forwarded so the daemon refuses everyone else too.
fn handle_drain(shared: &Arc<Shared>, stream: &mut Stream) -> io::Result<()> {
    shared.draining.store(true, Ordering::SeqCst);
    shared.inc("gateway_drains");
    match Client::connect(&shared.daemon, shared.config.client.clone())
        .and_then(|mut client| client.drain())
    {
        Ok(in_flight) => respond_json(
            stream,
            200,
            &format!("{{\"state\":\"draining\",\"daemon_in_flight\":{in_flight}}}\n"),
        ),
        Err(e) => respond_text(
            stream,
            502,
            &format!("gateway draining, but the daemon could not be reached: {e}\n"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_paths_parse() {
        assert_eq!(parse_job_path("/v1/jobs/7"), Some((7, false)));
        assert_eq!(parse_job_path("/v1/jobs/7/events"), Some((7, true)));
        assert_eq!(parse_job_path("/v1/jobs/"), None);
        assert_eq!(parse_job_path("/v1/jobs/x"), None);
        assert_eq!(parse_job_path("/v1/jobs/7/other"), None);
        assert_eq!(parse_job_path("/v2/jobs/7"), None);
    }
}
