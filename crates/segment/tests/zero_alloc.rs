//! Allocation regression test: steady-state segmentation must not
//! touch the heap.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up pass over the clip (growing every arena buffer and the
//! reused [`FrameStages`] to its high-water mark), a second pass over
//! the same frames is asserted to perform **zero** allocations per
//! frame — for both hole-fill kernels and with ghost suppression and
//! shadow removal enabled.

use slj_motion::JumpConfig;
use slj_segment::background::{
    BackgroundConfig, BackgroundEstimator, BackgroundScratch, EstimatedBackground, UpdateMode,
};
use slj_segment::pipeline::{FrameStages, PipelineConfig};
use slj_segment::segmenter::{FrameSegmenter, PreparedBackground};
use slj_video::{SceneConfig, SyntheticJump};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// System allocator plus a global allocation counter.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

// SAFETY: defers to the system allocator; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn assert_steady_state_is_allocation_free(config: PipelineConfig, label: &str) {
    let jump = SyntheticJump::generate(
        &SceneConfig::default(),
        &JumpConfig {
            frames: 10,
            ..JumpConfig::default()
        },
        41,
    );
    let background = BackgroundEstimator::new(config.background)
        .estimate(&jump.video)
        .unwrap();
    let prepared = Arc::new(PreparedBackground::new(&background.image));
    let mut segmenter = FrameSegmenter::new(&config, prepared);
    let mut stages = FrameStages::empty();
    let frames = jump.video.frames();

    // Warm-up pass: every scratch buffer and output mask grows to the
    // clip's high-water mark here.
    for (k, frame) in frames.iter().enumerate() {
        let previous = k.checked_sub(1).map(|p| &frames[p]);
        segmenter
            .segment_into(frame, previous, &mut stages)
            .unwrap();
    }

    // Measured pass: the same frames through warm buffers must not
    // allocate at all.
    for (k, frame) in frames.iter().enumerate() {
        let previous = k.checked_sub(1).map(|p| &frames[p]);
        let before = allocations();
        segmenter
            .segment_into(frame, previous, &mut stages)
            .unwrap();
        let delta = allocations() - before;
        assert_eq!(delta, 0, "{label}: frame {k} performed {delta} allocations");
    }
}

#[test]
fn background_estimation_reuse_is_allocation_free() {
    // Both update modes through `estimate_into` with warmed output +
    // scratch buffers: steady-state re-estimation (the streaming
    // analyzer's warm-up refresh pattern) must not touch the heap.
    let jump = SyntheticJump::generate(
        &SceneConfig::default(),
        &JumpConfig {
            frames: 10,
            ..JumpConfig::default()
        },
        43,
    );
    for mode in [UpdateMode::LastStable, UpdateMode::MedianOfStable] {
        let estimator = BackgroundEstimator::new(BackgroundConfig {
            mode,
            ..BackgroundConfig::default()
        });
        let mut out = EstimatedBackground {
            image: slj_imgproc::ImageBuffer::new(0, 0),
            support: slj_imgproc::ImageBuffer::new(0, 0),
        };
        let mut scratch = BackgroundScratch::default();
        // Warm-up pass grows every buffer to its high-water mark.
        estimator
            .estimate_into(&jump.video, &mut out, &mut scratch)
            .unwrap();
        let before = allocations();
        estimator
            .estimate_into(&jump.video, &mut out, &mut scratch)
            .unwrap();
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "{mode:?}: estimation performed {delta} allocations"
        );
    }
}

#[test]
fn robust_config_segments_without_allocating() {
    // Ghost suppression + flood-fill holes + shadow removal: every
    // optional stage on.
    assert_steady_state_is_allocation_free(PipelineConfig::robust(), "robust");
}

#[test]
fn paper_config_segments_without_allocating() {
    // The iterated paper hole-fill rule takes the other kernel path.
    assert_steady_state_is_allocation_free(PipelineConfig::paper(), "paper");
}
