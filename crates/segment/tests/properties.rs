//! Property-based tests for the segmentation pipeline: stage ordering
//! invariants on arbitrary inputs, background-estimator guarantees, and
//! shadow-detector envelope properties.

use proptest::prelude::*;
use slj_imgproc::image::ImageBuffer;
use slj_imgproc::mask::Mask;
use slj_imgproc::pixel::{Hsv, Rgb};
use slj_segment::background::{BackgroundConfig, BackgroundEstimator, UpdateMode};
use slj_segment::cleanup::{HoleFiller, NoiseFilter, SpotRemover};
use slj_segment::foreground::{ForegroundConfig, ForegroundExtractor};
use slj_segment::shadow::{ShadowDetector, ShadowParams};
use slj_video::{Frame, Video};

fn frame_strategy(w: usize, h: usize) -> impl Strategy<Value = Frame> {
    proptest::collection::vec(any::<(u8, u8, u8)>(), w * h).prop_map(move |px| {
        ImageBuffer::from_vec(
            w,
            h,
            px.into_iter().map(|(r, g, b)| Rgb::new(r, g, b)).collect(),
        )
        .unwrap()
    })
}

fn video_strategy() -> impl Strategy<Value = Video> {
    proptest::collection::vec(frame_strategy(8, 6), 2..6)
        .prop_map(|frames| Video::new(frames, 10.0))
}

fn mask_strategy() -> impl Strategy<Value = Mask> {
    proptest::collection::vec(any::<bool>(), 12 * 10).prop_map(|bits| {
        let mut m = Mask::new(12, 10);
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                m.set(i % 12, i / 12, true);
            }
        }
        m
    })
}

fn subset(a: &Mask, b: &Mask) -> bool {
    a.difference(b).unwrap().is_blank()
}

proptest! {
    // ---------- background estimation ----------

    #[test]
    fn background_estimate_has_frame_dims_and_valid_support(video in video_strategy()) {
        for mode in [UpdateMode::LastStable, UpdateMode::MedianOfStable] {
            let est = BackgroundEstimator::new(BackgroundConfig { mode, ..BackgroundConfig::default() })
                .estimate(&video)
                .unwrap();
            prop_assert_eq!(est.image.dims(), video.dims());
            // Support never exceeds the number of frame pairs.
            let max_support = (video.len() - 1) as u16;
            prop_assert!(est.support.as_slice().iter().all(|&s| s <= max_support));
            prop_assert!((0.0..=1.0).contains(&est.coverage()));
        }
    }

    #[test]
    fn identical_frames_estimate_exactly(frame in frame_strategy(8, 6), n in 2usize..6) {
        let video = Video::new(vec![frame.clone(); n], 10.0);
        let est = BackgroundEstimator::new(BackgroundConfig::default())
            .estimate(&video)
            .unwrap();
        prop_assert_eq!(est.coverage(), 1.0);
        prop_assert_eq!(est.image, frame);
    }

    // ---------- foreground ----------

    #[test]
    fn foreground_monotone_in_threshold(frame in frame_strategy(8, 6), bg in frame_strategy(8, 6)) {
        let loose = ForegroundExtractor::new(ForegroundConfig { threshold: 20 }).extract(&frame, &bg);
        let strict = ForegroundExtractor::new(ForegroundConfig { threshold: 80 }).extract(&frame, &bg);
        prop_assert!(subset(&strict, &loose));
        // Subtracting a frame from itself yields nothing.
        let zero = ForegroundExtractor::default().extract(&frame, &frame);
        prop_assert!(zero.is_blank());
    }

    // ---------- cleanup stage ordering ----------

    #[test]
    fn cleanup_stage_ordering(raw in mask_strategy()) {
        let denoised = NoiseFilter::default().apply(&raw);
        let despotted = SpotRemover::default().apply(&denoised);
        let filled = HoleFiller::default().apply(&despotted);
        prop_assert!(subset(&denoised, &raw), "noise filter must not add pixels");
        prop_assert!(subset(&despotted, &denoised), "spot removal must not add pixels");
        prop_assert!(subset(&despotted, &filled), "hole fill must not remove pixels");
    }

    // ---------- shadow detector ----------

    #[test]
    fn shadow_mask_is_subset_of_foreground(frame in frame_strategy(8, 6), bg in frame_strategy(8, 6), fg in mask_strategy()) {
        // Resize fg to the frame dims.
        let fg = Mask::from_fn(8, 6, |x, y| fg.get(x, y));
        let det = ShadowDetector::default();
        let shadow = det.shadow_mask(&frame, &bg, &fg);
        prop_assert!(subset(&shadow, &fg));
        let (cleaned, shadow2) = det.remove_shadows(&frame, &bg, &fg);
        prop_assert_eq!(&shadow2, &shadow);
        prop_assert_eq!(cleaned.union(&shadow).unwrap(), fg);
        prop_assert!(cleaned.intersect(&shadow).unwrap().is_blank());
    }

    #[test]
    fn widening_every_parameter_can_only_add_shadow_pixels(
        h in 0.0f64..360.0, s in 0.0f64..1.0, v in 0.01f64..1.0,
        hb in 0.0f64..360.0, sb in 0.0f64..1.0, vb in 0.01f64..1.0,
    ) {
        let fpx = Hsv::new(h, s, v);
        let bpx = Hsv::new(hb, sb, vb);
        let narrow = ShadowDetector::new(ShadowParams { alpha: 0.5, beta: 0.8, tau_s: 0.1, tau_h: 30.0 });
        let wide = ShadowDetector::new(ShadowParams { alpha: 0.2, beta: 0.95, tau_s: 0.5, tau_h: 120.0 });
        if narrow.is_shadow_pixel(fpx, bpx) {
            prop_assert!(wide.is_shadow_pixel(fpx, bpx));
        }
    }
}
