//! The per-frame segmentation engine behind [`SegmentPipeline`]
//! (steady-state zero-allocation).
//!
//! [`SegmentPipeline::run`](crate::pipeline::SegmentPipeline::run) used
//! to rebuild every intermediate from scratch per frame: a fresh HSV
//! conversion of the *same* background pixel for every frame, a fresh
//! union-find, fresh scratch masks. This module splits the frame loop
//! into three reusable pieces:
//!
//! * [`PreparedBackground`] — the background estimate plus its HSV
//!   plane, converted **once** and recomputed only when the background
//!   image actually changes (the Eq. 1 shadow test needs the
//!   background's HSV for every foreground pixel of every frame).
//!   Shared read-only across worker threads via [`Arc`].
//! * [`FrameArena`] — every scratch buffer a frame needs (union-find
//!   labelling, flood-fill planes, predicate masks, per-component
//!   counters), pre-reserved to worst case and reused frame after
//!   frame.
//! * [`FrameSegmenter`] — one worker's segmentation state. After the
//!   first frame has warmed the arena,
//!   [`segment_into`](FrameSegmenter::segment_into) into a reused
//!   [`FrameStages`] performs **zero heap allocations** (asserted by a
//!   counting-allocator regression test).
//!
//! Background subtraction and the shadow predicate are fused into one
//! pass over the frame: a pixel crossing the subtraction threshold has
//! its HSV computed immediately and Eq. 1 evaluated against the cached
//! background HSV, so the shadow stage later reduces to word-parallel
//! set algebra plus a sparse lazy pass over hole-filled pixels. The
//! output of every stage is bit-identical to the original stage
//! operators (property- and pipeline-tested).

use crate::cleanup::HoleFillMode;
use crate::error::SegmentError;
use crate::ghosts::GhostVerdict;
use crate::pipeline::{FrameStages, PipelineConfig};
use crate::shadow::ShadowDetector;
use slj_imgproc::bitmask::BitMask;
use slj_imgproc::components::Labeling;
use slj_imgproc::mask::Mask;
use slj_imgproc::morph::Connectivity;
use slj_imgproc::pixel::Hsv;
use slj_obs::{spans, Profiler};
use slj_video::Frame;
use std::sync::Arc;
use std::time::Instant;

/// Accumulates the time since the last stamp into one profiler span;
/// no-ops (and never reads the clock) when profiling is off. The
/// background estimate and presmoothing are clip-level costs outside
/// the per-frame engine and are never stamped here.
fn stamp(clock: &mut Option<Instant>, profiler: Option<&mut Profiler>, span: &'static str) {
    if let (Some(clock), Some(profiler)) = (clock.as_mut(), profiler) {
        let now = Instant::now();
        profiler.record(span, now - *clock);
        *clock = now;
    }
}

/// The background estimate with its HSV plane cached.
///
/// Eq. 1 compares frame pixels against background pixels in HSV space;
/// the background is the same image for every frame, so its per-pixel
/// `to_hsv()` is hoisted here and recomputed **only when the background
/// image itself changes** ([`PreparedBackground::update`] compares the
/// pixel buffer and is a no-op on a match).
#[derive(Debug, Clone)]
pub struct PreparedBackground {
    frame: Frame,
    hsv: Vec<Hsv>,
}

impl PreparedBackground {
    /// Prepares the given background image.
    pub fn new(background: &Frame) -> Self {
        PreparedBackground {
            frame: background.clone(),
            hsv: background.as_slice().iter().map(|p| p.to_hsv()).collect(),
        }
    }

    /// Re-prepares for `background`, returning whether the HSV plane
    /// was recomputed. The invalidation rule is exact image equality:
    /// an unchanged estimate (the steady state of a streaming run)
    /// costs one memcmp, nothing else.
    pub fn update(&mut self, background: &Frame) -> bool {
        if self.frame.dims() == background.dims() && self.frame.as_slice() == background.as_slice()
        {
            return false;
        }
        self.frame.copy_from(background);
        self.hsv.clear();
        self.hsv
            .extend(background.as_slice().iter().map(|p| p.to_hsv()));
        true
    }

    /// The background image.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// The cached HSV plane, row-major, index `y * width + x`.
    pub fn hsv(&self) -> &[Hsv] {
        &self.hsv
    }
}

/// Reusable per-worker scratch buffers.
///
/// Everything a frame's stages need beyond the output [`FrameStages`]:
/// reused across frames so the steady state allocates nothing. Sized by
/// [`FrameArena::reserve_for`] to the worst case (a `w*h` label plane;
/// at most `w*h/4 + 1` connected components, because a fresh union-find
/// label requires all four previously-scanned neighbours background).
#[derive(Debug)]
pub struct FrameArena {
    /// Union-find labelling, reused by spot removal and ghosting.
    labeling: Labeling,
    /// Border-flood background plane for `HoleFillMode::FloodFill`.
    flood: Vec<u64>,
    /// Ping-pong plane for the iterated paper rule.
    tmp: BitMask,
    /// Eq. 1 shadow predicate over raw-foreground pixels.
    pred: Mask,
    /// Hole-filled pixels missing from `raw` (lazy shadow evaluation).
    extra: Mask,
    /// Per-label moving-pixel counts (ghost stage).
    moving: Vec<usize>,
    /// Per-label total-pixel counts (ghost stage).
    total: Vec<usize>,
    /// Per-label ghost verdict (ghost stage).
    is_ghost: Vec<bool>,
}

impl Default for FrameArena {
    fn default() -> Self {
        FrameArena {
            labeling: Labeling::empty(),
            flood: Vec::new(),
            tmp: BitMask::new(0, 0),
            pred: Mask::new(0, 0),
            extra: Mask::new(0, 0),
            moving: Vec::new(),
            total: Vec::new(),
            is_ghost: Vec::new(),
        }
    }
}

impl FrameArena {
    /// Pre-reserves every buffer for `width x height` frames so later
    /// frames never grow them.
    pub fn reserve_for(&mut self, width: usize, height: usize) {
        self.labeling.reserve_for(width, height);
        let words = width.div_ceil(64) * height;
        if self.flood.capacity() < words {
            self.flood.reserve(words - self.flood.len());
        }
        self.tmp.reset(width, height);
        self.pred.reset(width, height);
        self.extra.reset(width, height);
        let comp_cap = width * height / 4 + 2;
        for counts in [&mut self.moving, &mut self.total] {
            if counts.capacity() < comp_cap {
                counts.reserve(comp_cap - counts.len());
            }
        }
        if self.is_ghost.capacity() < comp_cap {
            self.is_ghost.reserve(comp_cap - self.is_ghost.len());
        }
    }
}

/// One worker's segmentation state: the stage parameters, the shared
/// prepared background, and a private scratch arena.
///
/// [`segment_into`](FrameSegmenter::segment_into) runs subtraction →
/// noise filter → spot removal → ghost suppression → hole fill → shadow
/// removal for one frame, writing every intermediate into the caller's
/// [`FrameStages`]. Reusing both the segmenter and the output struct
/// across frames makes the steady state allocation-free.
#[derive(Debug, Clone)]
pub struct FrameSegmenter {
    config: PipelineConfig,
    shadow_detector: Option<ShadowDetector>,
    background: Arc<PreparedBackground>,
    arena: FrameArena,
}

impl Clone for FrameArena {
    /// Cloning a segmenter (to hand one to each worker thread) starts
    /// the clone with a fresh arena: scratch state is per-worker by
    /// design and carries no information between frames.
    fn clone(&self) -> Self {
        FrameArena::default()
    }
}

impl FrameSegmenter {
    /// Creates a segmenter for the given stage parameters and prepared
    /// background. The arena is pre-reserved for the background's
    /// dimensions.
    pub fn new(config: &PipelineConfig, background: Arc<PreparedBackground>) -> Self {
        Self::new_with_arena(config, background, FrameArena::default())
    }

    /// As [`FrameSegmenter::new`], but adopting an existing (typically
    /// already-warmed) arena instead of allocating a fresh one — the
    /// reuse half of [`FrameSegmenter::into_parts`]. Scratch contents
    /// never influence results, so this is a pure allocation saving.
    pub fn new_with_arena(
        config: &PipelineConfig,
        background: Arc<PreparedBackground>,
        mut arena: FrameArena,
    ) -> Self {
        let (w, h) = background.frame().dims();
        arena.reserve_for(w, h);
        FrameSegmenter {
            shadow_detector: config.shadow.map(ShadowDetector::new),
            config: config.clone(),
            background,
            arena,
        }
    }

    /// Dismantles the segmenter into its heavy reusable parts: the
    /// shared prepared background and the scratch arena. A session pool
    /// reclaims both when a stream ends so the next stream in the slot
    /// starts with warmed buffers.
    pub fn into_parts(self) -> (Arc<PreparedBackground>, FrameArena) {
        (self.background, self.arena)
    }

    /// The prepared background in use.
    pub fn background(&self) -> &PreparedBackground {
        &self.background
    }

    /// Segments one frame into a fresh [`FrameStages`].
    ///
    /// # Errors
    ///
    /// See [`FrameSegmenter::segment_into`].
    pub fn segment(
        &mut self,
        frame: &Frame,
        previous: Option<&Frame>,
    ) -> Result<FrameStages, SegmentError> {
        let mut out = FrameStages::empty();
        self.segment_into(frame, previous, &mut out)?;
        Ok(out)
    }

    /// Segments one frame, writing every intermediate into `out`.
    ///
    /// `previous` is the previous *input* frame (ghost suppression
    /// compares motion against it); pass `None` on the first frame.
    /// With a warmed arena and a reused `out`, performs no heap
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the frame and background dimensions differ (they come
    /// from the same pipeline, so a mismatch is a programming error).
    ///
    /// # Errors
    ///
    /// Returns [`SegmentError::Image`] when `previous` has different
    /// dimensions from `frame`.
    pub fn segment_into(
        &mut self,
        frame: &Frame,
        previous: Option<&Frame>,
        out: &mut FrameStages,
    ) -> Result<(), SegmentError> {
        self.segment_inner(frame, previous, out, None)
    }

    /// [`segment_into`](FrameSegmenter::segment_into) with per-stage
    /// wall-clock accounting recorded into `profiler` against the
    /// [`spans::SEGMENT_STAGES`] span names (the perf bench uses this to
    /// attribute time to individual kernels). The untimed path never
    /// reads the clock.
    ///
    /// # Panics / Errors
    ///
    /// As [`segment_into`](FrameSegmenter::segment_into).
    pub fn segment_into_profiled(
        &mut self,
        frame: &Frame,
        previous: Option<&Frame>,
        out: &mut FrameStages,
        profiler: &mut Profiler,
    ) -> Result<(), SegmentError> {
        self.segment_inner(frame, previous, out, Some(profiler))
    }

    fn segment_inner(
        &mut self,
        frame: &Frame,
        previous: Option<&Frame>,
        out: &mut FrameStages,
        mut profiler: Option<&mut Profiler>,
    ) -> Result<(), SegmentError> {
        assert_eq!(
            frame.dims(),
            self.background.frame().dims(),
            "frame and background must share dimensions"
        );
        let mut clock = profiler.as_ref().map(|_| Instant::now());
        let FrameSegmenter {
            config,
            shadow_detector,
            background,
            arena,
        } = self;

        // Steps 2 + 5a fused: raw subtraction and, for raw pixels, the
        // Eq. 1 shadow predicate against the cached background HSV.
        extract_fused(
            frame,
            background,
            config.foreground.threshold,
            shadow_detector.as_ref(),
            &mut out.raw,
            &mut arena.pred,
        );
        stamp(&mut clock, profiler.as_deref_mut(), spans::SEGMENT_EXTRACT);

        // Step 3a: word-parallel 8-neighbour vote.
        out.raw
            .bits()
            .neighbor_filter_into(config.noise.neighbor_threshold, out.denoised.bits_mut());
        stamp(&mut clock, profiler.as_deref_mut(), spans::SEGMENT_DENOISE);

        // Step 3b: small-spot removal via the reusable labelling.
        arena.labeling.relabel(&out.denoised, Connectivity::Eight);
        arena.labeling.filter_by_area_into(
            &out.denoised,
            config.spots.min_area,
            &mut out.despotted,
        );
        stamp(&mut clock, profiler.as_deref_mut(), spans::SEGMENT_DESPOT);

        // Step 3c (extension): motion-based ghost suppression.
        suppress_ghosts(config, arena, frame, previous, out)?;
        stamp(&mut clock, profiler.as_deref_mut(), spans::SEGMENT_DEGHOST);

        // Step 4: hole filling.
        match config.holes {
            HoleFillMode::PaperRule { max_iters } => {
                out.deghosted.bits().fill_paper_rule_iterated_into(
                    max_iters,
                    out.filled.bits_mut(),
                    &mut arena.tmp,
                );
            }
            HoleFillMode::FloodFill => {
                out.deghosted
                    .bits()
                    .fill_enclosed_holes_into(out.filled.bits_mut(), &mut arena.flood);
            }
        }
        stamp(&mut clock, profiler.as_deref_mut(), spans::SEGMENT_FILL);

        // Step 5b: assemble the shadow mask. `pred` already covers
        // every raw pixel, so `filled ∩ pred` is the shadow verdict for
        // raw foreground; the only pixels of `filled` it can miss are
        // the hole-filled ones (`filled \ raw`), evaluated lazily —
        // holes are sparse, so this stays cheap.
        if let Some(det) = shadow_detector.as_ref() {
            out.filled
                .bits()
                .intersect_into(arena.pred.bits(), out.shadow.bits_mut());
            out.filled
                .bits()
                .difference_into(out.raw.bits(), arena.extra.bits_mut());
            let (w, _) = frame.dims();
            let pixels = frame.as_slice();
            let bg_hsv = background.hsv();
            for (x, y) in arena.extra.foreground_pixels() {
                let idx = y * w + x;
                if det.is_shadow_pixel(pixels[idx].to_hsv(), bg_hsv[idx]) {
                    out.shadow.set(x, y, true);
                }
            }
            out.filled
                .bits()
                .difference_into(out.shadow.bits(), out.final_mask.bits_mut());
        } else {
            let (w, h) = frame.dims();
            out.shadow.reset(w, h);
            out.final_mask.clone_from(&out.filled);
        }
        stamp(&mut clock, profiler, spans::SEGMENT_SHADOW);
        Ok(())
    }
}

/// One pass over the frame: the raw subtraction mask and, for each raw
/// pixel, the Eq. 1 shadow predicate against the cached background HSV.
/// Only pixels that cross the subtraction threshold pay the frame-side
/// `to_hsv()`; the background side is free.
fn extract_fused(
    frame: &Frame,
    background: &PreparedBackground,
    threshold: u32,
    shadow: Option<&ShadowDetector>,
    raw: &mut Mask,
    pred: &mut Mask,
) {
    let (w, h) = frame.dims();
    raw.reset(w, h);
    pred.reset(w, h);
    let pixels = frame.as_slice();
    let bg_pixels = background.frame().as_slice();
    let bg_hsv = background.hsv();
    let words_per_row = raw.bits().words_per_row();
    for y in 0..h {
        for j in 0..words_per_row {
            let x0 = j * 64;
            let x1 = (x0 + 64).min(w);
            let mut raw_word = 0u64;
            let mut pred_word = 0u64;
            for x in x0..x1 {
                let idx = y * w + x;
                let px = pixels[idx];
                if px.l1_distance(bg_pixels[idx]) > threshold {
                    let bit = 1u64 << (x - x0);
                    raw_word |= bit;
                    if let Some(det) = shadow {
                        if det.is_shadow_pixel(px.to_hsv(), bg_hsv[idx]) {
                            pred_word |= bit;
                        }
                    }
                }
            }
            raw.bits_mut().row_mut(y)[j] = raw_word;
            pred.bits_mut().row_mut(y)[j] = pred_word;
        }
    }
}

/// Step 3c with arena-backed counters: per-component moving fractions
/// against the previous input frame, bit-identical to
/// [`GhostDetector::suppress`](crate::ghosts::GhostDetector::suppress).
fn suppress_ghosts(
    config: &PipelineConfig,
    arena: &mut FrameArena,
    frame: &Frame,
    previous: Option<&Frame>,
    out: &mut FrameStages,
) -> Result<(), SegmentError> {
    out.ghost_verdicts.clear();
    let (Some(ghost_config), Some(prev)) = (&config.ghosts, previous) else {
        // Stage disabled, or the clip's first frame: pass through.
        out.deghosted.clone_from(&out.despotted);
        return Ok(());
    };
    if prev.dims() != frame.dims() {
        return Err(SegmentError::Image(
            slj_imgproc::ImgError::DimensionMismatch {
                left: prev.dims(),
                right: frame.dims(),
            },
        ));
    }

    arena.labeling.relabel(&out.despotted, Connectivity::Eight);
    let n = arena.labeling.len();
    arena.moving.clear();
    arena.moving.resize(n + 1, 0);
    arena.total.clear();
    arena.total.resize(n + 1, 0);
    for (x, y) in out.despotted.foreground_pixels() {
        let label = arena.labeling.label_at(x, y) as usize;
        arena.total[label] += 1;
        if frame.get(x, y).l1_distance(prev.get(x, y)) > ghost_config.motion_threshold {
            arena.moving[label] += 1;
        }
    }

    arena.is_ghost.clear();
    arena.is_ghost.resize(n + 1, false);
    for component in arena.labeling.components() {
        let label = component.label as usize;
        let fraction = if arena.total[label] == 0 {
            0.0
        } else {
            arena.moving[label] as f64 / arena.total[label] as f64
        };
        let ghost = fraction < ghost_config.min_moving_fraction;
        arena.is_ghost[label] = ghost;
        out.ghost_verdicts.push(GhostVerdict {
            label: component.label,
            area: component.area,
            moving_fraction: fraction,
            is_ghost: ghost,
        });
    }

    out.deghosted.clone_from(&out.despotted);
    for (x, y) in out.despotted.foreground_pixels() {
        if arena.is_ghost[arena.labeling.label_at(x, y) as usize] {
            out.deghosted.set(x, y, false);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::BackgroundEstimator;
    use crate::ghosts::GhostConfig;
    use crate::pipeline::SegmentPipeline;
    use slj_imgproc::image::ImageBuffer;
    use slj_imgproc::pixel::Rgb;
    use slj_motion::JumpConfig;
    use slj_video::{SceneConfig, SyntheticJump};

    fn short_jump(seed: u64) -> SyntheticJump {
        let jump = JumpConfig {
            frames: 10,
            ..JumpConfig::default()
        };
        SyntheticJump::generate(&SceneConfig::default(), &jump, seed)
    }

    #[test]
    fn prepared_background_caches_until_image_changes() {
        let a: Frame = ImageBuffer::filled(8, 4, Rgb::splat(100));
        let mut prepared = PreparedBackground::new(&a);
        assert_eq!(prepared.hsv().len(), 32);
        let before = prepared.hsv()[0];
        // Same image: no recompute.
        assert!(!prepared.update(&a.clone()));
        assert_eq!(prepared.hsv()[0], before);
        // One pixel changed: full recompute.
        let mut b = a.clone();
        b.set(3, 1, Rgb::splat(200));
        assert!(prepared.update(&b));
        assert_eq!(prepared.frame().get(3, 1), Rgb::splat(200));
        assert_eq!(prepared.hsv()[8 + 3], Rgb::splat(200).to_hsv());
        // Different dimensions always recompute.
        let c: Frame = ImageBuffer::filled(2, 2, Rgb::splat(100));
        assert!(prepared.update(&c));
        assert_eq!(prepared.hsv().len(), 4);
    }

    #[test]
    fn hsv_plane_matches_per_pixel_conversion() {
        let frame: Frame =
            ImageBuffer::from_fn(70, 5, |x, y| Rgb::new(x as u8, (y * 40) as u8, 200));
        let prepared = PreparedBackground::new(&frame);
        for y in 0..5 {
            for x in 0..70 {
                assert_eq!(prepared.hsv()[y * 70 + x], frame.get(x, y).to_hsv());
            }
        }
    }

    #[test]
    fn segmenter_matches_pipeline_per_frame() {
        // The segmenter is the pipeline's engine; driving it by hand
        // must reproduce SegmentPipeline::run exactly, ghosts included.
        let j = short_jump(3);
        let config = PipelineConfig {
            ghosts: Some(GhostConfig::default()),
            ..PipelineConfig::default()
        };
        let result = SegmentPipeline::new(config.clone()).run(&j.video).unwrap();
        let background = BackgroundEstimator::new(config.background)
            .estimate(&j.video)
            .unwrap();
        let prepared = Arc::new(PreparedBackground::new(&background.image));
        let mut segmenter = FrameSegmenter::new(&config, prepared);
        let frames = j.video.frames();
        let mut reused = FrameStages::empty();
        for (k, frame) in frames.iter().enumerate() {
            let previous = k.checked_sub(1).map(|p| &frames[p]);
            segmenter
                .segment_into(frame, previous, &mut reused)
                .unwrap();
            assert_eq!(reused, result.frames[k], "frame {k}");
        }
    }

    #[test]
    fn paper_rule_holes_also_match() {
        let j = short_jump(5);
        let config = PipelineConfig::paper();
        let result = SegmentPipeline::new(config.clone()).run(&j.video).unwrap();
        let background = BackgroundEstimator::new(config.background)
            .estimate(&j.video)
            .unwrap();
        let mut segmenter = FrameSegmenter::new(
            &config,
            Arc::new(PreparedBackground::new(&background.image)),
        );
        let frames = j.video.frames();
        for (k, frame) in frames.iter().enumerate() {
            let previous = k.checked_sub(1).map(|p| &frames[p]);
            let stages = segmenter.segment(frame, previous).unwrap();
            assert_eq!(stages, result.frames[k], "frame {k}");
        }
    }

    #[test]
    fn timed_segmentation_matches_untimed_and_accounts_time() {
        let j = short_jump(9);
        let config = PipelineConfig {
            ghosts: Some(GhostConfig::default()),
            ..PipelineConfig::default()
        };
        let background = BackgroundEstimator::new(config.background)
            .estimate(&j.video)
            .unwrap();
        let prepared = Arc::new(PreparedBackground::new(&background.image));
        let mut plain = FrameSegmenter::new(&config, Arc::clone(&prepared));
        let mut timed = FrameSegmenter::new(&config, prepared);
        let mut profiler = Profiler::default();
        let frames = j.video.frames();
        for (k, frame) in frames.iter().enumerate() {
            let previous = k.checked_sub(1).map(|p| &frames[p]);
            let expected = plain.segment(frame, previous).unwrap();
            let mut out = FrameStages::empty();
            timed
                .segment_into_profiled(frame, previous, &mut out, &mut profiler)
                .unwrap();
            assert_eq!(out, expected, "frame {k}");
        }
        // Every stage ran at least once, only the six stage spans were
        // recorded, and the accumulator adds up.
        assert!(profiler.total() > std::time::Duration::ZERO);
        assert!(profiler.get(spans::SEGMENT_EXTRACT) > std::time::Duration::ZERO);
        assert_eq!(profiler.iter().count(), spans::SEGMENT_STAGES.len());
        assert_eq!(
            profiler.total(),
            spans::SEGMENT_STAGES.iter().map(|s| profiler.get(s)).sum()
        );
    }

    #[test]
    fn shadow_disabled_yields_blank_shadow_mask() {
        let j = short_jump(7);
        let config = PipelineConfig {
            shadow: None,
            ..PipelineConfig::default()
        };
        let background = BackgroundEstimator::new(config.background)
            .estimate(&j.video)
            .unwrap();
        let mut segmenter = FrameSegmenter::new(
            &config,
            Arc::new(PreparedBackground::new(&background.image)),
        );
        let stages = segmenter.segment(&j.video.frames()[4], None).unwrap();
        assert!(stages.shadow.is_blank());
        assert_eq!(stages.final_mask, stages.filled);
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn mismatched_frame_panics() {
        let bg: Frame = ImageBuffer::filled(8, 8, Rgb::BLACK);
        let mut segmenter = FrameSegmenter::new(
            &PipelineConfig::default(),
            Arc::new(PreparedBackground::new(&bg)),
        );
        let wrong: Frame = ImageBuffer::filled(4, 4, Rgb::BLACK);
        let _ = segmenter.segment(&wrong, None);
    }

    #[test]
    fn mismatched_previous_frame_is_an_error() {
        let bg: Frame = ImageBuffer::filled(8, 8, Rgb::BLACK);
        let config = PipelineConfig {
            ghosts: Some(GhostConfig::default()),
            ..PipelineConfig::default()
        };
        let mut segmenter = FrameSegmenter::new(&config, Arc::new(PreparedBackground::new(&bg)));
        let frame: Frame = ImageBuffer::filled(8, 8, Rgb::splat(200));
        let small: Frame = ImageBuffer::filled(4, 4, Rgb::BLACK);
        assert!(segmenter.segment(&frame, Some(&small)).is_err());
    }
}
