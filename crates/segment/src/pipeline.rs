//! The composed five-step pipeline.
//!
//! [`SegmentPipeline::run`] estimates the background once, then processes
//! every frame through subtraction → noise filter → spot removal → hole
//! fill → shadow removal, keeping every intermediate mask (the paper's
//! Figure 2 panels (a)–(d) and Figure 3) in a [`FrameStages`] so
//! experiments can measure each stage's contribution.

use crate::background::{BackgroundConfig, BackgroundEstimator, EstimatedBackground};
use crate::cleanup::{HoleFillMode, NoiseFilterConfig, SpotRemoverConfig};
use crate::error::SegmentError;
use crate::foreground::ForegroundConfig;
use crate::ghosts::{GhostConfig, GhostVerdict};
use crate::quality::{self, FrameQuality, QualityConfig};
use crate::segmenter::{FrameSegmenter, PreparedBackground};
use crate::shadow::ShadowParams;
use serde::{Deserialize, Serialize};
use slj_imgproc::mask::Mask;
use slj_runtime::Parallelism;
use slj_video::{Frame, Video};
use std::sync::Arc;

/// Optional spatial smoothing applied to every frame before Step 1
/// (extension): knocks down per-pixel sensor noise ahead of the
/// subtraction threshold. Worth enabling only under *heavy* noise —
/// smoothing also smears a false-positive halo around the body
/// boundary, which outweighs the speckle suppression when the sensor is
/// reasonably clean (measured in `pipeline::tests`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Presmooth {
    /// No smoothing (the paper's pipeline).
    #[default]
    None,
    /// Box blur with the given radius (window `2r+1`).
    Box {
        /// Blur radius in pixels.
        radius: usize,
    },
    /// 3×3 per-channel median filter.
    Median,
}

impl Presmooth {
    /// Applies the smoothing to one frame (`None` returns a plain
    /// clone). Public because a streaming caller smooths frames one at
    /// a time as they arrive, where the batch pipeline smooths the clip
    /// up front.
    pub fn apply(&self, frame: &slj_video::Frame) -> slj_video::Frame {
        match self {
            Presmooth::None => frame.clone(),
            Presmooth::Box { radius } => slj_imgproc::filter::box_blur(frame, *radius),
            Presmooth::Median => slj_imgproc::filter::median_filter(frame),
        }
    }

    /// As [`Presmooth::apply`], writing into a reused output frame.
    /// Value-identical; with `None` (the default) and a warmed `out`
    /// this performs no heap allocation, which keeps the streaming
    /// per-frame path alloc-free.
    pub fn apply_into(&self, frame: &slj_video::Frame, out: &mut slj_video::Frame) {
        match self {
            Presmooth::None => out.copy_from(frame),
            smoothing => *out = smoothing.apply(frame),
        }
    }
}

/// Configuration of the full pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Step 0 (extension): per-frame spatial smoothing.
    pub presmooth: Presmooth,
    /// Step 1: background estimation.
    pub background: BackgroundConfig,
    /// Step 2: subtraction threshold.
    pub foreground: ForegroundConfig,
    /// Step 3a: neighbour-vote noise filter.
    pub noise: NoiseFilterConfig,
    /// Step 3b: small-spot removal.
    pub spots: SpotRemoverConfig,
    /// Step 3c (extension, after ref. \[3\]): motion-based ghost
    /// suppression; `None` disables the stage.
    pub ghosts: Option<GhostConfig>,
    /// Step 4: hole filling.
    pub holes: HoleFillMode,
    /// Step 5: HSV shadow removal; `None` disables the step.
    pub shadow: Option<ShadowParams>,
    /// Step 6 (extension): per-frame silhouette health thresholds.
    pub quality: QualityConfig,
    /// Worker threads for the per-frame stages (subtraction → cleanup →
    /// shadow). The background estimate is shared and ghost detection
    /// compares against the previous *input* frame, so frames are
    /// independent once Step 1 has run — the fan-out is exact, not
    /// approximate, and output order is frame order regardless of
    /// thread count.
    pub parallelism: Parallelism,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            presmooth: Presmooth::None,
            background: BackgroundConfig::default(),
            foreground: ForegroundConfig::default(),
            noise: NoiseFilterConfig::default(),
            spots: SpotRemoverConfig::default(),
            ghosts: None,
            holes: HoleFillMode::FloodFill,
            shadow: Some(ShadowParams::default()),
            quality: QualityConfig::default(),
            parallelism: Parallelism::Serial,
        }
    }
}

impl PipelineConfig {
    /// The pipeline exactly as the paper describes it: last-stable
    /// background, the local hole-fill rule, shadow removal on, no
    /// ghost suppression.
    pub fn paper() -> Self {
        PipelineConfig {
            background: BackgroundConfig::paper(),
            holes: HoleFillMode::PaperRule { max_iters: 8 },
            ..PipelineConfig::default()
        }
    }

    /// The most robust configuration: median background *and* ghost
    /// suppression (belt and braces against background-model errors),
    /// flood-fill holes, shadow removal.
    pub fn robust() -> Self {
        PipelineConfig {
            ghosts: Some(GhostConfig::default()),
            ..PipelineConfig::default()
        }
    }
}

/// Every intermediate of one frame's segmentation, named after the
/// paper's Figure 2/3 panels.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameStages {
    /// Fig. 2(a): raw background subtraction.
    pub raw: Mask,
    /// Fig. 2(b): after the 8-neighbour noise filter.
    pub denoised: Mask,
    /// Fig. 2(c): after small-spot removal.
    pub despotted: Mask,
    /// After ghost suppression (equals `despotted` when the stage is
    /// disabled or on the first frame).
    pub deghosted: Mask,
    /// Per-component ghost verdicts (empty when the stage is disabled).
    pub ghost_verdicts: Vec<GhostVerdict>,
    /// Fig. 2(d): after hole filling.
    pub filled: Mask,
    /// Fig. 3: the pixels classified as shadow (blank when Step 5 is
    /// disabled).
    pub shadow: Mask,
    /// The final silhouette: `filled` minus `shadow`.
    pub final_mask: Mask,
}

impl FrameStages {
    /// An all-empty stage set (0×0 masks), the starting point for
    /// [`FrameSegmenter::segment_into`]. Reusing one instance across
    /// frames lets every stage write into already-sized buffers, which
    /// is what makes steady-state segmentation allocation-free.
    pub fn empty() -> Self {
        FrameStages {
            raw: Mask::new(0, 0),
            denoised: Mask::new(0, 0),
            despotted: Mask::new(0, 0),
            deghosted: Mask::new(0, 0),
            ghost_verdicts: Vec::new(),
            filled: Mask::new(0, 0),
            shadow: Mask::new(0, 0),
            final_mask: Mask::new(0, 0),
        }
    }

    /// The frame's segmentation span: the pixel population after every
    /// stage, read straight from the stage masks. A pure function of
    /// the masks, so the observation is identical at every
    /// `Parallelism` setting by construction.
    pub fn observe(&self) -> slj_obs::SegmentObs {
        slj_obs::SegmentObs {
            raw_px: self.raw.count() as u64,
            denoised_px: self.denoised.count() as u64,
            despotted_px: self.despotted.count() as u64,
            deghosted_px: self.deghosted.count() as u64,
            ghost_components: self.ghost_verdicts.len() as u64,
            ghosts_removed: self.ghost_verdicts.iter().filter(|v| v.is_ghost).count() as u64,
            filled_px: self.filled.count() as u64,
            shadow_px: self.shadow.count() as u64,
            final_px: self.final_mask.count() as u64,
        }
    }
}

/// The output of the pipeline over a clip.
#[derive(Debug, Clone)]
pub struct SegmentationResult {
    /// The Step-1 background estimate.
    pub background: EstimatedBackground,
    /// Per-frame intermediates, in frame order.
    pub frames: Vec<FrameStages>,
    /// Per-frame health of the final masks, in frame order.
    pub quality: Vec<FrameQuality>,
}

impl SegmentationResult {
    /// Frames whose final mask failed at least one health check.
    pub fn unhealthy_frames(&self) -> Vec<usize> {
        self.quality
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_healthy())
            .map(|(k, _)| k)
            .collect()
    }
}

/// The composed segmentation pipeline.
#[derive(Debug, Clone, Default)]
pub struct SegmentPipeline {
    config: PipelineConfig,
}

impl SegmentPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        SegmentPipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs all five steps over a clip.
    ///
    /// When [`PipelineConfig::parallelism`] resolves to more than one
    /// thread, the per-frame stages fan out over crossbeam scoped
    /// threads in contiguous frame chunks. Frame k only ever reads the
    /// shared background estimate and input frames k and k−1, so the
    /// parallel result is bit-identical to the serial one (tested).
    ///
    /// # Errors
    ///
    /// Returns [`SegmentError::TooFewFrames`] for clips with fewer than
    /// two frames (background estimation needs a frame pair).
    pub fn run(&self, video: &Video) -> Result<SegmentationResult, SegmentError> {
        // Step 0 (optional): smooth every frame before anything else.
        // `Presmooth::None` (the default) borrows the input untouched.
        let smoothed;
        let video = match self.config.presmooth {
            Presmooth::None => video,
            mode => {
                smoothed = Video::new(video.iter().map(|f| mode.apply(f)).collect(), video.fps());
                &smoothed
            }
        };
        let background = BackgroundEstimator::new(self.config.background).estimate(video)?;
        let prepared = Arc::new(PreparedBackground::new(&background.image));
        self.run_prepared(video, background, prepared)
    }

    /// Runs the per-frame stages (Steps 2–5) over a clip whose Step-1
    /// background has already been estimated and prepared.
    ///
    /// This is the entry point for callers that amortise the background
    /// work across several runs of the same scene — the perf bench and
    /// repeated re-analysis share one [`EstimatedBackground`] and one
    /// HSV-converted [`PreparedBackground`] per configuration instead
    /// of re-deriving both on every run. `video` must already be
    /// presmoothed according to [`PipelineConfig::presmooth`] ([`run`]
    /// takes care of that; with the default `Presmooth::None` the raw
    /// clip is correct as-is).
    ///
    /// [`run`]: SegmentPipeline::run
    ///
    /// # Errors
    ///
    /// Propagates [`SegmentError`] from the per-frame stages; the
    /// too-few-frames validation lives in background estimation, so
    /// this entry point accepts any clip the caller has a background
    /// for.
    pub fn run_prepared(
        &self,
        video: &Video,
        background: EstimatedBackground,
        prepared: Arc<PreparedBackground>,
    ) -> Result<SegmentationResult, SegmentError> {
        let inputs = video.frames();
        let threads = self.config.parallelism.threads().min(inputs.len());
        let frames = if threads <= 1 {
            let mut segmenter = FrameSegmenter::new(&self.config, prepared);
            let mut frames = Vec::with_capacity(inputs.len());
            for (k, frame) in inputs.iter().enumerate() {
                frames.push(segmenter.segment(frame, previous_input(inputs, k))?);
            }
            frames
        } else {
            // Each worker owns one contiguous chunk of the output and a
            // private `FrameSegmenter` (its scratch arena is reused for
            // every frame of the chunk); the shared prepared background
            // is read-only. Write targets are disjoint and results land
            // in frame order, so only throughput depends on the thread
            // count.
            let mut slots: Vec<Option<Result<FrameStages, SegmentError>>> = Vec::new();
            slots.resize_with(inputs.len(), || None);
            let chunk = inputs.len().div_ceil(threads);
            let config = &self.config;
            crossbeam::scope(|scope| {
                for (ci, out) in slots.chunks_mut(chunk).enumerate() {
                    let prepared = Arc::clone(&prepared);
                    scope.spawn(move |_| {
                        let mut segmenter = FrameSegmenter::new(config, prepared);
                        for (i, slot) in out.iter_mut().enumerate() {
                            let k = ci * chunk + i;
                            *slot = Some(segmenter.segment(&inputs[k], previous_input(inputs, k)));
                        }
                    });
                }
            })
            .expect("segmentation worker panicked");
            slots
                .into_iter()
                .map(|s| s.expect("every frame processed"))
                .collect::<Result<Vec<_>, _>>()?
        };

        let final_masks: Vec<_> = frames.iter().map(|s| &s.final_mask).collect();
        let quality = quality::assess_masks(&final_masks, &self.config.quality);
        Ok(SegmentationResult {
            background,
            frames,
            quality,
        })
    }
}

/// The previous *input* frame — what ghost detection compares motion
/// against. Depending only on the immutable input (never on the
/// previous frame's output) is what makes frames independent.
fn previous_input(inputs: &[Frame], k: usize) -> Option<&Frame> {
    k.checked_sub(1).map(|p| &inputs[p])
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::JumpConfig;
    use slj_video::{SceneConfig, SyntheticJump};

    fn short_jump(scene: &SceneConfig, seed: u64) -> SyntheticJump {
        // A smaller scene keeps debug-build tests fast.
        let jump = JumpConfig {
            frames: 12,
            ..JumpConfig::default()
        };
        SyntheticJump::generate(scene, &jump, seed)
    }

    #[test]
    fn clean_scene_segments_nearly_perfectly() {
        let j = short_jump(&SceneConfig::clean(), 1);
        let result = SegmentPipeline::default().run(&j.video).unwrap();
        // Skip the first and last frames (background estimation edge
        // effects live there).
        for k in 2..j.len() - 2 {
            let m = result.frames[k]
                .final_mask
                .metrics_against(&j.silhouettes[k])
                .unwrap();
            assert!(m.iou() > 0.85, "frame {k}: {m}");
        }
    }

    #[test]
    fn noisy_scene_stages_monotonically_improve() {
        let j = short_jump(&SceneConfig::default(), 2);
        let result = SegmentPipeline::default().run(&j.video).unwrap();
        let k = j.len() / 2;
        let gt = &j.silhouettes[k];
        let s = &result.frames[k];
        let raw = s.raw.metrics_against(gt).unwrap();
        let denoised = s.denoised.metrics_against(gt).unwrap();
        let despotted = s.despotted.metrics_against(gt).unwrap();
        let final_m = s.final_mask.metrics_against(gt).unwrap();
        // Each repair stage should not hurt, and the final mask must be
        // clearly better than the raw subtraction.
        assert!(denoised.precision() >= raw.precision(), "noise filter");
        assert!(
            despotted.precision() >= denoised.precision(),
            "spot removal"
        );
        assert!(final_m.iou() > raw.iou(), "pipeline must improve IoU");
        assert!(final_m.iou() > 0.6, "final IoU {}", final_m.iou());
    }

    #[test]
    fn shadow_step_removes_shadow_pixels() {
        let j = short_jump(&SceneConfig::default(), 3);
        let with = SegmentPipeline::default().run(&j.video).unwrap();
        let without = SegmentPipeline::new(PipelineConfig {
            shadow: None,
            ..PipelineConfig::default()
        })
        .run(&j.video)
        .unwrap();
        let k = j.len() / 2;
        let gt = &j.silhouettes[k];
        let iou_with = with.frames[k].final_mask.iou(gt).unwrap();
        let iou_without = without.frames[k].final_mask.iou(gt).unwrap();
        assert!(
            iou_with > iou_without,
            "shadow removal should help: {iou_with} vs {iou_without}"
        );
        assert!(!with.frames[k].shadow.is_blank());
        assert!(without.frames[k].shadow.is_blank());
    }

    #[test]
    fn paper_config_also_works() {
        let j = short_jump(&SceneConfig::default(), 4);
        let result = SegmentPipeline::new(PipelineConfig::paper())
            .run(&j.video)
            .unwrap();
        let k = j.len() / 2;
        let iou = result.frames[k].final_mask.iou(&j.silhouettes[k]).unwrap();
        assert!(iou > 0.5, "paper pipeline IoU {iou}");
    }

    #[test]
    fn too_short_clip_errors() {
        let j = SyntheticJump::generate(
            &SceneConfig::clean(),
            &JumpConfig {
                frames: 2,
                ..JumpConfig::default()
            },
            5,
        );
        let one = slj_video::Video::new(vec![j.video.frames()[0].clone()], 10.0);
        assert!(matches!(
            SegmentPipeline::default().run(&one),
            Err(SegmentError::TooFewFrames { .. })
        ));
    }

    #[test]
    fn ghost_suppression_rescues_last_stable_background() {
        // The last-stable background burns the landed jumper in, which
        // haunts every frame as a static blob; ghost suppression removes
        // exactly that blob.
        use crate::background::{BackgroundConfig, UpdateMode};
        let j = short_jump(&SceneConfig::default(), 7);
        let base = PipelineConfig {
            background: BackgroundConfig {
                mode: UpdateMode::LastStable,
                ..BackgroundConfig::default()
            },
            ..PipelineConfig::default()
        };
        let with_ghosts = PipelineConfig {
            ghosts: Some(crate::ghosts::GhostConfig {
                motion_threshold: 40,
                min_moving_fraction: 0.04,
            }),
            ..base.clone()
        };
        let plain = SegmentPipeline::new(base).run(&j.video).unwrap();
        let ghosted = SegmentPipeline::new(with_ghosts).run(&j.video).unwrap();
        // Compare mid-clip precision (edges are weak for both).
        let k = j.len() / 2;
        let gt = &j.silhouettes[k];
        let p_plain = plain.frames[k].final_mask.metrics_against(gt).unwrap();
        let p_ghost = ghosted.frames[k].final_mask.metrics_against(gt).unwrap();
        assert!(
            p_ghost.precision() > p_plain.precision() + 0.1,
            "ghost suppression should remove the burnt-in blob: {} vs {}",
            p_ghost,
            p_plain
        );
        // And some component was actually classified as a ghost.
        assert!(ghosted.frames[k].ghost_verdicts.iter().any(|v| v.is_ghost));
    }

    #[test]
    fn presmoothing_rescues_heavy_noise() {
        // Under moderate noise, smoothing is a net negative (it smears a
        // false-positive halo around the body boundary); its value is
        // under *heavy* sensor noise, where speckle floods the raw mask.
        let mut scene = SceneConfig::default();
        scene.noise.pixel_jitter = 16; // L1 diffs up to 96 > threshold 60
        let j = short_jump(&scene, 9);
        let plain = SegmentPipeline::new(PipelineConfig::default())
            .run(&j.video)
            .unwrap();
        let smoothed = SegmentPipeline::new(PipelineConfig {
            presmooth: Presmooth::Box { radius: 1 },
            ..PipelineConfig::default()
        })
        .run(&j.video)
        .unwrap();
        let k = j.len() / 2;
        let gt = &j.silhouettes[k];
        let a = plain.frames[k].raw.metrics_against(gt).unwrap();
        let b = smoothed.frames[k].raw.metrics_against(gt).unwrap();
        assert!(
            b.precision() > a.precision() + 0.05,
            "smoothing should kill speckle: {} vs {}",
            b,
            a
        );
        // Median mode also runs end to end.
        let med = SegmentPipeline::new(PipelineConfig {
            presmooth: Presmooth::Median,
            ..PipelineConfig::default()
        })
        .run(&j.video)
        .unwrap();
        assert!(med.frames[k].final_mask.iou(gt).unwrap() > 0.5);
    }

    #[test]
    fn robust_config_enables_ghosts() {
        assert!(PipelineConfig::robust().ghosts.is_some());
        assert!(PipelineConfig::default().ghosts.is_none());
        assert!(PipelineConfig::paper().ghosts.is_none());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        // Ghost suppression on: it is the only stage with a cross-frame
        // input, so it is the one a botched parallelisation would break.
        let j = short_jump(&SceneConfig::default(), 11);
        let base = PipelineConfig::robust();
        let serial = SegmentPipeline::new(base.clone()).run(&j.video).unwrap();
        for parallelism in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Fixed(64),
        ] {
            let parallel = SegmentPipeline::new(PipelineConfig {
                parallelism,
                ..base.clone()
            })
            .run(&j.video)
            .unwrap();
            assert_eq!(
                parallel.frames, serial.frames,
                "parallelism = {parallelism}"
            );
            assert_eq!(
                parallel.quality, serial.quality,
                "parallelism = {parallelism}"
            );
            assert_eq!(
                parallel.background.image.as_slice(),
                serial.background.image.as_slice()
            );
        }
    }

    #[test]
    fn result_has_one_stage_set_per_frame() {
        let j = short_jump(&SceneConfig::clean(), 6);
        let result = SegmentPipeline::default().run(&j.video).unwrap();
        assert_eq!(result.frames.len(), j.len());
        assert_eq!(result.quality.len(), j.len());
        for s in &result.frames {
            assert_eq!(s.raw.dims(), j.video.dims());
            assert_eq!(s.final_mask.dims(), j.video.dims());
        }
    }

    #[test]
    fn normal_scenes_produce_healthy_quality() {
        // The health thresholds must not cry wolf: both the clean and
        // the paper-noise scenes should pass nearly every frame.
        for (scene, seed) in [(SceneConfig::clean(), 6), (SceneConfig::default(), 8)] {
            let j = short_jump(&scene, seed);
            let result = SegmentPipeline::default().run(&j.video).unwrap();
            let unhealthy = result.unhealthy_frames();
            assert!(
                unhealthy.len() <= 1,
                "scene seed {seed}: unhealthy frames {unhealthy:?}"
            );
        }
    }

    #[test]
    fn occluded_clip_is_flagged_unhealthy() {
        use slj_video::faults::{FaultConfig, FaultInjector};
        let j = short_jump(&SceneConfig::default(), 10);
        let cfg = FaultConfig {
            seed: 4,
            occlusion_bars: 6,
            ..FaultConfig::default()
        };
        let (faulty, _) = FaultInjector::new(cfg).inject(&j.video);
        let result = SegmentPipeline::default().run(&faulty).unwrap();
        // Static bars sit in the estimated background, so their harm is
        // where they cross the jumper: silhouettes get sliced apart.
        assert!(
            result.unhealthy_frames().len() >= 3,
            "six occlusion bars should shred several frames, got {:?}",
            result.unhealthy_frames()
        );
    }
}
