//! Per-frame segmentation health metrics.
//!
//! The paper assumes Section 2 always hands Section 3 a usable
//! silhouette. Under acquisition faults (occlusions, sensor bursts,
//! dropped frames) that assumption fails silently: the GA happily fits
//! a pose to a shredded or clipped mask and the score card inherits the
//! garbage. This module measures, per frame, whether the silhouette
//! *looks like* one standing-long-jumper before anything downstream
//! trusts it:
//!
//! * **Area ratio** — foreground area relative to a clip-level
//!   reference (the median frame area, a robust stand-in for the
//!   expected body area). Sensor bursts balloon the area; occlusions
//!   and drops shrink it.
//! * **Fragmentation** — how much of the foreground lies *outside* the
//!   largest connected component. Occlusion bars cut the body into
//!   pieces; heavy noise scatters confetti.
//! * **Border clip** — the fraction of foreground pixels hugging the
//!   image border. Camera jitter pushes the jumper off-frame, and a
//!   body cut by the frame edge loses limbs the stick model needs.
//!
//! [`assess_clip`] scores a whole [`SegmentationResult`]'s final masks
//! and flags each frame healthy or not against a [`QualityConfig`].

use serde::{Deserialize, Serialize};
use slj_imgproc::components::Labeling;
use slj_imgproc::mask::Mask;
use slj_imgproc::morph::Connectivity;

/// How the per-frame reference area is derived from the clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ReferenceMode {
    /// The median area over the *whole* clip — the most robust
    /// reference, but non-causal: frame k's verdict depends on frames
    /// after k, so it cannot be produced incrementally.
    #[default]
    ClipMedian,
    /// The median area over frames `0..=k` — causal, so a streaming
    /// analyzer can emit frame k's health the moment frame k is
    /// segmented, and a batch run reproduces it exactly.
    Causal,
}

/// Health thresholds for one frame's silhouette.
///
/// The defaults are deliberately lenient: they pass every frame the
/// synthetic scenes produce under the paper's own noise model, and trip
/// only on the grosser acquisition faults the injector simulates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityConfig {
    /// Minimum foreground area as a fraction of the clip's reference
    /// (median) area. Below this the body is mostly missing.
    pub min_area_ratio: f64,
    /// Maximum foreground area as a fraction of the reference area.
    /// Above this the mask has absorbed noise or background.
    pub max_area_ratio: f64,
    /// Maximum fraction of foreground outside the largest connected
    /// component.
    pub max_fragmentation: f64,
    /// Maximum fraction of foreground within [`Self::border_margin`]
    /// pixels of the image border.
    pub max_border_clip: f64,
    /// Width of the border band, pixels.
    pub border_margin: usize,
    /// How the reference area is derived.
    pub reference: ReferenceMode,
}

impl Default for QualityConfig {
    fn default() -> Self {
        // Thresholds chosen by the slj-eval ROC sweep against synthetic
        // ground truth (Youden's J over the full fault matrix; see
        // EXPERIMENTS.md): a frame whose area drops below 0.65× the
        // reference or fragments beyond 0.2 is usually one whose pose
        // estimate has gone materially wrong, while looser values let
        // bad frames through without catching more good ones.
        QualityConfig {
            min_area_ratio: 0.65,
            max_area_ratio: 2.2,
            max_fragmentation: 0.2,
            max_border_clip: 0.25,
            border_margin: 2,
            reference: ReferenceMode::ClipMedian,
        }
    }
}

/// Which health check a frame failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QualityIssue {
    /// Foreground area below `min_area_ratio` × reference.
    AreaTooSmall,
    /// Foreground area above `max_area_ratio` × reference.
    AreaTooLarge,
    /// Foreground split across components beyond `max_fragmentation`.
    Fragmented,
    /// Too much foreground pressed against the image border.
    BorderClipped,
}

impl std::fmt::Display for QualityIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QualityIssue::AreaTooSmall => "area too small",
            QualityIssue::AreaTooLarge => "area too large",
            QualityIssue::Fragmented => "fragmented",
            QualityIssue::BorderClipped => "border-clipped",
        };
        f.write_str(s)
    }
}

/// Health metrics of one frame's final silhouette.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameQuality {
    /// Foreground pixel count.
    pub area_px: usize,
    /// `area_px` over the clip's reference (median) area; 0 for a blank
    /// reference.
    pub area_ratio: f64,
    /// Fraction of foreground outside the largest connected component
    /// (0 = one solid body, → 1 = confetti).
    pub fragmentation: f64,
    /// Fraction of foreground within the border band.
    pub border_clip: f64,
    /// Centroid of the foreground, `(x, y)` pixels, if any.
    pub centroid: Option<(f64, f64)>,
    /// Checks this frame failed (empty = healthy).
    pub issues: Vec<QualityIssue>,
}

impl FrameQuality {
    /// Whether the frame passed every check.
    pub fn is_healthy(&self) -> bool {
        self.issues.is_empty()
    }

    /// Measures one mask against a reference area and thresholds.
    ///
    /// Allocating wrapper over [`FrameQuality::measure_with`].
    pub fn measure(mask: &Mask, reference_area: usize, config: &QualityConfig) -> FrameQuality {
        Self::measure_with(mask, reference_area, config, &mut Labeling::empty())
    }

    /// Like [`FrameQuality::measure`], but labels connected components
    /// into the caller's [`Labeling`] so a per-frame caller (the
    /// streaming analyzer) does no full-frame allocation.
    pub fn measure_with(
        mask: &Mask,
        reference_area: usize,
        config: &QualityConfig,
        labeling: &mut Labeling,
    ) -> FrameQuality {
        let area_px = mask.count();
        let (w, h) = mask.dims();

        labeling.relabel(mask, Connectivity::Eight);
        let largest = labeling.largest().map_or(0, |c| c.area);
        let fragmentation = if area_px == 0 {
            1.0
        } else {
            1.0 - largest as f64 / area_px as f64
        };

        let margin = config.border_margin;
        let mut border = 0usize;
        let mut sx = 0.0f64;
        let mut sy = 0.0f64;
        for (x, y) in mask.foreground_pixels() {
            sx += x as f64;
            sy += y as f64;
            let near_border = x < margin
                || y < margin
                || x + margin >= w.max(margin)
                || y + margin >= h.max(margin);
            if near_border {
                border += 1;
            }
        }
        let border_clip = if area_px == 0 {
            1.0
        } else {
            border as f64 / area_px as f64
        };
        let centroid = if area_px == 0 {
            None
        } else {
            Some((sx / area_px as f64, sy / area_px as f64))
        };

        let area_ratio = if reference_area == 0 {
            0.0
        } else {
            area_px as f64 / reference_area as f64
        };

        let mut issues = Vec::new();
        if area_ratio < config.min_area_ratio {
            issues.push(QualityIssue::AreaTooSmall);
        } else if area_ratio > config.max_area_ratio {
            issues.push(QualityIssue::AreaTooLarge);
        }
        if fragmentation > config.max_fragmentation {
            issues.push(QualityIssue::Fragmented);
        }
        if border_clip > config.max_border_clip {
            issues.push(QualityIssue::BorderClipped);
        }

        FrameQuality {
            area_px,
            area_ratio,
            fragmentation,
            border_clip,
            centroid,
            issues,
        }
    }
}

/// The clip-level reference area: the median per-frame foreground
/// count. Robust to a minority of faulty frames — a few ballooned or
/// vanished masks do not move the median the way they would a mean.
pub fn reference_area(masks: &[&Mask]) -> usize {
    median_area(masks.iter().map(|m| m.count()).collect())
}

/// The causal reference area at frame `k`: the median of
/// `areas[0..=k]`. This is what [`ReferenceMode::Causal`] evaluates and
/// what a streaming analyzer computes incrementally.
pub fn causal_reference_area(areas: &[usize], k: usize) -> usize {
    if areas.is_empty() {
        return 0;
    }
    median_area(areas[..=k.min(areas.len() - 1)].to_vec())
}

fn median_area(mut areas: Vec<usize>) -> usize {
    if areas.is_empty() {
        return 0;
    }
    areas.sort_unstable();
    areas[areas.len() / 2]
}

/// Assesses every final mask of a clip against the thresholds. Returns
/// one [`FrameQuality`] per frame, in frame order.
pub fn assess_masks(masks: &[&Mask], config: &QualityConfig) -> Vec<FrameQuality> {
    let mut labeling = Labeling::empty();
    match config.reference {
        ReferenceMode::ClipMedian => {
            let reference = reference_area(masks);
            masks
                .iter()
                .map(|m| FrameQuality::measure_with(m, reference, config, &mut labeling))
                .collect()
        }
        ReferenceMode::Causal => {
            let areas: Vec<usize> = masks.iter().map(|m| m.count()).collect();
            masks
                .iter()
                .enumerate()
                .map(|(k, m)| {
                    FrameQuality::measure_with(
                        m,
                        causal_reference_area(&areas, k),
                        config,
                        &mut labeling,
                    )
                })
                .collect()
        }
    }
}

/// Assesses a whole segmentation result's final masks.
pub fn assess_clip(
    result: &crate::pipeline::SegmentationResult,
    config: &QualityConfig,
) -> Vec<FrameQuality> {
    let masks: Vec<&Mask> = result.frames.iter().map(|s| &s.final_mask).collect();
    assess_masks(&masks, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(w: usize, h: usize, x0: usize, y0: usize, bw: usize, bh: usize) -> Mask {
        Mask::from_fn(w, h, |x, y| {
            x >= x0 && x < x0 + bw && y >= y0 && y < y0 + bh
        })
    }

    #[test]
    fn solid_centered_blob_is_healthy() {
        let m = blob(40, 30, 14, 8, 10, 14);
        let q = FrameQuality::measure(&m, m.count(), &QualityConfig::default());
        assert!(q.is_healthy(), "{:?}", q.issues);
        assert_eq!(q.area_ratio, 1.0);
        assert_eq!(q.fragmentation, 0.0);
        assert_eq!(q.border_clip, 0.0);
        let (cx, cy) = q.centroid.unwrap();
        assert!((cx - 18.5).abs() < 1e-9 && (cy - 14.5).abs() < 1e-9);
    }

    #[test]
    fn vanished_foreground_is_too_small() {
        let m = Mask::new(40, 30);
        let q = FrameQuality::measure(&m, 140, &QualityConfig::default());
        assert!(!q.is_healthy());
        assert!(q.issues.contains(&QualityIssue::AreaTooSmall));
        assert!(q.centroid.is_none());
    }

    #[test]
    fn ballooned_foreground_is_too_large() {
        let m = blob(40, 30, 5, 5, 30, 20);
        let q = FrameQuality::measure(&m, 100, &QualityConfig::default());
        assert!(q.issues.contains(&QualityIssue::AreaTooLarge));
    }

    #[test]
    fn split_body_is_fragmented() {
        // Two equal halves: fragmentation 0.5 > 0.35.
        let m = Mask::from_fn(40, 30, |x, y| {
            (5..15).contains(&y) && ((5..12).contains(&x) || (25..32).contains(&x))
        });
        let q = FrameQuality::measure(&m, m.count(), &QualityConfig::default());
        assert!(q.issues.contains(&QualityIssue::Fragmented));
    }

    #[test]
    fn edge_hugging_body_is_border_clipped() {
        let m = blob(40, 30, 0, 8, 4, 14);
        let q = FrameQuality::measure(&m, m.count(), &QualityConfig::default());
        assert!(
            q.issues.contains(&QualityIssue::BorderClipped),
            "border_clip {}",
            q.border_clip
        );
    }

    #[test]
    fn reference_area_is_the_median() {
        let big = blob(40, 30, 5, 5, 20, 20);
        let mid = blob(40, 30, 10, 10, 10, 14);
        let tiny = blob(40, 30, 10, 10, 2, 2);
        assert_eq!(reference_area(&[&big, &mid, &tiny]), mid.count());
        assert_eq!(reference_area(&[]), 0);
    }

    #[test]
    fn assess_masks_flags_the_odd_one_out() {
        let good = blob(40, 30, 14, 8, 10, 14);
        let bad = Mask::new(40, 30);
        let masks = vec![&good, &good, &bad, &good, &good];
        let quality = assess_masks(&masks, &QualityConfig::default());
        assert_eq!(quality.len(), 5);
        assert!(quality[0].is_healthy());
        assert!(!quality[2].is_healthy());
    }

    #[test]
    fn causal_reference_is_the_prefix_median() {
        let areas = [100, 40, 120, 90, 10];
        assert_eq!(causal_reference_area(&areas, 0), 100);
        assert_eq!(causal_reference_area(&areas, 1), 100); // of [40,100]
        assert_eq!(causal_reference_area(&areas, 2), 100); // of [40,100,120]
        assert_eq!(causal_reference_area(&areas, 3), 100); // of [40,90,100,120]
        assert_eq!(causal_reference_area(&areas, 4), 90);
        assert_eq!(causal_reference_area(&[], 0), 0);
    }

    #[test]
    fn causal_mode_matches_per_prefix_measurement() {
        let big = blob(40, 30, 5, 5, 20, 20);
        let mid = blob(40, 30, 10, 10, 10, 14);
        let tiny = blob(40, 30, 10, 10, 2, 2);
        let masks = vec![&mid, &big, &tiny, &mid];
        let config = QualityConfig {
            reference: ReferenceMode::Causal,
            ..QualityConfig::default()
        };
        let causal = assess_masks(&masks, &config);
        let areas: Vec<usize> = masks.iter().map(|m| m.count()).collect();
        for (k, q) in causal.iter().enumerate() {
            let reference = causal_reference_area(&areas, k);
            assert_eq!(*q, FrameQuality::measure(masks[k], reference, &config));
        }
        // Frame 0 is always its own reference: ratio exactly 1.
        assert_eq!(causal[0].area_ratio, 1.0);
    }
}
