//! Step 1 — background estimation by temporal change detection.
//!
//! The paper: *"the background can be estimated by change detection. The
//! pixels with a very small change in two consecutive frames are saved as
//! part of the background. This process goes from the first two frames to
//! the final two frames."*
//!
//! That is [`UpdateMode::LastStable`]: scan consecutive frame pairs and,
//! wherever the pair agrees within a threshold, overwrite the background
//! estimate with the current value. Where the jumper stood at the start
//! the estimate is later corrected (he moves away); the known weakness is
//! the *end* of the clip, where the recovered jumper is nearly still and
//! can burn into the estimate. [`UpdateMode::MedianOfStable`] is this
//! reproduction's extension that fixes exactly that by taking a per-pixel
//! median over all stable observations; the Fig. 1 experiment compares
//! the two.

use crate::error::SegmentError;
use serde::{Deserialize, Serialize};
use slj_imgproc::image::ImageBuffer;
use slj_imgproc::pixel::Rgb;
use slj_video::{Frame, Video};

/// How stable observations are combined into the background estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateMode {
    /// The paper's method: the latest stable observation wins.
    LastStable,
    /// Extension: per-pixel, per-channel median over all stable
    /// observations (robust to the jumper resting at either end of the
    /// clip).
    MedianOfStable,
}

/// Configuration of the background estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundConfig {
    /// Maximum L1 colour change between consecutive frames for a pixel
    /// to count as "no change" (the paper's "very small change").
    /// Must exceed sensor noise; default 24 covers ±5/channel jitter.
    pub diff_threshold: u32,
    /// Combination rule for stable observations.
    pub mode: UpdateMode,
    /// `None` (the paper): estimate from the whole clip. `Some(w)`:
    /// estimate from the first `w` frames only — a *causal* estimate
    /// that a streaming analyzer can compute after buffering `w` frames
    /// and that a batch run reproduces exactly. Clips shorter than `w`
    /// use every frame they have.
    pub warmup: Option<usize>,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            diff_threshold: 24,
            mode: UpdateMode::MedianOfStable,
            warmup: None,
        }
    }
}

impl BackgroundConfig {
    /// The configuration the paper describes (last stable observation
    /// wins).
    pub fn paper() -> Self {
        BackgroundConfig {
            diff_threshold: 24,
            mode: UpdateMode::LastStable,
            warmup: None,
        }
    }
}

/// The outcome of background estimation.
#[derive(Debug, Clone)]
pub struct EstimatedBackground {
    /// The estimated background image.
    pub image: Frame,
    /// Per-pixel count of stable frame pairs that contributed; 0 means
    /// the pixel never stabilised and fell back to the first frame.
    pub support: ImageBuffer<u16>,
}

impl EstimatedBackground {
    /// Fraction of pixels with at least one stable observation.
    pub fn coverage(&self) -> f64 {
        if self.support.is_empty() {
            return 0.0;
        }
        let covered = self.support.as_slice().iter().filter(|&&c| c > 0).count();
        covered as f64 / self.support.len() as f64
    }

    /// Mean absolute per-channel error against a reference background.
    ///
    /// # Errors
    ///
    /// Returns [`SegmentError::Image`] on dimension mismatch.
    pub fn mae_against(&self, reference: &Frame) -> Result<f64, SegmentError> {
        let diff = self
            .image
            .zip_map(reference, |a, b| a.l1_distance(b))
            .map_err(SegmentError::from)?;
        let total: u64 = diff.as_slice().iter().map(|&d| d as u64).sum();
        Ok(total as f64 / (diff.len() as f64 * 3.0))
    }
}

/// Reusable scratch for [`BackgroundEstimator::estimate_into`]: the
/// per-pixel observation cursor and the flat per-channel observation
/// planes the median mode packs stable samples into. Warmed buffers
/// make repeat estimation allocation-free (`tests/zero_alloc.rs`).
#[derive(Debug, Clone, Default)]
pub struct BackgroundScratch {
    /// Pass 1: per-pixel stable-pair count; then exclusive prefix sums
    /// (each pixel's start offset into the planes); after pass 2, each
    /// pixel's end offset.
    cursor: Vec<u32>,
    /// Red-channel observations, packed per pixel in pair order.
    r: Vec<u8>,
    /// Green-channel observations.
    g: Vec<u8>,
    /// Blue-channel observations.
    b: Vec<u8>,
    /// Per-pair stability verdicts from pass 1, one bit per pixel
    /// (`pairs × ceil(n/64)` words): pass 2 replays these instead of
    /// re-evaluating the L1 distance of every pixel pair, and all-zero
    /// words (64 unstable pixels) are skipped wholesale.
    stable: Vec<u64>,
}

/// Estimates the static background of a fixed-camera clip.
#[derive(Debug, Clone, Default)]
pub struct BackgroundEstimator {
    config: BackgroundConfig,
}

impl BackgroundEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: BackgroundConfig) -> Self {
        BackgroundEstimator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BackgroundConfig {
        &self.config
    }

    /// Runs change detection over the clip (or, with
    /// [`BackgroundConfig::warmup`] set, over its leading window).
    ///
    /// # Errors
    ///
    /// Returns [`SegmentError::TooFewFrames`] for clips (or warmup
    /// windows) with fewer than two frames.
    pub fn estimate(&self, video: &Video) -> Result<EstimatedBackground, SegmentError> {
        let mut out = EstimatedBackground {
            image: ImageBuffer::new(0, 0),
            support: ImageBuffer::new(0, 0),
        };
        self.estimate_into(video, &mut out, &mut BackgroundScratch::default())?;
        Ok(out)
    }

    /// As [`BackgroundEstimator::estimate`], but reusing the output and
    /// scratch buffers: with warmed buffers of matching dimensions the
    /// call performs no heap allocation. Results are byte-identical to
    /// `estimate`.
    ///
    /// Both modes run as flat row-contiguous slice passes (the
    /// per-pixel `get`/`set` formulation cost ~80% of the whole
    /// segmentation stage): `LastStable` is a single fused
    /// compare-and-overwrite sweep per frame pair; `MedianOfStable`
    /// counts stable pairs per pixel, prefix-sums the counts into
    /// offsets, packs each channel's stable observations into one flat
    /// plane (replacing the per-pixel `Vec<Rgb>` allocation storm), and
    /// takes each pixel's channel medians by in-place selection on its
    /// plane slices — the median of a multiset does not depend on
    /// observation order, so the result matches the old per-pixel
    /// collection bit for bit. Pass 1's stability verdicts are kept in
    /// a bitmask so pass 2 replays them (skipping all-unstable words)
    /// instead of re-evaluating distances, and a clip where nothing
    /// stabilises skips the plane passes entirely.
    ///
    /// # Errors
    ///
    /// Returns [`SegmentError::TooFewFrames`] for clips (or warmup
    /// windows) with fewer than two frames.
    pub fn estimate_into(
        &self,
        video: &Video,
        out: &mut EstimatedBackground,
        scratch: &mut BackgroundScratch,
    ) -> Result<(), SegmentError> {
        if video.len() < 2 {
            return Err(SegmentError::TooFewFrames {
                got: video.len(),
                need: 2,
            });
        }
        let limit = self
            .config
            .warmup
            .map_or(video.len(), |w| w.min(video.len()));
        if limit < 2 {
            return Err(SegmentError::TooFewFrames {
                got: limit,
                need: 2,
            });
        }
        let (w, h) = video.dims();
        let frames = &video.frames()[..limit];
        let n = w * h;
        if out.image.dims() != (w, h) {
            out.image = ImageBuffer::new(w, h);
            out.support = ImageBuffer::new(w, h);
        }
        out.support.fill(0);
        let threshold = self.config.diff_threshold;

        match self.config.mode {
            UpdateMode::LastStable => {
                // Initialise from the first frame (pixels that never
                // stabilise keep it), then overwrite with stable pairs.
                out.image
                    .as_mut_slice()
                    .copy_from_slice(frames[0].as_slice());
                for k in 0..frames.len() - 1 {
                    let a = frames[k].as_slice();
                    let b = frames[k + 1].as_slice();
                    let image = out.image.as_mut_slice();
                    let support = out.support.as_mut_slice();
                    for (((pa, pb), bg), sup) in a
                        .iter()
                        .zip(b)
                        .zip(image.iter_mut())
                        .zip(support.iter_mut())
                    {
                        if pa.l1_distance(*pb) <= threshold {
                            *bg = *pa;
                            *sup = sup.saturating_add(1);
                        }
                    }
                }
            }
            UpdateMode::MedianOfStable => {
                // Pass 1: count stable pairs per pixel, recording every
                // verdict in a per-pair bitmask so pass 2 never
                // re-evaluates an L1 distance.
                let pairs = frames.len() - 1;
                let words_per_pair = n.div_ceil(64);
                scratch.cursor.clear();
                scratch.cursor.resize(n, 0);
                scratch.stable.clear();
                scratch.stable.resize(pairs * words_per_pair, 0);
                for k in 0..pairs {
                    let a = frames[k].as_slice();
                    let b = frames[k + 1].as_slice();
                    let bits = &mut scratch.stable[k * words_per_pair..(k + 1) * words_per_pair];
                    for (i, ((pa, pb), count)) in
                        a.iter().zip(b).zip(scratch.cursor.iter_mut()).enumerate()
                    {
                        let stable = (pa.l1_distance(*pb) <= threshold) as u32;
                        *count += stable;
                        bits[i / 64] |= u64::from(stable) << (i % 64);
                    }
                }
                // Exclusive prefix sum: counts become start offsets.
                let mut acc = 0u32;
                for c in scratch.cursor.iter_mut() {
                    let start = acc;
                    acc += *c;
                    *c = start;
                }
                let total = acc as usize;
                if total == 0 {
                    // Nothing ever stabilised: every pixel falls back to
                    // the first frame; the plane passes have no work.
                    out.image
                        .as_mut_slice()
                        .copy_from_slice(frames[0].as_slice());
                    return Ok(());
                }
                scratch.r.clear();
                scratch.r.resize(total, 0);
                scratch.g.clear();
                scratch.g.resize(total, 0);
                scratch.b.clear();
                scratch.b.resize(total, 0);
                // Pass 2: replay the pass-1 verdicts, packing each
                // channel's stable observations into its flat plane in
                // pair order; cursors land on each pixel's end offset.
                // All-zero words skip 64 pixels at a time.
                for (k, frame) in frames.iter().take(pairs).enumerate() {
                    let a = frame.as_slice();
                    let words = &scratch.stable[k * words_per_pair..(k + 1) * words_per_pair];
                    for (wi, &word) in words.iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let i = wi * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let o = scratch.cursor[i] as usize;
                            let p = a[i];
                            scratch.r[o] = p.r;
                            scratch.g[o] = p.g;
                            scratch.b[o] = p.b;
                            scratch.cursor[i] = o as u32 + 1;
                        }
                    }
                }
                // Median pass: sort each pixel's slice of every plane in
                // place and take the upper median.
                let image = out.image.as_mut_slice();
                let support = out.support.as_mut_slice();
                let first = frames[0].as_slice();
                let mut start = 0usize;
                for i in 0..n {
                    let end = scratch.cursor[i] as usize;
                    if end == start {
                        image[i] = first[i];
                    } else {
                        image[i] = Rgb::new(
                            plane_median(&mut scratch.r[start..end]),
                            plane_median(&mut scratch.g[start..end]),
                            plane_median(&mut scratch.b[start..end]),
                        );
                        support[i] = (end - start).min(u16::MAX as usize) as u16;
                    }
                    start = end;
                }
            }
        }
        Ok(())
    }
}

/// Upper median of a non-empty channel slice via in-place selection.
/// The `len / 2`-th order statistic of a multiset is a unique value, so
/// this matches the historical `sort_unstable` + `v[len / 2]` rule bit
/// for bit while doing O(len) work instead of O(len log len).
fn plane_median(v: &mut [u8]) -> u8 {
    debug_assert!(!v.is_empty());
    let mid = v.len() / 2;
    *v.select_nth_unstable(mid).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imgproc::image::ImageBuffer;

    /// A tiny clip: static background value 100 everywhere, except a
    /// "walker" column that carries value 200 and moves one column per
    /// frame.
    fn walker_video(frames: usize, w: usize) -> Video {
        let make = |k: usize| -> Frame {
            ImageBuffer::from_fn(w, 4, |x, _| {
                if x == k {
                    Rgb::splat(200)
                } else {
                    Rgb::splat(100)
                }
            })
        };
        Video::new((0..frames).map(make).collect(), 10.0)
    }

    #[test]
    fn recovers_static_background_behind_walker() {
        for mode in [UpdateMode::LastStable, UpdateMode::MedianOfStable] {
            let est = BackgroundEstimator::new(BackgroundConfig {
                diff_threshold: 10,
                mode,
                warmup: None,
            });
            let bg = est.estimate(&walker_video(6, 6)).unwrap();
            // Columns 1..=4 were occluded once but recovered.
            for x in 0..6 {
                for y in 0..4 {
                    if x == 5 {
                        continue; // walker parked here at the end
                    }
                    assert_eq!(bg.image.get(x, y), Rgb::splat(100), "mode {mode:?} x={x}");
                }
            }
        }
    }

    #[test]
    fn last_stable_burns_in_parked_object_median_does_not() {
        // Walker moves to column 2 and then parks there for the rest of
        // the clip: LastStable adopts it, MedianOfStable rejects it
        // because the majority of stable observations are background.
        let make = |k: usize| -> Frame {
            let col = if k < 2 { k } else { 2 };
            ImageBuffer::from_fn(8, 2, |x, _| {
                if x == col {
                    Rgb::splat(200)
                } else {
                    Rgb::splat(100)
                }
            })
        };
        let video = Video::new((0..9).map(make).collect(), 10.0);

        let last = BackgroundEstimator::new(BackgroundConfig {
            diff_threshold: 10,
            mode: UpdateMode::LastStable,
            warmup: None,
        })
        .estimate(&video)
        .unwrap();
        assert_eq!(
            last.image.get(2, 0),
            Rgb::splat(200),
            "parked object burnt in"
        );

        let median = BackgroundEstimator::new(BackgroundConfig {
            diff_threshold: 10,
            mode: UpdateMode::MedianOfStable,
            warmup: None,
        })
        .estimate(&video)
        .unwrap();
        // Column 2 was background-stable for pairs (0,1) -> 1 obs of 100
        // ... then object-stable for pairs (2,3)..(7,8) -> 6 obs of 200.
        // Median picks the majority: still the object. This documents
        // that median helps only when background observations dominate —
        // so use a longer tail.
        let make_long = |k: usize| -> Frame {
            let col = if k < 6 { k.min(5) } else { usize::MAX };
            ImageBuffer::from_fn(8, 2, |x, _| {
                if x == col {
                    Rgb::splat(200)
                } else {
                    Rgb::splat(100)
                }
            })
        };
        let video2 = Video::new((0..14).map(make_long).collect(), 10.0);
        let median2 = BackgroundEstimator::new(BackgroundConfig {
            diff_threshold: 10,
            mode: UpdateMode::MedianOfStable,
            warmup: None,
        })
        .estimate(&video2)
        .unwrap();
        for x in 0..8 {
            assert_eq!(median2.image.get(x, 0), Rgb::splat(100));
        }
        let _ = median;
    }

    #[test]
    fn support_counts_stable_pairs() {
        let est = BackgroundEstimator::new(BackgroundConfig {
            diff_threshold: 10,
            mode: UpdateMode::LastStable,
            warmup: None,
        });
        let bg = est.estimate(&walker_video(6, 6)).unwrap();
        // A column occluded at exactly one frame k is unstable for the
        // two pairs (k-1,k) and (k,k+1): support = 5 pairs - 2.
        assert_eq!(bg.support.get(2, 0), 3);
        // Column 0 is occluded only at frame 0 -> unstable only for pair
        // (0,1).
        assert_eq!(bg.support.get(0, 0), 4);
        assert!(bg.coverage() > 0.99);
    }

    #[test]
    fn noisy_static_scene_fully_covered() {
        // Change below the threshold everywhere: every pixel stable.
        let make = |k: usize| -> Frame {
            ImageBuffer::from_fn(4, 4, |x, y| Rgb::splat(100 + ((x + y + k) % 3) as u8))
        };
        let video = Video::new((0..5).map(make).collect(), 10.0);
        let est = BackgroundEstimator::new(BackgroundConfig {
            diff_threshold: 24,
            mode: UpdateMode::MedianOfStable,
            warmup: None,
        });
        let bg = est.estimate(&video).unwrap();
        assert_eq!(bg.coverage(), 1.0);
        // Estimate within noise of the true value.
        for &p in bg.image.as_slice() {
            assert!(p.l1_distance(Rgb::splat(101)) <= 6);
        }
    }

    #[test]
    fn single_frame_clip_rejected() {
        let video = Video::new(vec![ImageBuffer::filled(2, 2, Rgb::BLACK)], 10.0);
        let err = BackgroundEstimator::default().estimate(&video).unwrap_err();
        assert!(matches!(
            err,
            SegmentError::TooFewFrames { got: 1, need: 2 }
        ));
    }

    #[test]
    fn mae_against_reference() {
        let est = BackgroundEstimator::new(BackgroundConfig {
            diff_threshold: 10,
            mode: UpdateMode::LastStable,
            warmup: None,
        });
        let bg = est.estimate(&walker_video(6, 6)).unwrap();
        let truth: Frame = ImageBuffer::filled(6, 4, Rgb::splat(100));
        // The walker reaches column 5 only in the final frame, so it is
        // never stable anywhere: the estimate is perfect.
        assert_eq!(bg.mae_against(&truth).unwrap(), 0.0);
        // Park the walker at column 2 for the last frames: LastStable
        // burns it in, producing a non-zero MAE of 100 * 4px / 24px.
        let make = |k: usize| -> Frame {
            let col = k.min(2);
            ImageBuffer::from_fn(6, 4, |x, _| {
                if x == col {
                    Rgb::splat(200)
                } else {
                    Rgb::splat(100)
                }
            })
        };
        let parked = Video::new((0..6).map(make).collect(), 10.0);
        let bg2 = est.estimate(&parked).unwrap();
        let mae = bg2.mae_against(&truth).unwrap();
        assert!((mae - 100.0 * 4.0 / 24.0).abs() < 1e-9, "mae {mae}");
        // Dimension mismatch is an error.
        let small: Frame = ImageBuffer::filled(2, 2, Rgb::BLACK);
        assert!(bg.mae_against(&small).is_err());
    }

    #[test]
    fn channel_median_is_per_channel() {
        let obs = [
            Rgb::new(10, 200, 5),
            Rgb::new(20, 100, 6),
            Rgb::new(30, 0, 7),
        ];
        let m = Rgb::new(
            plane_median(&mut obs.map(|p| p.r)),
            plane_median(&mut obs.map(|p| p.g)),
            plane_median(&mut obs.map(|p| p.b)),
        );
        assert_eq!(m, Rgb::new(20, 100, 6));
    }

    #[test]
    fn estimate_into_reuse_matches_estimate() {
        // A warmed output + scratch re-fed different clips must produce
        // exactly what a fresh `estimate` produces — this equality (plus
        // the zero-alloc integration test) is what makes buffer reuse a
        // pure throughput setting.
        let mut out = EstimatedBackground {
            image: ImageBuffer::new(0, 0),
            support: ImageBuffer::new(0, 0),
        };
        let mut scratch = BackgroundScratch::default();
        for mode in [UpdateMode::LastStable, UpdateMode::MedianOfStable] {
            let est = BackgroundEstimator::new(BackgroundConfig {
                diff_threshold: 10,
                mode,
                warmup: None,
            });
            for frames in [6usize, 8, 4] {
                let video = walker_video(frames, 6);
                est.estimate_into(&video, &mut out, &mut scratch).unwrap();
                let fresh = est.estimate(&video).unwrap();
                assert_eq!(out.image.as_slice(), fresh.image.as_slice(), "{mode:?}");
                assert_eq!(out.support.as_slice(), fresh.support.as_slice());
            }
        }
    }

    #[test]
    fn median_path_matches_naive_per_pixel_reference() {
        // The packed-plane + bitmask-replay + selection median must equal
        // the obvious formulation: per pixel, collect every stable
        // observation into a Vec, sort, take v[len/2].
        let mut state = 0x5EED_u32;
        let mut rng = move || {
            state = state.wrapping_mul(747_796_405).wrapping_add(2_891_336_453);
            (state >> 24) as u8
        };
        let (w, h, frames_n) = (13, 9, 7);
        let frames: Vec<Frame> = (0..frames_n)
            .map(|_| {
                ImageBuffer::from_fn(w, h, |_, _| Rgb::new(rng() % 40, rng() % 40, rng() % 40))
            })
            .collect();
        let video = Video::new(frames, 10.0);
        let threshold = 30u32;
        let est = BackgroundEstimator::new(BackgroundConfig {
            diff_threshold: threshold,
            mode: UpdateMode::MedianOfStable,
            warmup: None,
        });
        let bg = est.estimate(&video).unwrap();
        for y in 0..h {
            for x in 0..w {
                let mut obs: Vec<Rgb> = Vec::new();
                for k in 0..frames_n - 1 {
                    let pa = video.frames()[k].get(x, y);
                    let pb = video.frames()[k + 1].get(x, y);
                    if pa.l1_distance(pb) <= threshold {
                        obs.push(pa);
                    }
                }
                let expected = if obs.is_empty() {
                    video.frames()[0].get(x, y)
                } else {
                    let channel = |f: fn(&Rgb) -> u8| {
                        let mut v: Vec<u8> = obs.iter().map(&f).collect();
                        v.sort_unstable();
                        v[v.len() / 2]
                    };
                    Rgb::new(channel(|p| p.r), channel(|p| p.g), channel(|p| p.b))
                };
                assert_eq!(bg.image.get(x, y), expected, "pixel ({x}, {y})");
                assert_eq!(bg.support.get(x, y) as usize, obs.len());
            }
        }
    }

    #[test]
    fn nothing_stable_skips_plane_passes_and_falls_back_to_first_frame() {
        // Every consecutive pair differs by more than the threshold:
        // total == 0 takes the early-out, which must still equal the
        // naive fallback (first frame everywhere, zero support).
        let frames: Vec<Frame> = (0..5)
            .map(|k| ImageBuffer::filled(6, 4, Rgb::splat(40 * k as u8)))
            .collect();
        let video = Video::new(frames, 10.0);
        let est = BackgroundEstimator::new(BackgroundConfig {
            diff_threshold: 10,
            mode: UpdateMode::MedianOfStable,
            warmup: None,
        });
        let bg = est.estimate(&video).unwrap();
        assert_eq!(bg.image.as_slice(), video.frames()[0].as_slice());
        assert!(bg.support.as_slice().iter().all(|&s| s == 0));
        assert_eq!(bg.coverage(), 0.0);
    }

    #[test]
    fn default_config_is_median() {
        assert_eq!(BackgroundConfig::default().mode, UpdateMode::MedianOfStable);
        assert_eq!(BackgroundConfig::paper().mode, UpdateMode::LastStable);
        assert_eq!(BackgroundConfig::default().warmup, None);
    }

    #[test]
    fn warmup_window_matches_truncated_clip() {
        // `warmup: Some(w)` must equal running the estimator on the
        // first `w` frames — that equality is what lets a streaming
        // analyzer reproduce the batch background bit for bit.
        let video = walker_video(8, 8);
        for mode in [UpdateMode::LastStable, UpdateMode::MedianOfStable] {
            let windowed = BackgroundEstimator::new(BackgroundConfig {
                diff_threshold: 10,
                mode,
                warmup: Some(5),
            })
            .estimate(&video)
            .unwrap();
            let truncated_video = Video::new(video.frames()[..5].to_vec(), video.fps());
            let truncated = BackgroundEstimator::new(BackgroundConfig {
                diff_threshold: 10,
                mode,
                warmup: None,
            })
            .estimate(&truncated_video)
            .unwrap();
            assert_eq!(
                windowed.image.as_slice(),
                truncated.image.as_slice(),
                "mode {mode:?}"
            );
            assert_eq!(windowed.support.as_slice(), truncated.support.as_slice());
        }
        // A warmup longer than the clip falls back to the whole clip.
        let over = BackgroundEstimator::new(BackgroundConfig {
            diff_threshold: 10,
            mode: UpdateMode::MedianOfStable,
            warmup: Some(100),
        })
        .estimate(&video)
        .unwrap();
        let full = BackgroundEstimator::default().estimate(&video);
        assert!(full.is_ok());
        assert_eq!(over.image.dims(), video.dims());
        // A warmup window below two frames is rejected.
        let err = BackgroundEstimator::new(BackgroundConfig {
            diff_threshold: 10,
            mode: UpdateMode::LastStable,
            warmup: Some(1),
        })
        .estimate(&video)
        .unwrap_err();
        assert!(matches!(
            err,
            SegmentError::TooFewFrames { got: 1, need: 2 }
        ));
    }
}
