//! The paper's five-step human segmentation pipeline (Section 2).
//!
//! > (1) Generate the background image for a video sequence;
//! > (2) Subtract the background image from each frame;
//! > (3) Remove noises and small spots caused by the light change;
//! > (4) Fill up small holes in the objects;
//! > (5) Remove shadows.
//!
//! Each step is its own module with its own configuration, and
//! [`pipeline::SegmentPipeline`] chains them while exposing every
//! intermediate mask (the paper's Figure 2 shows exactly those
//! intermediates, and the Fig. 2 experiment measures them against ground
//! truth).
//!
//! * [`background`] — Step 1: temporal change detection.
//! * [`foreground`] — Step 2: background subtraction.
//! * [`cleanup`] — Steps 3–4: 8-neighbour noise filter, small-spot
//!   removal, hole filling.
//! * [`ghosts`] — extension: motion-based ghost suppression (after the
//!   same Cucchiara et al. paper the shadow mask comes from).
//! * [`shadow`] — Step 5: the HSV shadow mask of Eqs. 1–2
//!   (after Cucchiara et al.).
//! * [`segmenter`] — the per-frame engine: fused subtraction + shadow
//!   predicate over a cached background-HSV plane, arena-backed scratch
//!   buffers, zero allocations per frame in steady state.
//! * [`pipeline`] — the composed pipeline.
//! * [`metrics`] — per-stage accuracy against ground truth.
//! * [`quality`] — per-frame silhouette health metrics (area ratio,
//!   fragmentation, border clipping) for graceful degradation
//!   downstream.
//!
//! # Example
//!
//! ```
//! use slj_segment::pipeline::{PipelineConfig, SegmentPipeline};
//! use slj_video::{SceneConfig, SyntheticJump};
//! use slj_motion::JumpConfig;
//!
//! let jump = SyntheticJump::generate(&SceneConfig::default(), &JumpConfig::default(), 1);
//! let pipeline = SegmentPipeline::new(PipelineConfig::default());
//! let result = pipeline.run(&jump.video).unwrap();
//! let iou = result.frames[10].final_mask.iou(&jump.silhouettes[10]).unwrap();
//! assert!(iou > 0.5);
//! ```

pub mod background;
pub mod cleanup;
pub mod error;
pub mod foreground;
pub mod ghosts;
pub mod metrics;
pub mod pipeline;
pub mod quality;
pub mod segmenter;
pub mod shadow;

pub use error::SegmentError;
pub use pipeline::{FrameStages, PipelineConfig, Presmooth, SegmentPipeline, SegmentationResult};
pub use quality::{FrameQuality, QualityConfig, QualityIssue, ReferenceMode};
pub use segmenter::{FrameArena, FrameSegmenter, PreparedBackground};
pub use slj_obs::{spans, Profiler, SegmentObs};
