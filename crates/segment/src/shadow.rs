//! Step 5 — HSV shadow detection and removal (Eqs. 1–2).
//!
//! Following Cucchiara et al. (the paper's refs. \[3\], \[4\]): a foreground
//! pixel `p` at frame `k` is marked shadow when, comparing the frame
//! `F_k(p)` with the background `B_k(p)` in HSV space,
//!
//! ```text
//! SM_k(p) = 1  iff  α ≤ F_k(p).V / B_k(p).V ≤ β
//!               and  F_k(p).S − B_k(p).S ≤ τ_S
//!               and  DH_k(p) ≤ τ_H
//! ```
//!
//! with the angular hue distance of Eq. 2,
//! `DH_k(p) = min(|F.H − B.H|, 360 − |F.H − B.H|)`.
//!
//! A cast shadow darkens the surface (value ratio inside `[α, β]`),
//! changes saturation only mildly and barely rotates hue — whereas a
//! person's clothing generally violates at least one of the three
//! conditions. The parameters "are determined via experiments" in the
//! paper; the Fig. 3 experiment sweeps them.

use serde::{Deserialize, Serialize};
use slj_imgproc::mask::Mask;
use slj_imgproc::pixel::Hsv;
use slj_video::Frame;

/// The four parameters of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowParams {
    /// Lower bound α of the value ratio `F.V / B.V` (excludes pitch-dark
    /// occluders).
    pub alpha: f64,
    /// Upper bound β of the value ratio (excludes pixels as bright as
    /// the background, i.e. not darkened at all).
    pub beta: f64,
    /// Maximum saturation *difference* `F.S − B.S` (absolute value per
    /// the paper's prose; shadows change saturation little).
    pub tau_s: f64,
    /// Maximum angular hue distance `DH`, degrees (shadows preserve
    /// hue).
    pub tau_h: f64,
}

impl Default for ShadowParams {
    /// Values in the ranges Cucchiara et al. report effective, tuned on
    /// the default synthetic scene: shadow strength 0.62 sits centrally
    /// in `[α, β]`.
    fn default() -> Self {
        ShadowParams {
            alpha: 0.40,
            beta: 0.90,
            tau_s: 0.15,
            tau_h: 60.0,
        }
    }
}

/// The HSV shadow detector of Eqs. 1–2.
#[derive(Debug, Clone, Default)]
pub struct ShadowDetector {
    params: ShadowParams,
}

impl ShadowDetector {
    /// Creates a detector with the given parameters.
    pub fn new(params: ShadowParams) -> Self {
        ShadowDetector { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &ShadowParams {
        &self.params
    }

    /// Evaluates Eq. 1 for a single pixel pair.
    pub fn is_shadow_pixel(&self, frame_px: Hsv, background_px: Hsv) -> bool {
        let p = &self.params;
        let bv = background_px.v;
        if bv <= f64::EPSILON {
            // Black background cannot be darkened further; treat as
            // non-shadow.
            return false;
        }
        let ratio = frame_px.v / bv;
        if !(p.alpha..=p.beta).contains(&ratio) {
            return false;
        }
        if (frame_px.s - background_px.s).abs() > p.tau_s {
            return false;
        }
        frame_px.hue_distance(background_px) <= p.tau_h
    }

    /// Computes the shadow mask `SM_k` over the pixels of `foreground`
    /// (Eq. 1 is only applied "to the extracted objects").
    ///
    /// # Panics
    ///
    /// Panics if the frame, background, and mask dimensions disagree.
    pub fn shadow_mask(&self, frame: &Frame, background: &Frame, foreground: &Mask) -> Mask {
        assert_eq!(frame.dims(), background.dims(), "frame vs background dims");
        assert_eq!(
            frame.dims(),
            foreground.dims(),
            "frame vs foreground mask dims"
        );
        Mask::from_fn(foreground.width(), foreground.height(), |x, y| {
            foreground.get(x, y)
                && self.is_shadow_pixel(frame.get(x, y).to_hsv(), background.get(x, y).to_hsv())
        })
    }

    /// Removes detected shadow pixels from the foreground, returning
    /// `(cleaned_foreground, shadow_mask)`.
    pub fn remove_shadows(
        &self,
        frame: &Frame,
        background: &Frame,
        foreground: &Mask,
    ) -> (Mask, Mask) {
        let shadow = self.shadow_mask(frame, background, foreground);
        let cleaned = foreground
            .difference(&shadow)
            .expect("shadow mask has foreground dimensions by construction");
        (cleaned, shadow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imgproc::image::ImageBuffer;
    use slj_imgproc::pixel::Rgb;

    fn det() -> ShadowDetector {
        ShadowDetector::default()
    }

    #[test]
    fn darkened_background_is_shadow() {
        let bg = Rgb::new(180, 170, 140).to_hsv();
        let sh = Rgb::new(180, 170, 140).scale_brightness(0.62).to_hsv();
        assert!(det().is_shadow_pixel(sh, bg));
    }

    #[test]
    fn unchanged_pixel_is_not_shadow() {
        let bg = Rgb::new(180, 170, 140).to_hsv();
        assert!(!det().is_shadow_pixel(bg, bg)); // ratio 1.0 > beta
    }

    #[test]
    fn too_dark_pixel_is_not_shadow() {
        let bg = Rgb::new(180, 170, 140).to_hsv();
        let occluder = Rgb::new(20, 19, 16).to_hsv(); // ratio ~0.11 < alpha
        assert!(!det().is_shadow_pixel(occluder, bg));
    }

    #[test]
    fn hue_rotated_pixel_is_not_shadow() {
        // Blue shirt over yellow-ish ground: value ratio can be in range
        // but the hue flips by > tau_h.
        let bg = Rgb::new(196, 186, 150).to_hsv();
        let shirt = Rgb::new(60, 90, 160).to_hsv();
        assert!(!det().is_shadow_pixel(shirt, bg));
        assert!(bg.hue_distance(shirt) > det().params().tau_h);
    }

    #[test]
    fn saturation_jump_is_not_shadow() {
        let bg = Rgb::splat(150).to_hsv(); // s = 0
        let vivid = Hsv::new(bg.h, 0.5, bg.v * 0.6); // darkened but vivid
        assert!(!det().is_shadow_pixel(vivid, bg));
    }

    #[test]
    fn black_background_never_shadow() {
        let bg = Rgb::BLACK.to_hsv();
        let any = Rgb::splat(10).to_hsv();
        assert!(!det().is_shadow_pixel(any, bg));
    }

    #[test]
    fn alpha_beta_bounds_are_inclusive() {
        let p = ShadowParams {
            alpha: 0.5,
            beta: 0.9,
            tau_s: 1.0,
            tau_h: 180.0,
        };
        let d = ShadowDetector::new(p);
        let bg = Hsv::new(0.0, 0.0, 1.0);
        assert!(d.is_shadow_pixel(Hsv::new(0.0, 0.0, 0.5), bg));
        assert!(d.is_shadow_pixel(Hsv::new(0.0, 0.0, 0.9), bg));
        assert!(!d.is_shadow_pixel(Hsv::new(0.0, 0.0, 0.49), bg));
        assert!(!d.is_shadow_pixel(Hsv::new(0.0, 0.0, 0.91), bg));
    }

    #[test]
    fn mask_only_considers_foreground_pixels() {
        let bg: Frame = ImageBuffer::filled(4, 1, Rgb::new(180, 170, 140));
        let mut frame = bg.clone();
        // Both columns 0 and 1 are photometric shadows...
        frame.set(0, 0, bg.get(0, 0).scale_brightness(0.6));
        frame.set(1, 0, bg.get(1, 0).scale_brightness(0.6));
        // ...but only column 0 is in the foreground mask.
        let mut fg = Mask::new(4, 1);
        fg.set(0, 0, true);
        let shadow = det().shadow_mask(&frame, &bg, &fg);
        assert!(shadow.get(0, 0));
        assert!(!shadow.get(1, 0));
    }

    #[test]
    fn remove_shadows_splits_mask() {
        let bg: Frame = ImageBuffer::filled(3, 1, Rgb::new(180, 170, 140));
        let mut frame = bg.clone();
        frame.set(0, 0, bg.get(0, 0).scale_brightness(0.6)); // shadow
        frame.set(1, 0, Rgb::new(60, 90, 160)); // shirt
        let fg = Mask::from_fn(3, 1, |x, _| x < 2);
        let (cleaned, shadow) = det().remove_shadows(&frame, &bg, &fg);
        assert!(!cleaned.get(0, 0) && shadow.get(0, 0));
        assert!(cleaned.get(1, 0) && !shadow.get(1, 0));
        assert!(!cleaned.get(2, 0));
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn mismatched_dims_panic() {
        let bg: Frame = ImageBuffer::filled(2, 2, Rgb::BLACK);
        let frame: Frame = ImageBuffer::filled(3, 2, Rgb::BLACK);
        det().shadow_mask(&frame, &bg, &Mask::new(3, 2));
    }
}
