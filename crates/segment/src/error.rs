//! Error type for the segmentation pipeline.

use slj_imgproc::ImgError;
use std::fmt;

/// Error returned by fallible `slj-segment` operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum SegmentError {
    /// The input video has too few frames for the requested operation
    /// (background estimation by change detection needs at least two).
    TooFewFrames {
        /// Frames present.
        got: usize,
        /// Frames required.
        need: usize,
    },
    /// An underlying image operation failed (dimension mismatch etc.).
    Image(ImgError),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::TooFewFrames { got, need } => {
                write!(f, "video has {got} frames, need at least {need}")
            }
            SegmentError::Image(e) => write!(f, "image error: {e}"),
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Image(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImgError> for SegmentError {
    fn from(e: ImgError) -> Self {
        SegmentError::Image(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SegmentError::TooFewFrames { got: 1, need: 2 };
        assert!(e.to_string().contains('1'));
        let e2 = SegmentError::from(ImgError::EmptyImage);
        assert!(e2.to_string().contains("image error"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = SegmentError::from(ImgError::EmptyImage);
        assert!(e.source().is_some());
        assert!(SegmentError::TooFewFrames { got: 0, need: 2 }
            .source()
            .is_none());
    }
}
