//! Step 2 — background subtraction.
//!
//! "The background is subtracted from each frame to obtain the foreground
//! of each frame." A pixel is raw foreground when its colour differs from
//! the background estimate by more than a threshold (L1 over the three
//! channels). The raw mask is deliberately noisy — repairing it is the
//! job of Steps 3–5.

use serde::{Deserialize, Serialize};
use slj_imgproc::mask::Mask;
use slj_video::Frame;

/// Configuration of the subtraction step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForegroundConfig {
    /// Minimum L1 colour distance from the background for a pixel to be
    /// foreground. Must sit above sensor noise (≤ ~30 for the default
    /// scene) and below object contrast.
    pub threshold: u32,
}

impl Default for ForegroundConfig {
    fn default() -> Self {
        ForegroundConfig { threshold: 60 }
    }
}

/// Background subtractor.
#[derive(Debug, Clone, Default)]
pub struct ForegroundExtractor {
    config: ForegroundConfig,
}

impl ForegroundExtractor {
    /// Creates an extractor with the given configuration.
    pub fn new(config: ForegroundConfig) -> Self {
        ForegroundExtractor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ForegroundConfig {
        &self.config
    }

    /// Subtracts `background` from `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame and background dimensions differ (they come
    /// from the same pipeline, so a mismatch is a programming error).
    pub fn extract(&self, frame: &Frame, background: &Frame) -> Mask {
        assert_eq!(
            frame.dims(),
            background.dims(),
            "frame and background must share dimensions"
        );
        Mask::from_fn(frame.width(), frame.height(), |x, y| {
            frame.get(x, y).l1_distance(background.get(x, y)) > self.config.threshold
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imgproc::image::ImageBuffer;
    use slj_imgproc::pixel::Rgb;

    #[test]
    fn detects_contrasting_object() {
        let bg: Frame = ImageBuffer::filled(8, 8, Rgb::splat(100));
        let mut frame = bg.clone();
        for y in 2..5 {
            for x in 2..5 {
                frame.set(x, y, Rgb::splat(200));
            }
        }
        let mask = ForegroundExtractor::default().extract(&frame, &bg);
        assert_eq!(mask.count(), 9);
        assert!(mask.get(3, 3));
        assert!(!mask.get(0, 0));
    }

    #[test]
    fn threshold_is_strict_inequality() {
        let bg: Frame = ImageBuffer::filled(2, 1, Rgb::splat(100));
        let mut frame = bg.clone();
        frame.set(0, 0, Rgb::new(120, 120, 120)); // L1 = 60 == threshold
        frame.set(1, 0, Rgb::new(121, 120, 120)); // L1 = 61 > threshold
        let mask =
            ForegroundExtractor::new(ForegroundConfig { threshold: 60 }).extract(&frame, &bg);
        assert!(!mask.get(0, 0));
        assert!(mask.get(1, 0));
    }

    #[test]
    fn noise_below_threshold_ignored() {
        let bg: Frame = ImageBuffer::filled(4, 4, Rgb::splat(100));
        let frame: Frame =
            ImageBuffer::from_fn(4, 4, |x, y| Rgb::splat(100 + ((x * 3 + y) % 8) as u8));
        let mask = ForegroundExtractor::default().extract(&frame, &bg);
        assert!(mask.is_blank());
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn mismatched_dims_panic() {
        let bg: Frame = ImageBuffer::filled(2, 2, Rgb::BLACK);
        let frame: Frame = ImageBuffer::filled(3, 2, Rgb::BLACK);
        ForegroundExtractor::default().extract(&frame, &bg);
    }

    #[test]
    fn shadow_strength_pixels_are_raw_foreground() {
        // A shadow darkens the background well past the default
        // threshold — that is why Step 5 exists.
        let bg: Frame = ImageBuffer::filled(2, 1, Rgb::new(180, 170, 140));
        let mut frame = bg.clone();
        frame.set(0, 0, bg.get(0, 0).scale_brightness(0.62));
        let mask = ForegroundExtractor::default().extract(&frame, &bg);
        assert!(mask.get(0, 0));
    }
}
