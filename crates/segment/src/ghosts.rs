//! Ghost suppression (extension, after the paper's ref. \[3\]).
//!
//! Cucchiara et al. — the source of the paper's shadow detector —
//! classify foreground blobs into moving objects, **ghosts** and
//! shadows. A *ghost* is a blob caused by an error in the background
//! model rather than by a real object: the classic case here is the
//! paper's last-stable background rule burning the landed jumper into
//! the estimate, which then haunts every frame as a static false blob at
//! the landing spot.
//!
//! The discriminator is motion: a real object produces frame-to-frame
//! change inside its blob; a ghost is pixel-for-pixel identical between
//! frames. [`GhostDetector`] measures, per connected component, the
//! fraction of pixels whose colour changed since the previous frame and
//! removes components below a threshold.

use crate::error::SegmentError;
use serde::{Deserialize, Serialize};
use slj_imgproc::components::label_components;
use slj_imgproc::mask::Mask;
use slj_imgproc::morph::Connectivity;
use slj_video::Frame;

/// Ghost-detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GhostConfig {
    /// Minimum per-pixel L1 colour change between consecutive frames
    /// for a pixel to count as "moving". Must exceed sensor noise.
    pub motion_threshold: u32,
    /// A component survives only when at least this fraction of its
    /// pixels are moving. Ghosts score near 0; a moving person scores
    /// high at the silhouette boundary and on textured clothing.
    pub min_moving_fraction: f64,
}

impl Default for GhostConfig {
    fn default() -> Self {
        GhostConfig {
            motion_threshold: 24,
            min_moving_fraction: 0.05,
        }
    }
}

/// Per-component ghost classification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GhostVerdict {
    /// Component label in the mask's 8-connected labelling.
    pub label: u32,
    /// Component area, pixels.
    pub area: usize,
    /// Fraction of the component's pixels that moved since the previous
    /// frame.
    pub moving_fraction: f64,
    /// Whether the component was classified as a ghost (and removed).
    pub is_ghost: bool,
}

/// Motion-based ghost suppression.
#[derive(Debug, Clone, Default)]
pub struct GhostDetector {
    config: GhostConfig,
}

impl GhostDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: GhostConfig) -> Self {
        GhostDetector { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GhostConfig {
        &self.config
    }

    /// Classifies every 8-connected component of `mask` using the
    /// change between `frame` and `previous_frame`, returning the
    /// cleaned mask and the per-component verdicts.
    ///
    /// With no previous frame (the clip's first frame) nothing can be
    /// classified and the mask passes through unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`SegmentError::Image`] when frame and mask dimensions
    /// disagree.
    pub fn suppress(
        &self,
        mask: &Mask,
        frame: &Frame,
        previous_frame: Option<&Frame>,
    ) -> Result<(Mask, Vec<GhostVerdict>), SegmentError> {
        if frame.dims() != mask.dims() {
            return Err(SegmentError::Image(
                slj_imgproc::ImgError::DimensionMismatch {
                    left: frame.dims(),
                    right: mask.dims(),
                },
            ));
        }
        let Some(prev) = previous_frame else {
            return Ok((mask.clone(), Vec::new()));
        };
        if prev.dims() != frame.dims() {
            return Err(SegmentError::Image(
                slj_imgproc::ImgError::DimensionMismatch {
                    left: prev.dims(),
                    right: frame.dims(),
                },
            ));
        }

        let labeling = label_components(mask, Connectivity::Eight);
        let n = labeling.len();
        let mut moving = vec![0usize; n + 1];
        let mut total = vec![0usize; n + 1];
        for (x, y) in mask.foreground_pixels() {
            let l = labeling.label_at(x, y) as usize;
            total[l] += 1;
            if frame.get(x, y).l1_distance(prev.get(x, y)) > self.config.motion_threshold {
                moving[l] += 1;
            }
        }

        let mut verdicts = Vec::with_capacity(n);
        let mut is_ghost = vec![false; n + 1];
        for c in labeling.components() {
            let l = c.label as usize;
            let fraction = if total[l] == 0 {
                0.0
            } else {
                moving[l] as f64 / total[l] as f64
            };
            let ghost = fraction < self.config.min_moving_fraction;
            is_ghost[l] = ghost;
            verdicts.push(GhostVerdict {
                label: c.label,
                area: c.area,
                moving_fraction: fraction,
                is_ghost: ghost,
            });
        }

        let cleaned = Mask::from_fn(mask.width(), mask.height(), |x, y| {
            mask.get(x, y) && !is_ghost[labeling.label_at(x, y) as usize]
        });
        Ok((cleaned, verdicts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_imgproc::image::ImageBuffer;
    use slj_imgproc::pixel::Rgb;

    /// Two frames: a static "ghost" square (identical pixels in both)
    /// and a "walker" square whose content shifts between frames.
    fn scene() -> (Frame, Frame, Mask) {
        let base = |x: usize, y: usize| Rgb::splat(((x * 7 + y * 13) % 200) as u8);
        let prev: Frame = ImageBuffer::from_fn(24, 12, &base);
        let cur: Frame = ImageBuffer::from_fn(24, 12, |x, y| {
            // The walker region (x 14..20) shows shifted content now.
            if (14..20).contains(&x) && (3..9).contains(&y) {
                Rgb::splat(255 - base(x, y).r)
            } else {
                base(x, y)
            }
        });
        // Foreground mask covers both the ghost square and the walker.
        let mask = Mask::from_fn(24, 12, |x, y| {
            ((2..8).contains(&x) || (14..20).contains(&x)) && (3..9).contains(&y)
        });
        (prev, cur, mask)
    }

    #[test]
    fn static_blob_is_a_ghost_moving_blob_survives() {
        let (prev, cur, mask) = scene();
        let det = GhostDetector::default();
        let (cleaned, verdicts) = det.suppress(&mask, &cur, Some(&prev)).unwrap();
        assert_eq!(verdicts.len(), 2);
        // The ghost square (x 2..8) is gone, the walker remains.
        assert!(!cleaned.get(4, 5));
        assert!(cleaned.get(16, 5));
        assert_eq!(cleaned.count(), 36);
        let ghost = verdicts.iter().find(|v| v.is_ghost).unwrap();
        assert!(ghost.moving_fraction < 0.01);
        let walker = verdicts.iter().find(|v| !v.is_ghost).unwrap();
        assert!(walker.moving_fraction > 0.9);
    }

    #[test]
    fn first_frame_passes_through() {
        let (_, cur, mask) = scene();
        let det = GhostDetector::default();
        let (cleaned, verdicts) = det.suppress(&mask, &cur, None).unwrap();
        assert_eq!(cleaned, mask);
        assert!(verdicts.is_empty());
    }

    #[test]
    fn motion_threshold_gates_sensitivity() {
        let (prev, cur, mask) = scene();
        // Absurdly high threshold: nothing counts as moving, everything
        // is a ghost.
        let det = GhostDetector::new(GhostConfig {
            motion_threshold: 10_000,
            min_moving_fraction: 0.05,
        });
        let (cleaned, _) = det.suppress(&mask, &cur, Some(&prev)).unwrap();
        assert!(cleaned.is_blank());
        // Zero fraction required: nothing is ever a ghost.
        let det = GhostDetector::new(GhostConfig {
            motion_threshold: 24,
            min_moving_fraction: 0.0,
        });
        let (cleaned, _) = det.suppress(&mask, &cur, Some(&prev)).unwrap();
        assert_eq!(cleaned, mask);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let (prev, cur, _) = scene();
        let det = GhostDetector::default();
        let wrong = Mask::new(5, 5);
        assert!(det.suppress(&wrong, &cur, Some(&prev)).is_err());
        let small: Frame = ImageBuffer::filled(5, 5, Rgb::BLACK);
        let mask = Mask::new(24, 12);
        assert!(det.suppress(&mask, &cur, Some(&small)).is_err());
    }

    #[test]
    fn blank_mask_yields_blank_and_no_verdicts() {
        let (prev, cur, _) = scene();
        let det = GhostDetector::default();
        let blank = Mask::new(24, 12);
        let (cleaned, verdicts) = det.suppress(&blank, &cur, Some(&prev)).unwrap();
        assert!(cleaned.is_blank());
        assert!(verdicts.is_empty());
    }
}
