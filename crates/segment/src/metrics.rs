//! Per-stage accuracy against ground truth.
//!
//! The synthetic substrate provides the exact silhouette per frame, so
//! each of the paper's qualitative panels (Fig. 2(a)–(d), Fig. 3) becomes
//! a row of numbers: IoU / precision / recall / F1 after each stage.

use crate::error::SegmentError;
use crate::pipeline::SegmentationResult;
use serde::{Deserialize, Serialize};
use slj_imgproc::mask::{Mask, MaskMetrics};

/// Accuracy of every pipeline stage for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// After Step 2 (raw subtraction) — Fig. 2(a).
    pub raw: MaskMetrics,
    /// After Step 3a (noise filter) — Fig. 2(b).
    pub denoised: MaskMetrics,
    /// After Step 3b (spot removal) — Fig. 2(c).
    pub despotted: MaskMetrics,
    /// After Step 4 (hole fill) — Fig. 2(d).
    pub filled: MaskMetrics,
    /// After Step 5 (shadow removal) — Fig. 3 / final.
    pub final_mask: MaskMetrics,
}

/// Evaluates one frame's stages against its true silhouette.
///
/// # Errors
///
/// Returns [`SegmentError::Image`] when mask dimensions disagree.
pub fn evaluate_frame(
    stages: &crate::pipeline::FrameStages,
    truth: &Mask,
) -> Result<StageMetrics, SegmentError> {
    Ok(StageMetrics {
        raw: stages.raw.metrics_against(truth)?,
        denoised: stages.denoised.metrics_against(truth)?,
        despotted: stages.despotted.metrics_against(truth)?,
        filled: stages.filled.metrics_against(truth)?,
        final_mask: stages.final_mask.metrics_against(truth)?,
    })
}

/// Mean per-stage metrics over a clip (micro-averaged: confusion counts
/// are summed before computing rates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClipMetrics {
    /// Summed counts per stage.
    pub stages: StageMetrics,
    /// Number of frames aggregated.
    pub frames: usize,
}

fn add(a: MaskMetrics, b: MaskMetrics) -> MaskMetrics {
    MaskMetrics {
        tp: a.tp + b.tp,
        fp: a.fp + b.fp,
        fn_: a.fn_ + b.fn_,
        tn: a.tn + b.tn,
    }
}

/// Evaluates a whole clip, optionally skipping `skip_edges` frames at
/// each end (background estimation is weakest there).
///
/// # Errors
///
/// Returns [`SegmentError::TooFewFrames`] when no frames remain after
/// skipping, and [`SegmentError::Image`] on dimension mismatches.
pub fn evaluate_clip(
    result: &SegmentationResult,
    truths: &[Mask],
    skip_edges: usize,
) -> Result<ClipMetrics, SegmentError> {
    let n = result.frames.len().min(truths.len());
    let lo = skip_edges;
    let hi = n.saturating_sub(skip_edges);
    if lo >= hi {
        return Err(SegmentError::TooFewFrames {
            got: n,
            need: 2 * skip_edges + 1,
        });
    }
    let zero = MaskMetrics {
        tp: 0,
        fp: 0,
        fn_: 0,
        tn: 0,
    };
    let mut acc = StageMetrics {
        raw: zero,
        denoised: zero,
        despotted: zero,
        filled: zero,
        final_mask: zero,
    };
    for (frame, truth) in result.frames[lo..hi].iter().zip(&truths[lo..hi]) {
        let m = evaluate_frame(frame, truth)?;
        acc.raw = add(acc.raw, m.raw);
        acc.denoised = add(acc.denoised, m.denoised);
        acc.despotted = add(acc.despotted, m.despotted);
        acc.filled = add(acc.filled, m.filled);
        acc.final_mask = add(acc.final_mask, m.final_mask);
    }
    Ok(ClipMetrics {
        stages: acc,
        frames: hi - lo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PipelineConfig, SegmentPipeline};
    use slj_motion::JumpConfig;
    use slj_video::{SceneConfig, SyntheticJump};

    #[test]
    fn clip_metrics_aggregate_counts() {
        let jump = JumpConfig {
            frames: 8,
            ..JumpConfig::default()
        };
        let j = SyntheticJump::generate(&SceneConfig::clean(), &jump, 1);
        let result = SegmentPipeline::new(PipelineConfig::default())
            .run(&j.video)
            .unwrap();
        let clip = evaluate_clip(&result, &j.silhouettes, 1).unwrap();
        assert_eq!(clip.frames, 6);
        assert!(
            clip.stages.final_mask.iou() > 0.8,
            "{}",
            clip.stages.final_mask
        );
        // Total pixel count per stage must equal frames * pixels.
        let m = clip.stages.raw;
        assert_eq!(m.tp + m.fp + m.fn_ + m.tn, 6 * 320 * 240);
    }

    #[test]
    fn skipping_everything_errors() {
        let jump = JumpConfig {
            frames: 4,
            ..JumpConfig::default()
        };
        let j = SyntheticJump::generate(&SceneConfig::clean(), &jump, 2);
        let result = SegmentPipeline::default().run(&j.video).unwrap();
        assert!(evaluate_clip(&result, &j.silhouettes, 2).is_err());
    }

    #[test]
    fn evaluate_frame_catches_dim_mismatch() {
        let jump = JumpConfig {
            frames: 4,
            ..JumpConfig::default()
        };
        let j = SyntheticJump::generate(&SceneConfig::clean(), &jump, 3);
        let result = SegmentPipeline::default().run(&j.video).unwrap();
        let wrong = Mask::new(2, 2);
        assert!(evaluate_frame(&result.frames[0], &wrong).is_err());
    }
}
