//! Steps 3 & 4 — noise removal, small-spot removal and hole filling.
//!
//! Step 3 has two halves in the paper: first the per-pixel 8-neighbour
//! vote ("if the number of neighbors that are not 0 is greater than the
//! threshold, the pixel is kept"), then the removal of leftover
//! "smaller spots" because the target is a single human. Step 4 fills
//! holes, either with the paper's local 4-neighbour rule or (extension)
//! with a border flood fill that also closes the wider holes the local
//! rule provably cannot.

use serde::{Deserialize, Serialize};
use slj_imgproc::components::remove_small_components;
use slj_imgproc::holes::{fill_enclosed_holes, fill_holes_iterated};
use slj_imgproc::mask::Mask;
use slj_imgproc::morph::neighbor_filter;

/// Configuration of the Step-3 noise filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoiseFilterConfig {
    /// A foreground pixel survives when strictly more than this many of
    /// its 8 neighbours are foreground.
    pub neighbor_threshold: usize,
}

impl Default for NoiseFilterConfig {
    fn default() -> Self {
        NoiseFilterConfig {
            neighbor_threshold: 3,
        }
    }
}

/// Step 3a: the 8-neighbour noise filter.
#[derive(Debug, Clone, Default)]
pub struct NoiseFilter {
    config: NoiseFilterConfig,
}

impl NoiseFilter {
    /// Creates a filter with the given configuration.
    pub fn new(config: NoiseFilterConfig) -> Self {
        NoiseFilter { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NoiseFilterConfig {
        &self.config
    }

    /// Applies the neighbour vote.
    pub fn apply(&self, mask: &Mask) -> Mask {
        neighbor_filter(mask, self.config.neighbor_threshold)
    }
}

/// Configuration of the Step-3b spot remover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpotRemoverConfig {
    /// Connected components smaller than this survive only if they are
    /// human-sized; everything below is clutter. The default suits the
    /// default camera (a child is thousands of pixels; drifting spots
    /// are tens).
    pub min_area: usize,
}

impl Default for SpotRemoverConfig {
    fn default() -> Self {
        SpotRemoverConfig { min_area: 150 }
    }
}

/// Step 3b: small-spot removal by connected-component area.
#[derive(Debug, Clone, Default)]
pub struct SpotRemover {
    config: SpotRemoverConfig,
}

impl SpotRemover {
    /// Creates a remover with the given configuration.
    pub fn new(config: SpotRemoverConfig) -> Self {
        SpotRemover { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SpotRemoverConfig {
        &self.config
    }

    /// Removes components smaller than the configured area.
    pub fn apply(&self, mask: &Mask) -> Mask {
        remove_small_components(mask, self.config.min_area)
    }
}

/// How Step 4 fills holes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HoleFillMode {
    /// The paper's rule — a background pixel whose four edge-neighbours
    /// are all foreground becomes foreground — iterated to fixpoint
    /// (bounded by the stored iteration cap). Only closes pinholes.
    PaperRule {
        /// Maximum number of rule applications.
        max_iters: usize,
    },
    /// Extension: fill every background region not connected to the
    /// image border (closes holes of any size).
    FloodFill,
}

/// Step 4: hole filling.
#[derive(Debug, Clone)]
pub struct HoleFiller {
    mode: HoleFillMode,
}

impl Default for HoleFiller {
    fn default() -> Self {
        HoleFiller {
            mode: HoleFillMode::FloodFill,
        }
    }
}

impl HoleFiller {
    /// Creates a filler with the given mode.
    pub fn new(mode: HoleFillMode) -> Self {
        HoleFiller { mode }
    }

    /// The paper's local rule, iterated at most 8 times.
    pub fn paper() -> Self {
        HoleFiller {
            mode: HoleFillMode::PaperRule { max_iters: 8 },
        }
    }

    /// The mode in use.
    pub fn mode(&self) -> HoleFillMode {
        self.mode
    }

    /// Fills holes according to the configured mode.
    pub fn apply(&self, mask: &Mask) -> Mask {
        match self.mode {
            HoleFillMode::PaperRule { max_iters } => fill_holes_iterated(mask, max_iters).0,
            HoleFillMode::FloodFill => fill_enclosed_holes(mask),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_ascii(art: &str) -> Mask {
        let rows: Vec<&str> = art.trim().lines().map(str::trim).collect();
        let h = rows.len();
        let w = rows[0].len();
        Mask::from_fn(w, h, |x, y| rows[y].as_bytes()[x] == b'#')
    }

    #[test]
    fn noise_filter_strips_speckle_keeps_blob() {
        let mut m = from_ascii(
            "..........
             .########.
             .########.
             .########.
             .########.
             ..........",
        );
        m.set(0, 0, true);
        m.set(9, 5, true);
        let out = NoiseFilter::default().apply(&m);
        assert!(!out.get(0, 0));
        assert!(!out.get(9, 5));
        assert!(out.get(4, 3));
    }

    #[test]
    fn noise_filter_threshold_selectivity() {
        // A 3-wide line: interior pixels have 2 neighbours -> the default
        // threshold 3 removes thin lines (they are noise streaks).
        let m = from_ascii(
            ".....
             .###.
             .....",
        );
        assert!(NoiseFilter::default().apply(&m).is_blank());
        // With threshold 1 only the interior pixel (2 neighbours) of the
        // 3-pixel line survives; the endpoints have a single neighbour.
        assert_eq!(
            NoiseFilter::new(NoiseFilterConfig {
                neighbor_threshold: 1
            })
            .apply(&m)
            .count(),
            1
        );
    }

    #[test]
    fn spot_remover_keeps_only_big_components() {
        let m = from_ascii(
            "##........
             ##........
             ....######
             ....######
             ....######",
        );
        let out = SpotRemover::new(SpotRemoverConfig { min_area: 10 }).apply(&m);
        assert_eq!(out.count(), 18);
        assert!(!out.get(0, 0));
    }

    #[test]
    fn hole_filler_paper_vs_flood() {
        // A 2x2 hole: paper rule is stuck, flood fill closes it.
        let m = from_ascii(
            "######
             #....#
             #....#
             ######",
        );
        let paper = HoleFiller::paper().apply(&m);
        assert_eq!(paper, m);
        let flood = HoleFiller::default().apply(&m);
        assert_eq!(flood.count(), 24);
    }

    #[test]
    fn hole_filler_paper_closes_pinhole() {
        let m = from_ascii(
            "###
             #.#
             ###",
        );
        assert_eq!(HoleFiller::paper().apply(&m).count(), 9);
    }

    #[test]
    fn configs_expose_values() {
        assert_eq!(NoiseFilter::default().config().neighbor_threshold, 3);
        assert_eq!(SpotRemover::default().config().min_area, 150);
        assert!(matches!(
            HoleFiller::default().mode(),
            HoleFillMode::FloodFill
        ));
        assert!(matches!(
            HoleFiller::paper().mode(),
            HoleFillMode::PaperRule { max_iters: 8 }
        ));
    }
}
