//! Deterministic retry pacing for supervisors.
//!
//! [`Backoff`] is the escalation half of a restart ladder: each failure
//! advances an attempt counter and yields a capped exponential delay,
//! each sustained recovery resets it. Delays are **abstract ticks** —
//! the caller decides what a tick means (a scheduler round, a frame
//! slot, a millisecond) — so the type never reads a wall clock and unit
//! tests can assert the exact escalation sequence. The optional jitter
//! is seeded and self-contained (a xorshift64* stream), keeping two
//! supervisors with different seeds from retrying in lockstep while
//! every run with the same seed replays bit-identically.

use serde::{Deserialize, Serialize};

/// Parameters of a [`Backoff`] ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffConfig {
    /// Delay of the first retry, ticks.
    pub base: u64,
    /// Multiplier applied per further attempt (values < 2 make the
    /// ladder linear-ish; 0 and 1 both mean "constant delay").
    pub factor: u64,
    /// Upper bound on the pre-jitter delay, ticks.
    pub max: u64,
    /// Maximum extra ticks of seeded jitter added per delay (0 disables
    /// jitter entirely).
    pub jitter: u64,
    /// Seed of the jitter stream; same seed → same delays.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: 1,
            factor: 2,
            max: 16,
            jitter: 0,
            seed: 0,
        }
    }
}

/// A deterministic capped-exponential backoff ladder.
///
/// `next_delay()` is called on each failure and returns how many ticks
/// to wait before the retry; `attempt()` tells the supervisor how far
/// up the ladder it is (rung selection); `reset()` is called when the
/// supervised task has proven healthy again.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backoff {
    config: BackoffConfig,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A fresh ladder at attempt 0.
    pub fn new(config: BackoffConfig) -> Self {
        Backoff {
            config,
            attempt: 0,
            // xorshift64* state must be non-zero; fold the seed through
            // a fixed odd constant and guard the zero case.
            rng: config.seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BackoffConfig {
        &self.config
    }

    /// Failures recorded since the last [`reset`](Backoff::reset).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Records one failure: returns the delay (ticks) before the next
    /// retry and advances the attempt counter.
    pub fn next_delay(&mut self) -> u64 {
        let exp = self
            .config
            .base
            .saturating_mul(self.config.factor.max(1).saturating_pow(self.attempt))
            .min(self.config.max);
        self.attempt = self.attempt.saturating_add(1);
        exp.saturating_add(self.draw_jitter())
    }

    /// Returns to attempt 0 (the supervised task has recovered). The
    /// jitter stream is *not* rewound: a reset ladder re-escalates with
    /// the same delays but fresh jitter, as a real supervisor would.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// One jitter draw in `[0, config.jitter]` (0 when disabled), from
    /// the private xorshift64* stream.
    fn draw_jitter(&mut self) -> u64 {
        if self.config.jitter == 0 {
            return 0;
        }
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        r % (self.config.jitter + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_sequence_is_capped_exponential() {
        let mut b = Backoff::new(BackoffConfig {
            base: 1,
            factor: 2,
            max: 8,
            jitter: 0,
            seed: 0,
        });
        let delays: Vec<u64> = (0..6).map(|_| b.next_delay()).collect();
        assert_eq!(delays, vec![1, 2, 4, 8, 8, 8]);
        assert_eq!(b.attempt(), 6);
    }

    #[test]
    fn reset_restarts_the_ladder() {
        let mut b = Backoff::new(BackoffConfig::default());
        b.next_delay();
        b.next_delay();
        assert_eq!(b.attempt(), 2);
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert_eq!(b.next_delay(), 1, "post-reset ladder starts at base");
    }

    #[test]
    fn jitter_is_seed_deterministic_and_bounded() {
        let config = BackoffConfig {
            base: 2,
            factor: 2,
            max: 16,
            jitter: 3,
            seed: 42,
        };
        let mut a = Backoff::new(config);
        let mut b = Backoff::new(config);
        let da: Vec<u64> = (0..8).map(|_| a.next_delay()).collect();
        let db: Vec<u64> = (0..8).map(|_| b.next_delay()).collect();
        assert_eq!(da, db, "same seed, same delays");
        for (k, d) in da.iter().enumerate() {
            let exp = (2u64 << k.min(3)).min(16);
            assert!(
                (exp..=exp + 3).contains(d),
                "attempt {k}: delay {d} outside [{exp}, {}]",
                exp + 3
            );
        }
        // A different seed diverges somewhere in 8 draws.
        let mut c = Backoff::new(BackoffConfig { seed: 7, ..config });
        let dc: Vec<u64> = (0..8).map(|_| c.next_delay()).collect();
        assert_ne!(da, dc, "different seeds should jitter differently");
    }

    #[test]
    fn constant_factor_keeps_delay_flat() {
        let mut b = Backoff::new(BackoffConfig {
            base: 5,
            factor: 1,
            max: 100,
            jitter: 0,
            seed: 0,
        });
        assert_eq!(b.next_delay(), 5);
        assert_eq!(b.next_delay(), 5);
        assert_eq!(b.next_delay(), 5);
    }

    #[test]
    fn serde_round_trips_mid_ladder() {
        let mut b = Backoff::new(BackoffConfig {
            jitter: 2,
            seed: 9,
            ..BackoffConfig::default()
        });
        b.next_delay();
        let json = serde_json::to_string(&b).unwrap();
        let mut back: Backoff = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.next_delay(), b.next_delay());
    }
}
