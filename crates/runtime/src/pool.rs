//! A persistent worker pool with a per-dispatch epoch barrier.
//!
//! The serve layer used to re-spawn a crossbeam scoped fan-out on every
//! supervisor tick; at high tick rates the thread create/join cost
//! dominates the (small) per-tick work. [`WorkerPool`] keeps the
//! workers alive across dispatches: [`WorkerPool::run`] publishes one
//! job under a mutex, bumps an epoch, and wakes every worker; each
//! worker runs its shard (or skips, when there are fewer shards than
//! workers this round), decrements a `remaining` counter, and the last
//! one wakes the caller. `run` does not return until every worker has
//! checked in, so the job closure may safely borrow the caller's stack
//! — the same guarantee a crossbeam scope gives, without the per-call
//! spawn.
//!
//! Determinism: the pool never decides *what* a shard contains — the
//! caller fixes the shard → work assignment before dispatch (the serve
//! manager uses the same contiguous session chunks as the spawn path),
//! so which OS thread executes a shard can never change any output.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The job reference published for one epoch. Lifetime-erased; see the
/// safety argument on [`WorkerPool::run`].
type Job = &'static (dyn Fn(usize) + Sync);

#[derive(Default)]
struct PoolState {
    /// Bumped once per dispatch; workers run exactly one job per epoch.
    epoch: u64,
    /// Shards in the current dispatch; worker `i` participates iff
    /// `i < shards`.
    shards: usize,
    /// The current epoch's job (cleared by the caller on completion).
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch (all of
    /// them count, including non-participants — that is the barrier).
    remaining: usize,
    /// Set when a participant's job panicked this epoch.
    panicked: bool,
    shutdown: bool,
}

struct Inner {
    state: Mutex<PoolState>,
    /// Signalled on a new epoch (and on shutdown).
    work_cv: Condvar,
    /// Signalled by the last worker to finish an epoch.
    done_cv: Condvar,
}

/// Long-lived worker threads dispatched with [`WorkerPool::run`].
pub struct WorkerPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(PoolState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("slj-pool-{index}"))
                    .spawn(move || worker_loop(&inner, index))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { inner, workers }
    }

    /// The number of persistent workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `job(i)` for every shard `i < shards` across the pool and
    /// blocks until all workers have passed the epoch barrier.
    ///
    /// `shards` must not exceed [`WorkerPool::threads`]; each shard is
    /// executed by exactly one worker (worker `i` runs shard `i`), so
    /// the caller's shard assignment fully determines the work split.
    ///
    /// # Panics
    ///
    /// Panics with `"session steps are panic-isolated"` if any shard's
    /// job panicked (after every worker has reached the barrier, so the
    /// pool stays consistent for the next dispatch) — mirroring the
    /// scoped-spawn path this pool replaces.
    pub fn run(&self, shards: usize, job: &(dyn Fn(usize) + Sync)) {
        if shards == 0 {
            return;
        }
        assert!(
            shards <= self.workers.len(),
            "dispatching {shards} shards on a {}-worker pool",
            self.workers.len()
        );
        // SAFETY: the job reference is only reachable by workers during
        // the epoch published below, and this function does not return
        // until `remaining == 0` — i.e. until every worker is done with
        // it — so erasing the lifetime to 'static never lets a worker
        // outlive the borrow.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        let mut state = self.inner.state.lock().expect("pool state poisoned");
        state.job = Some(job);
        state.shards = shards;
        state.remaining = self.workers.len();
        state.panicked = false;
        state.epoch = state.epoch.wrapping_add(1);
        self.inner.work_cv.notify_all();
        while state.remaining != 0 {
            state = self.inner.done_cv.wait(state).expect("pool state poisoned");
        }
        state.job = None;
        let panicked = state.panicked;
        drop(state);
        if panicked {
            panic!("session steps are panic-isolated");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("pool state poisoned");
            state.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(inner: &Inner, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, shards) = {
            let mut state = inner.state.lock().expect("pool state poisoned");
            while !state.shutdown && state.epoch == seen_epoch {
                state = inner.work_cv.wait(state).expect("pool state poisoned");
            }
            if state.shutdown {
                return;
            }
            seen_epoch = state.epoch;
            (state.job.expect("job published with epoch"), state.shards)
        };
        let panicked = if index < shards {
            catch_unwind(AssertUnwindSafe(|| job(index))).is_err()
        } else {
            false
        };
        let mut state = inner.state.lock().expect("pool state poisoned");
        if panicked {
            state.panicked = true;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            inner.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_shard_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for round in 1..=100usize {
            pool.run(4, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), round);
            }
        }
    }

    #[test]
    fn fewer_shards_than_workers_skips_the_rest() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(2, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits[0].load(Ordering::Relaxed), 1);
        assert_eq!(hits[1].load(Ordering::Relaxed), 1);
        assert_eq!(hits[2].load(Ordering::Relaxed), 0);
        assert_eq!(hits[3].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_shards_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run(0, &|_| panic!("no shard should run"));
    }

    #[test]
    fn borrows_caller_stack_mutably_through_disjoint_shards() {
        let pool = WorkerPool::new(3);
        let mut data = [0usize; 3];
        let shards: Vec<Mutex<&mut usize>> = data.iter_mut().map(Mutex::new).collect();
        pool.run(3, &|i| {
            **shards[i].lock().unwrap() = i + 10;
        });
        drop(shards);
        assert_eq!(data, [10, 11, 12]);
    }

    #[test]
    fn panicking_job_propagates_after_the_barrier_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|i| {
                if i == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must propagate to the caller");
        // The pool is still consistent: the next dispatch runs cleanly.
        let hits = AtomicUsize::new(0);
        pool.run(2, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "shards")]
    fn more_shards_than_workers_is_a_bug() {
        let pool = WorkerPool::new(2);
        pool.run(3, &|_| {});
    }
}
