//! Shared execution-layer configuration for the workspace.
//!
//! Every stage that can fan work out over threads — the segmentation
//! pipeline (per-frame stages), the GA engine (per-genome fitness) —
//! takes its thread count from one [`Parallelism`] value that flows
//! top-down: CLI `--threads` → `AnalyzerConfig` → `PipelineConfig` /
//! `TrackerConfig` → `GaConfig.threads`. Centralising the knob keeps
//! "how parallel is this run" a single decision instead of four
//! hardcoded integers.
//!
//! Parallelism is a *throughput* setting, never a *semantics* setting:
//! every parallel code path in the workspace is required (and tested)
//! to produce bit-identical output to its serial twin, so any value
//! here is safe for reproducibility.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

pub mod backoff;
pub mod pool;

pub use backoff::{Backoff, BackoffConfig};
pub use pool::WorkerPool;

/// The number of hardware threads actually available to this process,
/// via [`std::thread::available_parallelism`] (1 when the runtime
/// cannot report a count).
///
/// This is the oversubscription cap: [`Parallelism::Auto`] resolves to
/// exactly this value, and benchmark drivers clamp requested fixed
/// counts to it (`requested.min(available_threads())`) — more workers
/// than cores only adds scheduler churn to CPU-bound stages.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// How many worker threads a stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Parallelism {
    /// One thread, no worker fan-out (the pre-parallel behaviour).
    #[default]
    Serial,
    /// Exactly this many threads (values of 0 and 1 behave as
    /// [`Parallelism::Serial`]).
    Fixed(usize),
    /// One thread per available hardware core, via
    /// [`std::thread::available_parallelism`] (falls back to serial
    /// when the runtime cannot report a count).
    Auto,
}

impl Parallelism {
    /// The resolved worker-thread count, always at least 1.
    pub fn threads(&self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => available_threads(),
        }
    }

    /// Whether the resolved count is a single thread.
    pub fn is_serial(&self) -> bool {
        self.threads() == 1
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Serial => f.write_str("serial"),
            Parallelism::Fixed(n) => write!(f, "{n}"),
            Parallelism::Auto => f.write_str("auto"),
        }
    }
}

/// Error from parsing a `--threads`-style spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParallelismError(String);

impl fmt::Display for ParseParallelismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid thread count '{}': expected a positive integer, 'serial' or 'auto'",
            self.0
        )
    }
}

impl std::error::Error for ParseParallelismError {}

impl FromStr for Parallelism {
    type Err = ParseParallelismError;

    /// Parses the CLI spellings: `auto`, `serial`, or a positive
    /// integer (where `1` means serial).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "auto" => Ok(Parallelism::Auto),
            "serial" => Ok(Parallelism::Serial),
            raw => match raw.parse::<usize>() {
                Ok(0) | Err(_) => Err(ParseParallelismError(raw.to_owned())),
                Ok(1) => Ok(Parallelism::Serial),
                Ok(n) => Ok(Parallelism::Fixed(n)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_fixed_resolve() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert_eq!(Parallelism::Fixed(1).threads(), 1);
        assert_eq!(Parallelism::Fixed(4).threads(), 4);
        assert!(Parallelism::Serial.is_serial());
        assert!(Parallelism::Fixed(1).is_serial());
        assert!(!Parallelism::Fixed(2).is_serial());
    }

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    fn auto_is_capped_at_available_hardware() {
        // Auto must never oversubscribe: it resolves to exactly the
        // hardware thread count the runtime reports.
        assert_eq!(Parallelism::Auto.threads(), available_threads());
        assert!(available_threads() >= 1);
    }

    #[test]
    fn parses_cli_spellings() {
        assert_eq!("auto".parse(), Ok(Parallelism::Auto));
        assert_eq!("serial".parse(), Ok(Parallelism::Serial));
        assert_eq!("1".parse(), Ok(Parallelism::Serial));
        assert_eq!(" 4 ".parse(), Ok(Parallelism::Fixed(4)));
        assert!("0".parse::<Parallelism>().is_err());
        assert!("-2".parse::<Parallelism>().is_err());
        assert!("fast".parse::<Parallelism>().is_err());
        assert!("".parse::<Parallelism>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for p in [
            Parallelism::Serial,
            Parallelism::Fixed(8),
            Parallelism::Auto,
        ] {
            assert_eq!(
                p.to_string().parse::<Parallelism>().unwrap().threads(),
                p.threads()
            );
        }
    }

    #[test]
    fn serde_round_trips() {
        for p in [
            Parallelism::Serial,
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: Parallelism = serde_json::from_str(&json).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn default_is_serial() {
        assert_eq!(Parallelism::default(), Parallelism::Serial);
    }
}
