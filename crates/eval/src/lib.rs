//! `slj-eval` — the ground-truth evaluation harness.
//!
//! The paper validates its tracker by eye; the synthetic scenes in
//! `slj-video` know the exact pose and silhouette behind every frame,
//! so this crate turns validation into numbers and the numbers into
//! shipped defaults:
//!
//! * [`metrics`] — per-frame pose accuracy (endpoint RMSE, per-stick
//!   angle error) and segmentation IoU against truth re-rendered from
//!   [`slj_video::ClipTruth`] poses.
//! * [`matrix`] — the fault-matrix runner: a seeded grid of
//!   (clip × fault profile × gap policy) cells producing the
//!   deterministic `EVAL_accuracy.json` report, including the
//!   kinematic-interpolation vs carry-over A/B on gap frames.
//! * [`calibrate`] — the ROC sweep over segmentation quality
//!   thresholds and the confidence-model fit that back the defaults
//!   committed into `slj-segment` and `slj`.
//!
//! Everything here is seeded and deterministic: two runs of the same
//! matrix emit byte-identical JSON, which is what lets CI diff the
//! accuracy report like source code.

pub mod calibrate;
pub mod matrix;
pub mod metrics;

pub use calibrate::{
    calibrate, collect_corpus, fit_confidence, sweep_quality_thresholds, CalibrationReport,
    ConfidenceFit, CorpusFrame, SweepConfig, ThresholdSweep,
};
pub use matrix::{
    markdown_summary, run_matrix, standard_profiles, CellResult, EvalReport, FaultProfile,
    GapPolicy, InterpolationAb, MatrixConfig, SCHEMA,
};
pub use metrics::{
    frame_pose_error, pose_seq_errors, segmentation_iou, FramePoseError, PoseAccuracy,
};
