//! Calibration of the quality thresholds and the confidence model
//! against ground truth.
//!
//! The segmentation health thresholds ([`QualityConfig`]) and the
//! per-rung confidence factors ([`ConfidenceModel`]) were hand-picked
//! when the pipeline was built. This module replaces the hand-picking
//! with measurement:
//!
//! 1. **Corpus** — every frame of the fault matrix (interpolate
//!    policy), carrying its threshold-independent quality metrics
//!    (area ratio, fragmentation, border clip), the recovery rung that
//!    produced its pose, and its true endpoint RMSE. Because the
//!    metrics are stored raw, thresholds can be re-applied offline —
//!    the grid sweep never re-runs the pipeline.
//! 2. **ROC sweep** — a grid over the four quality thresholds, each
//!    point scored as a classifier of "frame has high pose error"
//!    (above [`SweepConfig::error_threshold_m`]). The winner maximises
//!    Youden's J = TPR − FPR; ties keep the earlier grid point, and the
//!    shipped defaults lead every axis, so a tie never churns them.
//! 3. **Confidence fit** — per-rung factors from the measured error
//!    ratio `baseline / rung mean RMSE` (baseline = plain tracked
//!    frames), and the per-issue penalty by least squares on the same
//!    relative-accuracy scale.
//!
//! The emitted [`CalibrationReport`] is deterministic and is the
//! provenance trail for the defaults committed into `slj-segment` and
//! `slj`.

use crate::matrix::{self, rung_key, MatrixConfig};
use crate::metrics;
use serde::{Deserialize, Serialize};
use slj::ConfidenceModel;
use slj_ga::tracker::RecoveryAction;
use slj_segment::quality::QualityConfig;
use std::collections::BTreeMap;

/// Schema identifier written into every calibration report.
pub const SCHEMA: &str = "slj-eval-calibration/1";

/// One frame of the calibration corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusFrame {
    /// Clip generation seed.
    pub clip_seed: u64,
    /// Fault profile name.
    pub profile: String,
    /// Frame index within the clip.
    pub frame: usize,
    /// Foreground area over the clip's reference area.
    pub area_ratio: f64,
    /// Fraction of foreground outside the largest component.
    pub fragmentation: f64,
    /// Fraction of foreground within the border band.
    pub border_clip: f64,
    /// Recovery rung that produced the pose (report key form).
    pub rung: String,
    /// Quality issues flagged under the *shipped* thresholds.
    pub issues: usize,
    /// True endpoint RMSE of the raw per-frame estimate, metres.
    pub endpoint_rmse_m: f64,
}

/// Collects the calibration corpus by running every (seed × profile)
/// cell of the matrix under the default (interpolate) ladder.
///
/// Cells whose analysis aborts are skipped — the corpus only describes
/// frames that produced a pose to score.
pub fn collect_corpus(config: &MatrixConfig) -> Vec<CorpusFrame> {
    let mut corpus = Vec::new();
    for &seed in &config.seeds {
        for profile in &config.profiles {
            let run = matrix::analyze_cell(seed, &profile.fault, true, config.max_degraded_frames);
            let Ok(report) = run.report else { continue };
            let dims = &slj_motion::JumpConfig::default().dims;
            let raw_poses: Vec<_> = report.tracking.iter().map(|t| t.pose).collect();
            let errors = metrics::pose_seq_errors(&raw_poses, &run.truth, dims);
            for (health, err) in report.health.iter().zip(&errors) {
                corpus.push(CorpusFrame {
                    clip_seed: seed,
                    profile: profile.name.clone(),
                    frame: health.frame,
                    area_ratio: health.quality.area_ratio,
                    fragmentation: health.quality.fragmentation,
                    border_clip: health.quality.border_clip,
                    rung: rung_key(health.recovery).to_owned(),
                    issues: health.quality.issues.len(),
                    endpoint_rmse_m: err.endpoint_rmse_m,
                });
            }
        }
    }
    corpus
}

/// Grid and labelling for the threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// A frame counts as "bad" when its endpoint RMSE exceeds this.
    /// The default sits at roughly twice the clean-clip tracked
    /// baseline of the fast profile on the compact camera (~0.15 m):
    /// below it a frame is within normal GA noise, above it something
    /// materially went wrong — the separation the quality gate exists
    /// to detect.
    pub error_threshold_m: f64,
    /// Candidate `min_area_ratio` values (shipped default first).
    pub min_area_ratio: Vec<f64>,
    /// Candidate `max_area_ratio` values.
    pub max_area_ratio: Vec<f64>,
    /// Candidate `max_fragmentation` values.
    pub max_fragmentation: Vec<f64>,
    /// Candidate `max_border_clip` values.
    pub max_border_clip: Vec<f64>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            error_threshold_m: 0.25,
            min_area_ratio: vec![0.45, 0.3, 0.55, 0.65],
            max_area_ratio: vec![2.2, 1.6, 2.8],
            max_fragmentation: vec![0.35, 0.2, 0.5],
            max_border_clip: vec![0.25, 0.15, 0.4],
        }
    }
}

/// One grid point of the ROC sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    pub min_area_ratio: f64,
    pub max_area_ratio: f64,
    pub max_fragmentation: f64,
    pub max_border_clip: f64,
    /// Fraction of truly-bad frames the thresholds flag.
    pub true_positive_rate: f64,
    /// Fraction of good frames the thresholds flag.
    pub false_positive_rate: f64,
    /// TPR − FPR.
    pub youden_j: f64,
}

/// The full ROC sweep over the quality-threshold grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSweep {
    /// Labelling threshold used, metres.
    pub error_threshold_m: f64,
    /// Corpus frames scored.
    pub frames: usize,
    /// Frames labelled bad (RMSE above the threshold).
    pub bad_frames: usize,
    /// The J-maximising grid point.
    pub best: SweepPoint,
    /// Every grid point, in grid order.
    pub points: Vec<SweepPoint>,
}

/// Scores every grid point of `config` as a bad-frame classifier.
pub fn sweep_quality_thresholds(corpus: &[CorpusFrame], config: &SweepConfig) -> ThresholdSweep {
    let bad: Vec<bool> = corpus
        .iter()
        .map(|f| f.endpoint_rmse_m > config.error_threshold_m)
        .collect();
    let bad_frames = bad.iter().filter(|b| **b).count();
    let good_frames = corpus.len() - bad_frames;

    let mut points = Vec::new();
    for &min_ar in &config.min_area_ratio {
        for &max_ar in &config.max_area_ratio {
            for &max_frag in &config.max_fragmentation {
                for &max_border in &config.max_border_clip {
                    let mut tp = 0usize;
                    let mut fp = 0usize;
                    for (f, &is_bad) in corpus.iter().zip(&bad) {
                        let flagged = f.area_ratio < min_ar
                            || f.area_ratio > max_ar
                            || f.fragmentation > max_frag
                            || f.border_clip > max_border;
                        if flagged {
                            if is_bad {
                                tp += 1;
                            } else {
                                fp += 1;
                            }
                        }
                    }
                    let tpr = if bad_frames > 0 {
                        tp as f64 / bad_frames as f64
                    } else {
                        0.0
                    };
                    let fpr = if good_frames > 0 {
                        fp as f64 / good_frames as f64
                    } else {
                        0.0
                    };
                    points.push(SweepPoint {
                        min_area_ratio: min_ar,
                        max_area_ratio: max_ar,
                        max_fragmentation: max_frag,
                        max_border_clip: max_border,
                        true_positive_rate: tpr,
                        false_positive_rate: fpr,
                        youden_j: tpr - fpr,
                    });
                }
            }
        }
    }

    // Strictly-greater comparison: ties keep the earliest grid point,
    // and the shipped defaults lead the grid.
    let best = *points
        .iter()
        .reduce(|a, b| if b.youden_j > a.youden_j { b } else { a })
        .expect("grid is non-empty");
    ThresholdSweep {
        error_threshold_m: config.error_threshold_m,
        frames: corpus.len(),
        bad_frames,
        best,
        points,
    }
}

/// Measured accuracy of one recovery rung.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RungFit {
    /// Corpus frames the rung produced.
    pub frames: usize,
    /// Mean endpoint RMSE of those frames, metres.
    pub mean_endpoint_rmse_m: f64,
    /// `clamp(baseline / mean RMSE, 0, 1)` — the rung's measured
    /// relative accuracy, i.e. the fitted confidence factor.
    pub factor: f64,
}

/// The fitted confidence model plus its evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceFit {
    /// Mean endpoint RMSE of plain tracked frames — the accuracy every
    /// factor is measured against.
    pub baseline_rmse_m: f64,
    /// Per-rung measurements, keyed like the matrix report.
    pub rungs: BTreeMap<String, RungFit>,
    /// Tracked frames with ≥ 1 quality issue used for the penalty fit.
    pub issue_frames: usize,
    /// Least-squares per-issue confidence penalty.
    pub issue_penalty: f64,
    /// The model to ship: fitted factors, with the gap rungs
    /// (interpolated / carried) capped below the degraded-confidence
    /// floor so synthesised poses can never be scored as trusted.
    pub recommended: ConfidenceModel,
}

/// Highest factor a gap rung may receive: just under the analyzer's
/// degraded-confidence floor (0.5), so interpolated and carried frames
/// always stay excluded from best-effort scoring no matter how well
/// interpolation does on a particular corpus.
pub const GAP_FACTOR_CAP: f64 = 0.45;

/// Fits the confidence model to the corpus.
pub fn fit_confidence(corpus: &[CorpusFrame]) -> ConfidenceFit {
    let mut by_rung: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for f in corpus {
        by_rung
            .entry(f.rung.as_str())
            .or_default()
            .push(f.endpoint_rmse_m);
    }
    let rung_mean = |key: &str| -> Option<f64> {
        let v = by_rung.get(key)?;
        (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64)
    };
    let baseline = rung_mean(rung_key(RecoveryAction::None)).unwrap_or(0.0);

    let factor_of = |mean: f64| -> f64 {
        if mean <= 0.0 {
            1.0
        } else {
            (baseline / mean).clamp(0.0, 1.0)
        }
    };
    let rungs: BTreeMap<String, RungFit> = by_rung
        .iter()
        .map(|(key, v)| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (
                (*key).to_owned(),
                RungFit {
                    frames: v.len(),
                    mean_endpoint_rmse_m: mean,
                    factor: factor_of(mean),
                },
            )
        })
        .collect();
    let fitted = |action: RecoveryAction, fallback: f64| -> f64 {
        rungs.get(rung_key(action)).map_or(fallback, |r| r.factor)
    };

    // Per-issue penalty: over tracked frames with k ≥ 1 issues, the
    // model predicts relative accuracy 1 − p·k; least squares on
    // a_k = clamp(baseline / rmse, 0, 1) gives p = Σ k(1 − a_k) / Σ k².
    let mut num = 0.0;
    let mut den = 0.0;
    let mut issue_frames = 0usize;
    let tracked = rung_key(RecoveryAction::None);
    for f in corpus {
        if f.rung != tracked || f.issues == 0 {
            continue;
        }
        issue_frames += 1;
        let k = f.issues as f64;
        let a = factor_of(f.endpoint_rmse_m);
        num += k * (1.0 - a);
        den += k * k;
    }
    let defaults = ConfidenceModel::default();
    let issue_penalty = if den > 0.0 {
        (num / den).clamp(0.0, 1.0)
    } else {
        defaults.issue_penalty
    };

    let recommended = ConfidenceModel {
        issue_penalty,
        widened_factor: fitted(RecoveryAction::WidenedSearch, defaults.widened_factor),
        cold_restart_factor: fitted(RecoveryAction::ColdRestart, defaults.cold_restart_factor),
        interpolated_factor: fitted(RecoveryAction::Interpolated, defaults.interpolated_factor)
            .min(GAP_FACTOR_CAP),
        carried_factor: fitted(RecoveryAction::CarriedOver, defaults.carried_factor)
            .min(GAP_FACTOR_CAP),
    };
    ConfidenceFit {
        baseline_rmse_m: baseline,
        rungs,
        issue_frames,
        issue_penalty,
        recommended,
    }
}

/// The deterministic calibration report (schema [`SCHEMA`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Clip seeds the corpus came from.
    pub seeds: Vec<u64>,
    /// Profile names the corpus came from.
    pub profiles: Vec<String>,
    /// Corpus size, frames.
    pub frames: usize,
    /// The quality-threshold ROC sweep.
    pub sweep: ThresholdSweep,
    /// The quality thresholds to ship (the sweep winner over the
    /// shipped `border_margin` / reference mode).
    pub recommended_quality: QualityConfig,
    /// The confidence-model fit.
    pub confidence: ConfidenceFit,
}

impl CalibrationReport {
    /// The canonical serialisation: pretty JSON + trailing newline.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises") + "\n"
    }
}

/// Runs the whole calibration: corpus → sweep → fit.
pub fn calibrate(matrix: &MatrixConfig, sweep_config: &SweepConfig) -> CalibrationReport {
    let corpus = collect_corpus(matrix);
    let sweep = sweep_quality_thresholds(&corpus, sweep_config);
    let confidence = fit_confidence(&corpus);
    let recommended_quality = QualityConfig {
        min_area_ratio: sweep.best.min_area_ratio,
        max_area_ratio: sweep.best.max_area_ratio,
        max_fragmentation: sweep.best.max_fragmentation,
        max_border_clip: sweep.best.max_border_clip,
        ..QualityConfig::default()
    };
    CalibrationReport {
        schema: SCHEMA.to_owned(),
        seeds: matrix.seeds.clone(),
        profiles: matrix.profiles.iter().map(|p| p.name.clone()).collect(),
        frames: corpus.len(),
        sweep,
        recommended_quality,
        confidence,
    }
}

/// Renders the human-facing summary of a calibration report.
pub fn markdown_summary(report: &CalibrationReport) -> String {
    let mut out = String::new();
    out.push_str("# Calibration report\n\n");
    out.push_str(&format!(
        "Schema `{}` · {} corpus frames from {} seed(s) × {} profile(s); \
         {} frames ({:.0}%) labelled bad at {:.0} mm endpoint RMSE.\n\n",
        report.schema,
        report.frames,
        report.seeds.len(),
        report.profiles.len(),
        report.sweep.bad_frames,
        100.0 * report.sweep.bad_frames as f64 / report.frames.max(1) as f64,
        1000.0 * report.sweep.error_threshold_m,
    ));

    let b = &report.sweep.best;
    out.push_str("## Quality thresholds (ROC sweep winner)\n\n");
    out.push_str(&format!(
        "`min_area_ratio` {} · `max_area_ratio` {} · `max_fragmentation` {} \
         · `max_border_clip` {}\n\nTPR {:.3}, FPR {:.3}, Youden's J {:.3} \
         over a {}-point grid.\n\n",
        b.min_area_ratio,
        b.max_area_ratio,
        b.max_fragmentation,
        b.max_border_clip,
        b.true_positive_rate,
        b.false_positive_rate,
        b.youden_j,
        report.sweep.points.len(),
    ));

    out.push_str("## Confidence factors\n\n");
    out.push_str(&format!(
        "Baseline (tracked) endpoint RMSE: {:.4} m.\n\n",
        report.confidence.baseline_rmse_m
    ));
    out.push_str("| rung | frames | RMSE (m) | fitted factor |\n|---|---|---|---|\n");
    for (name, fit) in &report.confidence.rungs {
        out.push_str(&format!(
            "| {} | {} | {:.4} | {:.3} |\n",
            name, fit.frames, fit.mean_endpoint_rmse_m, fit.factor
        ));
    }
    let m = &report.confidence.recommended;
    out.push_str(&format!(
        "\nRecommended model: issue_penalty {:.3} ({} issue frames), widened {:.3}, \
         cold restart {:.3}, interpolated {:.3}, carried {:.3} \
         (gap rungs capped at {GAP_FACTOR_CAP}).\n",
        m.issue_penalty,
        report.confidence.issue_frames,
        m.widened_factor,
        m.cold_restart_factor,
        m.interpolated_factor,
        m.carried_factor,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::FaultProfile;
    use slj_runtime::Parallelism;
    use slj_video::FaultConfig;

    fn mini_matrix() -> MatrixConfig {
        MatrixConfig {
            seeds: vec![21],
            profiles: vec![
                FaultProfile {
                    name: "clean".into(),
                    fault: FaultConfig::default(),
                },
                FaultProfile {
                    name: "occlusion-dropout".into(),
                    fault: FaultConfig {
                        occlusion_bars: 1,
                        bar_width_px: 22,
                        ..FaultConfig::default()
                    },
                },
            ],
            max_degraded_frames: 20,
            parallelism: Parallelism::Serial,
        }
    }

    fn synthetic_corpus() -> Vec<CorpusFrame> {
        // 10 clean tracked frames, 5 blurred bad frames with clear
        // metric separation, 3 carried frames, 2 tracked frames with
        // one issue each.
        let mut corpus = Vec::new();
        let frame = |i: usize, ar: f64, rung: &str, issues: usize, rmse: f64| CorpusFrame {
            clip_seed: 1,
            profile: "synthetic".into(),
            frame: i,
            area_ratio: ar,
            fragmentation: 0.05,
            border_clip: 0.0,
            rung: rung.into(),
            issues,
            endpoint_rmse_m: rmse,
        };
        for i in 0..10 {
            corpus.push(frame(i, 1.0, "tracked", 0, 0.02));
        }
        for i in 10..15 {
            corpus.push(frame(i, 0.2, "tracked", 1, 0.3));
        }
        for i in 15..18 {
            corpus.push(frame(i, 0.1, "carried_over", 1, 0.4));
        }
        corpus
    }

    #[test]
    fn sweep_flags_low_area_frames() {
        let corpus = synthetic_corpus();
        let sweep = sweep_quality_thresholds(&corpus, &SweepConfig::default());
        assert_eq!(sweep.frames, 18);
        assert_eq!(sweep.bad_frames, 8);
        // Perfect separation exists (bad frames all have tiny area
        // ratio), so the best point is a perfect classifier.
        assert_eq!(sweep.best.youden_j, 1.0, "{:?}", sweep.best);
        assert_eq!(sweep.points.len(), 4 * 3 * 3 * 3);
    }

    #[test]
    fn confidence_fit_orders_rungs_and_caps_gap_factors() {
        let corpus = synthetic_corpus();
        let fit = fit_confidence(&corpus);
        // Baseline over all tracked frames (incl. the bad ones).
        assert!(fit.baseline_rmse_m > 0.02 && fit.baseline_rmse_m < 0.2);
        let carried = fit.rungs["carried_over"];
        assert_eq!(carried.frames, 3);
        assert!(carried.factor < 1.0);
        assert!(fit.recommended.carried_factor <= GAP_FACTOR_CAP);
        assert!(fit.recommended.interpolated_factor <= GAP_FACTOR_CAP);
        // Issue penalty is fitted from the 5 one-issue tracked frames
        // and positive (they really are worse).
        assert_eq!(fit.issue_frames, 5);
        assert!(fit.issue_penalty > 0.0 && fit.issue_penalty <= 1.0);
    }

    #[test]
    fn calibration_report_is_deterministic() {
        let config = mini_matrix();
        let sweep = SweepConfig::default();
        let a = calibrate(&config, &sweep);
        let b = calibrate(&config, &sweep);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.schema, SCHEMA);
        assert!(a.frames > 0);
        let md = markdown_summary(&a);
        assert!(md.contains("Quality thresholds"));
        assert!(md.contains("Recommended model"));
    }
}
