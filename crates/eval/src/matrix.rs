//! The fault-matrix runner: a seeded grid of
//! (clip × fault profile × recovery policy), each cell run through the
//! full pipeline and scored against ground truth.
//!
//! Every cell is deterministic — synthetic clip, fault realisation and
//! GA are all seeded — so the emitted [`EvalReport`] (schema
//! [`SCHEMA`]) is byte-identical across runs and machines, and can be
//! diffed in CI like any other artifact. Cells fan out across workers
//! under the workspace [`Parallelism`] knob; each cell runs its own
//! pipeline serially, so the thread count changes throughput only.

use crate::metrics::{self, FramePoseError, PoseAccuracy};
use serde::{Deserialize, Serialize};
use slj::{AnalysisReport, AnalyzerConfig, JumpAnalyzer, RobustnessPolicy};
use slj_ga::tracker::RecoveryAction;
use slj_imgproc::mask::Mask;
use slj_motion::{JumpConfig, Pose};
use slj_runtime::Parallelism;
use slj_video::{Camera, FaultConfig, FaultInjector, NoiseBurst, SceneConfig, SyntheticJump};
use std::collections::BTreeMap;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "slj-eval/1";

/// One named fault profile of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Stable name used in report keys (kebab-case).
    pub name: String,
    /// The injected faults; the profile's `seed` is mixed with the
    /// clip seed per cell, so clips see decorrelated realisations.
    pub fault: FaultConfig,
}

impl FaultProfile {
    fn new(name: &str, fault: FaultConfig) -> Self {
        FaultProfile {
            name: name.to_owned(),
            fault,
        }
    }
}

/// The two recovery policies every cell is run under: the full ladder
/// with the kinematic-interpolation rung, and the same ladder with the
/// rung disabled (verbatim carry-over) — the A/B behind
/// [`EvalReport::interpolation_ab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapPolicy {
    /// `RecoveryPolicy::interpolate = true` (the default ladder).
    Interpolate,
    /// `RecoveryPolicy::interpolate = false` (carry-over only).
    Carry,
}

impl GapPolicy {
    /// Stable report key.
    pub fn key(self) -> &'static str {
        match self {
            GapPolicy::Interpolate => "interpolate",
            GapPolicy::Carry => "carry",
        }
    }
}

/// The matrix to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixConfig {
    /// Clip generation seeds (one synthetic jump per seed).
    pub seeds: Vec<u64>,
    /// Fault profiles; `clean` (no faults) is the usual baseline entry.
    pub profiles: Vec<FaultProfile>,
    /// Best-effort degraded-frame budget per cell.
    pub max_degraded_frames: usize,
    /// Worker threads for the cell fan-out (cells themselves run
    /// serially inside).
    pub parallelism: Parallelism,
}

impl MatrixConfig {
    /// The CI-sized matrix: two seeded clips across the fault taxonomy,
    /// severities picked so every recovery rung (including the gap
    /// rungs) actually fires somewhere in the grid.
    pub fn small() -> Self {
        MatrixConfig {
            seeds: vec![21, 42],
            profiles: standard_profiles(),
            max_degraded_frames: 20,
            parallelism: Parallelism::Serial,
        }
    }

    /// A denser sweep: more clips over the same profiles.
    pub fn full() -> Self {
        MatrixConfig {
            seeds: vec![7, 21, 42, 63, 84],
            ..MatrixConfig::small()
        }
    }

    fn cells(&self) -> Vec<(u64, FaultProfile, GapPolicy)> {
        let mut cells = Vec::new();
        for &seed in &self.seeds {
            for profile in &self.profiles {
                for policy in [GapPolicy::Interpolate, GapPolicy::Carry] {
                    cells.push((seed, profile.clone(), policy));
                }
            }
        }
        cells
    }
}

/// The shared fault taxonomy: one profile per injector family at a
/// plausible severity, plus `occlusion-dropout`, whose bar is wide
/// enough to swallow the whole subject — the bar sits in the
/// background median, so subtraction erases the occluded body and the
/// masks go truly blank for a few frames while the neighbouring
/// anchors stay clean. That transient full occlusion is the
/// physically-honest scenario the gap rungs (interpolate/carry) exist
/// for.
pub fn standard_profiles() -> Vec<FaultProfile> {
    vec![
        FaultProfile::new("clean", FaultConfig::default()),
        FaultProfile::new(
            "dropped-frames",
            FaultConfig {
                drop_prob: 0.15,
                ..FaultConfig::default()
            },
        ),
        FaultProfile::new(
            "sensor-noise-burst",
            FaultConfig {
                burst: Some(NoiseBurst {
                    count: 2,
                    len: 3,
                    amplitude: 45,
                }),
                ..FaultConfig::default()
            },
        ),
        FaultProfile::new(
            "occlusion-bar",
            FaultConfig {
                occlusion_bars: 1,
                ..FaultConfig::default()
            },
        ),
        FaultProfile::new(
            "motion-blur",
            FaultConfig {
                blur_px: 3,
                ..FaultConfig::default()
            },
        ),
        FaultProfile::new(
            "occlusion-dropout",
            FaultConfig {
                occlusion_bars: 1,
                bar_width_px: 22,
                ..FaultConfig::default()
            },
        ),
    ]
}

/// Stable report key for a recovery rung.
pub fn rung_key(recovery: RecoveryAction) -> &'static str {
    match recovery {
        RecoveryAction::None => "tracked",
        RecoveryAction::WidenedSearch => "widened_search",
        RecoveryAction::ColdRestart => "cold_restart",
        RecoveryAction::Interpolated => "interpolated",
        RecoveryAction::CarriedOver => "carried_over",
    }
}

/// One completed cell of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Clip generation seed.
    pub clip_seed: u64,
    /// Fault profile name.
    pub profile: String,
    /// Gap policy key (`interpolate` or `carry`).
    pub policy: String,
    /// Frames analysed.
    pub frames: usize,
    /// Frames below the confidence floor.
    pub degraded_frames: usize,
    /// Frames per recovery rung (absent rungs omitted).
    pub rungs: BTreeMap<String, usize>,
    /// Accuracy of the final (smoothed) pose output over all frames.
    pub pose: PoseAccuracy,
    /// Accuracy of the *raw* per-frame estimates over the gap frames —
    /// the frames whose pose was synthesised (interpolated or carried)
    /// rather than fitted. `None` when the cell had no gap frames.
    pub gap_pose: Option<PoseAccuracy>,
    /// Mean IoU of the final masks against re-rendered truth.
    pub mean_iou: f64,
    /// Worst single-frame IoU.
    pub min_iou: f64,
}

/// A cell whose analysis aborted (e.g. degraded budget exhausted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFailure {
    pub clip_seed: u64,
    pub profile: String,
    pub policy: String,
    /// The analyzer's error display.
    pub error: String,
}

/// Aggregate over every cell of one fault profile (interpolate-policy
/// cells only, so the axis measures the fault, not the A/B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultAggregate {
    /// Cells aggregated.
    pub cells: usize,
    /// Mean over cells of the mean endpoint RMSE, metres.
    pub mean_endpoint_rmse_m: f64,
    /// Mean over cells of the mean segmentation IoU.
    pub mean_iou: f64,
    /// Total degraded frames across cells.
    pub degraded_frames: usize,
}

/// Aggregate over every frame a given recovery rung produced
/// (interpolate-policy cells only), scored on raw per-frame estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RungAggregate {
    /// Frames the rung produced across the matrix.
    pub frames: usize,
    /// Mean endpoint RMSE of those frames, metres.
    pub mean_endpoint_rmse_m: f64,
    /// Mean segmentation IoU of those frames.
    pub mean_iou: f64,
}

/// The interpolation-vs-carry A/B over the matrix's gap frames: for
/// every (clip, profile) pair, the frames that were gaps under *either*
/// policy, scored on each policy's raw estimates for exactly those
/// frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterpolationAb {
    /// Gap frames compared (summed over cell pairs).
    pub gap_frames: usize,
    /// Mean endpoint RMSE of the interpolate policy on the gap frames.
    pub interpolate_rmse_m: f64,
    /// Mean endpoint RMSE of the carry policy on the same frames.
    pub carry_rmse_m: f64,
    /// `(carry − interpolate) / carry`, as a fraction.
    pub improvement: f64,
}

/// The deterministic matrix report (schema [`SCHEMA`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Clip seeds evaluated.
    pub seeds: Vec<u64>,
    /// Profile names evaluated, in matrix order.
    pub profiles: Vec<String>,
    /// Completed cells, in matrix order.
    pub cells: Vec<CellResult>,
    /// Cells that aborted.
    pub failures: Vec<CellFailure>,
    /// Per-fault-profile aggregates.
    pub per_fault: BTreeMap<String, FaultAggregate>,
    /// Per-recovery-rung aggregates.
    pub per_rung: BTreeMap<String, RungAggregate>,
    /// The interpolation A/B, when any gap frames occurred.
    pub interpolation_ab: Option<InterpolationAb>,
}

impl EvalReport {
    /// The canonical serialisation: pretty JSON + trailing newline,
    /// byte-identical for identical matrices.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises") + "\n"
    }
}

/// Everything one analysed cell contributes, before aggregation.
struct CellOutcome {
    result: Result<CellData, String>,
    clip_seed: u64,
    profile: String,
    policy: GapPolicy,
}

struct CellData {
    cell: CellResult,
    /// Raw per-frame estimate errors (unsmoothed), frame-aligned.
    raw_errors: Vec<FramePoseError>,
    /// Per-frame recovery rungs.
    recoveries: Vec<RecoveryAction>,
    /// Per-frame segmentation IoU.
    ious: Vec<f64>,
}

/// Runs the full matrix and aggregates the report.
pub fn run_matrix(config: &MatrixConfig) -> EvalReport {
    let cells = config.cells();
    let threads = config.parallelism.threads().max(1);
    let mut outcomes: Vec<Option<CellOutcome>> = Vec::new();
    outcomes.resize_with(cells.len(), || None);

    if threads <= 1 || cells.len() <= 1 {
        for (slot, cell) in outcomes.iter_mut().zip(&cells) {
            *slot = Some(run_cell(cell, config.max_degraded_frames));
        }
    } else {
        // As in the segmentation pipeline: disjoint chunks, results land
        // in matrix order, thread count affects throughput only.
        let chunk = cells.len().div_ceil(threads);
        let cells = &cells;
        crossbeam::scope(|scope| {
            for (ci, out) in outcomes.chunks_mut(chunk).enumerate() {
                scope.spawn(move |_| {
                    for (i, slot) in out.iter_mut().enumerate() {
                        *slot = Some(run_cell(&cells[ci * chunk + i], config.max_degraded_frames));
                    }
                });
            }
        })
        .expect("matrix worker panicked");
    }

    let outcomes: Vec<CellOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every cell ran"))
        .collect();
    aggregate(config, outcomes)
}

/// One analysed cell plus the ground truth it was scored against —
/// shared between the matrix runner and the calibration corpus.
pub(crate) struct CellRun {
    /// True per-frame poses of the underlying clip.
    pub(crate) truth: Vec<Pose>,
    pub(crate) camera: Camera,
    pub(crate) report: Result<AnalysisReport, String>,
}

/// Generates the seeded clip, injects the profile's faults (with the
/// clip seed mixed in) and runs the best-effort analyzer.
pub(crate) fn analyze_cell(
    clip_seed: u64,
    fault: &FaultConfig,
    interpolate: bool,
    budget: usize,
) -> CellRun {
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::clean()
    };
    let jump = SyntheticJump::generate(&scene, &JumpConfig::default(), clip_seed);
    let fault = FaultConfig {
        // Decorrelate fault realisations across clips.
        seed: fault.seed.wrapping_add(clip_seed),
        ..*fault
    };
    let video = if fault.is_noop() {
        jump.video.clone()
    } else {
        FaultInjector::new(fault).inject(&jump.video).0
    };

    let mut analyzer_config = AnalyzerConfig {
        robustness: RobustnessPolicy::BestEffort {
            max_degraded_frames: budget,
        },
        ..AnalyzerConfig::fast()
    };
    analyzer_config.tracker.recovery.interpolate = interpolate;

    let truth = jump.poses.poses().to_vec();
    let report = JumpAnalyzer::new(analyzer_config)
        .analyze(&video, &scene.camera, truth[0])
        .map_err(|e| e.to_string());
    CellRun {
        truth,
        camera: scene.camera,
        report,
    }
}

fn run_cell(
    (clip_seed, profile, policy): &(u64, FaultProfile, GapPolicy),
    budget: usize,
) -> CellOutcome {
    let run = analyze_cell(
        *clip_seed,
        &profile.fault,
        *policy == GapPolicy::Interpolate,
        budget,
    );
    let truth = &run.truth;
    let outcome = run.report.map(|report| {
        let dims = &JumpConfig::default().dims;
        // Product accuracy: the smoothed output poses.
        let smoothed_errors = metrics::pose_seq_errors(report.poses.poses(), truth, dims);
        // Rung attribution: the raw per-frame estimates.
        let raw_poses: Vec<_> = report.tracking.iter().map(|t| t.pose).collect();
        let raw_errors = metrics::pose_seq_errors(&raw_poses, truth, dims);
        let recoveries: Vec<RecoveryAction> = report.tracking.iter().map(|t| t.recovery).collect();
        let masks: Vec<&Mask> = report.silhouettes();
        let ious = metrics::segmentation_iou(&masks, truth, dims, &run.camera);

        let mut rungs: BTreeMap<String, usize> = BTreeMap::new();
        for r in &recoveries {
            *rungs.entry(rung_key(*r).to_owned()).or_insert(0) += 1;
        }
        let gap_errors: Vec<FramePoseError> = raw_errors
            .iter()
            .zip(&recoveries)
            .filter(|(_, r)| is_gap(**r))
            .map(|(e, _)| *e)
            .collect();

        CellData {
            cell: CellResult {
                clip_seed: *clip_seed,
                profile: profile.name.clone(),
                policy: policy.key().to_owned(),
                frames: report.poses.len(),
                degraded_frames: report.health.iter().filter(|h| h.is_degraded()).count(),
                rungs,
                pose: PoseAccuracy::over(&smoothed_errors).expect("analysed clips are non-empty"),
                gap_pose: PoseAccuracy::over(&gap_errors),
                mean_iou: mean(&ious),
                min_iou: ious.iter().copied().fold(f64::INFINITY, f64::min),
            },
            raw_errors,
            recoveries,
            ious,
        }
    });

    CellOutcome {
        result: outcome,
        clip_seed: *clip_seed,
        profile: profile.name.clone(),
        policy: *policy,
    }
}

fn is_gap(r: RecoveryAction) -> bool {
    matches!(
        r,
        RecoveryAction::Interpolated | RecoveryAction::CarriedOver
    )
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn aggregate(config: &MatrixConfig, outcomes: Vec<CellOutcome>) -> EvalReport {
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    let mut per_fault: BTreeMap<String, Vec<&CellData>> = BTreeMap::new();
    // (clip_seed, profile) → per-policy data, for the A/B pairing.
    let mut pairs: BTreeMap<(u64, String), [Option<&CellData>; 2]> = BTreeMap::new();

    for outcome in &outcomes {
        match &outcome.result {
            Ok(data) => {
                cells.push(data.cell.clone());
                if outcome.policy == GapPolicy::Interpolate {
                    per_fault
                        .entry(outcome.profile.clone())
                        .or_default()
                        .push(data);
                }
                let slot = match outcome.policy {
                    GapPolicy::Interpolate => 0,
                    GapPolicy::Carry => 1,
                };
                pairs
                    .entry((outcome.clip_seed, outcome.profile.clone()))
                    .or_default()[slot] = Some(data);
            }
            Err(e) => failures.push(CellFailure {
                clip_seed: outcome.clip_seed,
                profile: outcome.profile.clone(),
                policy: outcome.policy.key().to_owned(),
                error: e.clone(),
            }),
        }
    }

    let per_fault: BTreeMap<String, FaultAggregate> = per_fault
        .into_iter()
        .map(|(name, datas)| {
            let n = datas.len() as f64;
            (
                name,
                FaultAggregate {
                    cells: datas.len(),
                    mean_endpoint_rmse_m: datas
                        .iter()
                        .map(|d| d.cell.pose.mean_endpoint_rmse_m)
                        .sum::<f64>()
                        / n,
                    mean_iou: datas.iter().map(|d| d.cell.mean_iou).sum::<f64>() / n,
                    degraded_frames: datas.iter().map(|d| d.cell.degraded_frames).sum(),
                },
            )
        })
        .collect();

    // Per-rung: every frame of every interpolate-policy cell, grouped
    // by the rung that produced it.
    let mut rung_frames: BTreeMap<&'static str, Vec<(f64, f64)>> = BTreeMap::new();
    for outcome in &outcomes {
        if outcome.policy != GapPolicy::Interpolate {
            continue;
        }
        if let Ok(data) = &outcome.result {
            for ((err, rec), iou) in data.raw_errors.iter().zip(&data.recoveries).zip(&data.ious) {
                rung_frames
                    .entry(rung_key(*rec))
                    .or_default()
                    .push((err.endpoint_rmse_m, *iou));
            }
        }
    }
    let per_rung: BTreeMap<String, RungAggregate> = rung_frames
        .into_iter()
        .map(|(key, frames)| {
            let n = frames.len() as f64;
            (
                key.to_owned(),
                RungAggregate {
                    frames: frames.len(),
                    mean_endpoint_rmse_m: frames.iter().map(|(e, _)| e).sum::<f64>() / n,
                    mean_iou: frames.iter().map(|(_, i)| i).sum::<f64>() / n,
                },
            )
        })
        .collect();

    // The A/B: over each pair, the union of gap frames under either
    // policy, scored on both policies' raw estimates.
    let mut gap_frames = 0usize;
    let mut interp_sum = 0.0;
    let mut carry_sum = 0.0;
    for pair in pairs.values() {
        let (Some(interp), Some(carry)) = (pair[0], pair[1]) else {
            continue;
        };
        let n = interp.recoveries.len().min(carry.recoveries.len());
        for k in 0..n {
            if is_gap(interp.recoveries[k]) || is_gap(carry.recoveries[k]) {
                gap_frames += 1;
                interp_sum += interp.raw_errors[k].endpoint_rmse_m;
                carry_sum += carry.raw_errors[k].endpoint_rmse_m;
            }
        }
    }
    let interpolation_ab = (gap_frames > 0).then(|| {
        let interpolate_rmse_m = interp_sum / gap_frames as f64;
        let carry_rmse_m = carry_sum / gap_frames as f64;
        InterpolationAb {
            gap_frames,
            interpolate_rmse_m,
            carry_rmse_m,
            improvement: if carry_rmse_m > 0.0 {
                (carry_rmse_m - interpolate_rmse_m) / carry_rmse_m
            } else {
                0.0
            },
        }
    });

    EvalReport {
        schema: SCHEMA.to_owned(),
        seeds: config.seeds.clone(),
        profiles: config.profiles.iter().map(|p| p.name.clone()).collect(),
        cells,
        failures,
        per_fault,
        per_rung,
        interpolation_ab,
    }
}

/// Renders the human-facing summary of a report.
pub fn markdown_summary(report: &EvalReport) -> String {
    let mut out = String::new();
    out.push_str("# Fault-matrix accuracy report\n\n");
    out.push_str(&format!(
        "Schema `{}` · {} clip seed(s) × {} profile(s) × 2 gap policies · {} cell(s), {} failure(s)\n\n",
        report.schema,
        report.seeds.len(),
        report.profiles.len(),
        report.cells.len(),
        report.failures.len(),
    ));

    out.push_str("## Per fault profile (interpolate policy)\n\n");
    out.push_str("| profile | cells | endpoint RMSE (m) | seg IoU | degraded frames |\n");
    out.push_str("|---|---|---|---|---|\n");
    for (name, agg) in &report.per_fault {
        out.push_str(&format!(
            "| {} | {} | {:.4} | {:.3} | {} |\n",
            name, agg.cells, agg.mean_endpoint_rmse_m, agg.mean_iou, agg.degraded_frames
        ));
    }

    out.push_str("\n## Per recovery rung\n\n");
    out.push_str("| rung | frames | endpoint RMSE (m) | seg IoU |\n");
    out.push_str("|---|---|---|---|\n");
    for (name, agg) in &report.per_rung {
        out.push_str(&format!(
            "| {} | {} | {:.4} | {:.3} |\n",
            name, agg.frames, agg.mean_endpoint_rmse_m, agg.mean_iou
        ));
    }

    match &report.interpolation_ab {
        Some(ab) => out.push_str(&format!(
            "\n## Interpolation A/B ({} gap frames)\n\n\
             Kinematic interpolation: **{:.4} m** endpoint RMSE vs carry-over \
             **{:.4} m** — {:+.1}% change.\n",
            ab.gap_frames,
            ab.interpolate_rmse_m,
            ab.carry_rmse_m,
            -100.0 * ab.improvement,
        )),
        None => out.push_str("\n_No gap frames occurred anywhere in the matrix._\n"),
    }
    if !report.failures.is_empty() {
        out.push_str("\n## Failures\n\n");
        for f in &report.failures {
            out.push_str(&format!(
                "- seed {} · {} · {}: {}\n",
                f.clip_seed, f.profile, f.policy, f.error
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_config() -> MatrixConfig {
        MatrixConfig {
            seeds: vec![21],
            profiles: vec![
                FaultProfile::new("clean", FaultConfig::default()),
                FaultProfile::new(
                    "occlusion-dropout",
                    FaultConfig {
                        occlusion_bars: 1,
                        bar_width_px: 22,
                        ..FaultConfig::default()
                    },
                ),
            ],
            max_degraded_frames: 20,
            parallelism: Parallelism::Serial,
        }
    }

    #[test]
    fn mini_matrix_is_deterministic_and_scores_gaps() {
        let config = mini_config();
        let a = run_matrix(&config);
        let b = run_matrix(&config);
        assert_eq!(a.to_json(), b.to_json(), "same matrix, same bytes");
        assert_eq!(a.schema, SCHEMA);
        assert!(a.failures.is_empty(), "failures: {:?}", a.failures);
        assert_eq!(a.cells.len(), 4);
        // The clean profile tracks everything.
        let clean = &a.per_fault["clean"];
        assert!(clean.mean_endpoint_rmse_m < 0.2, "{clean:?}");
        assert!(clean.mean_iou > 0.85, "{clean:?}");
        // The wide occluder produces blank-mask gap frames, so the A/B
        // exists and interpolation beats carry-over.
        let ab = a.interpolation_ab.expect("occlusion-dropout produces gaps");
        assert!(ab.gap_frames > 0);
        assert!(
            ab.interpolate_rmse_m < ab.carry_rmse_m,
            "interpolation must beat carry-over: {ab:?}"
        );
        // The rung table has entries for both ladder extremes.
        assert!(a.per_rung.contains_key("tracked"));
        assert!(a.per_rung.contains_key("interpolated"), "{:?}", a.per_rung);
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        let serial = run_matrix(&mini_config());
        let parallel = run_matrix(&MatrixConfig {
            parallelism: Parallelism::Fixed(4),
            ..mini_config()
        });
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn markdown_summary_names_every_profile() {
        let report = run_matrix(&mini_config());
        let md = markdown_summary(&report);
        assert!(md.contains("slj-eval/1"));
        assert!(md.contains("clean"));
        assert!(md.contains("occlusion-dropout"));
        assert!(md.contains("Interpolation A/B"));
    }
}
