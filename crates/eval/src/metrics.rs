//! Ground-truth accuracy metrics for tracked poses and segmented
//! silhouettes.
//!
//! The paper validates its tracker by eye (Figs. 5–7); synthetic clips
//! carry the exact pose and silhouette per frame, so accuracy can be a
//! number instead. Three views of the same comparison:
//!
//! * **Endpoint RMSE** — root-mean-square distance, in metres, over the
//!   16 stick endpoints (both ends of all 8 sticks) between the
//!   estimated and true pose. The headline metric: it weighs centre
//!   drift and every joint angle in one world-space unit.
//! * **Per-stick angle error** — absolute wrapped angle difference per
//!   paper stick index, degrees. Localises *which* joint went wrong.
//! * **Segmentation IoU** — intersection-over-union between the
//!   pipeline's final mask and the silhouette re-rendered from the true
//!   pose. Separates "segmentation handed the GA garbage" from "the GA
//!   mis-fit a good silhouette".

use serde::{Deserialize, Serialize};
use slj_imgproc::mask::Mask;
use slj_motion::model::STICK_COUNT;
use slj_motion::{BodyDims, Pose};
use slj_video::render::render_silhouette;
use slj_video::Camera;

/// Accuracy of one frame's pose estimate against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FramePoseError {
    /// Frame index.
    pub frame: usize,
    /// Distance between estimated and true trunk centres, metres.
    pub center_distance_m: f64,
    /// RMS distance over the 16 stick endpoints, metres.
    pub endpoint_rmse_m: f64,
    /// Absolute wrapped per-stick angle error, degrees, by paper index.
    pub angle_errors_deg: [f64; STICK_COUNT],
}

impl FramePoseError {
    /// Mean of the per-stick angle errors, degrees.
    pub fn mean_angle_error_deg(&self) -> f64 {
        self.angle_errors_deg.iter().sum::<f64>() / STICK_COUNT as f64
    }
}

/// Compares one estimated pose against the true one.
pub fn frame_pose_error(
    frame: usize,
    estimated: &Pose,
    truth: &Pose,
    dims: &BodyDims,
) -> FramePoseError {
    let err = estimated.error_against(truth);
    let est = estimated.segments(dims);
    let tru = truth.segments(dims);
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    for ((_, e), (_, t)) in est.iter().zip(tru.iter()) {
        for (pe, pt) in [(e.a, t.a), (e.b, t.b)] {
            let dx = pe.x - pt.x;
            let dy = pe.y - pt.y;
            sum_sq += dx * dx + dy * dy;
            n += 1;
        }
    }
    FramePoseError {
        frame,
        center_distance_m: err.center_distance,
        endpoint_rmse_m: (sum_sq / n as f64).sqrt(),
        angle_errors_deg: err.angle_errors,
    }
}

/// Compares an estimated pose sequence against the true one, frame by
/// frame. The sequences must be index-aligned; the shorter length wins.
pub fn pose_seq_errors(estimated: &[Pose], truth: &[Pose], dims: &BodyDims) -> Vec<FramePoseError> {
    estimated
        .iter()
        .zip(truth.iter())
        .enumerate()
        .map(|(k, (e, t))| frame_pose_error(k, e, t, dims))
        .collect()
}

/// Per-frame IoU of the pipeline's final masks against silhouettes
/// re-rendered from the true poses.
///
/// Rendering from `ClipTruth.poses` (rather than trusting any stored
/// mask) keeps the reference independent of the pipeline under test.
pub fn segmentation_iou(
    final_masks: &[&Mask],
    truth_poses: &[Pose],
    dims: &BodyDims,
    camera: &Camera,
) -> Vec<f64> {
    final_masks
        .iter()
        .zip(truth_poses.iter())
        .map(|(mask, pose)| {
            let truth_mask = render_silhouette(pose, dims, camera);
            mask.iou(&truth_mask)
                .expect("final mask and rendered truth share the camera dims")
        })
        .collect()
}

/// Aggregate pose accuracy over a set of frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoseAccuracy {
    /// Frames aggregated.
    pub frames: usize,
    /// Mean endpoint RMSE, metres.
    pub mean_endpoint_rmse_m: f64,
    /// Worst single-frame endpoint RMSE, metres.
    pub max_endpoint_rmse_m: f64,
    /// Mean trunk-centre distance, metres.
    pub mean_center_distance_m: f64,
    /// Mean per-stick angle error, degrees.
    pub mean_angle_error_deg: f64,
}

impl PoseAccuracy {
    /// Aggregates a set of per-frame errors; `None` when empty.
    pub fn over(errors: &[FramePoseError]) -> Option<PoseAccuracy> {
        if errors.is_empty() {
            return None;
        }
        let n = errors.len() as f64;
        Some(PoseAccuracy {
            frames: errors.len(),
            mean_endpoint_rmse_m: errors.iter().map(|e| e.endpoint_rmse_m).sum::<f64>() / n,
            max_endpoint_rmse_m: errors.iter().map(|e| e.endpoint_rmse_m).fold(0.0, f64::max),
            mean_center_distance_m: errors.iter().map(|e| e.center_distance_m).sum::<f64>() / n,
            mean_angle_error_deg: errors.iter().map(|e| e.mean_angle_error_deg()).sum::<f64>() / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slj_motion::synth::{synthesize_jump, JumpConfig};
    use slj_motion::{Angle, StickKind};

    #[test]
    fn identical_poses_have_zero_error() {
        let dims = BodyDims::default();
        let p = Pose::standing(&dims);
        let e = frame_pose_error(0, &p, &p, &dims);
        assert_eq!(e.endpoint_rmse_m, 0.0);
        assert_eq!(e.center_distance_m, 0.0);
        assert_eq!(e.mean_angle_error_deg(), 0.0);
    }

    #[test]
    fn pure_translation_moves_every_endpoint_equally() {
        let dims = BodyDims::default();
        let p = Pose::standing(&dims);
        let q = p.with_center(p.center + slj_imgproc::geometry::Vec2::new(0.1, 0.0));
        let e = frame_pose_error(0, &q, &p, &dims);
        // Every endpoint translates by exactly 0.1 m, so the RMS is too.
        assert!(
            (e.endpoint_rmse_m - 0.1).abs() < 1e-12,
            "{}",
            e.endpoint_rmse_m
        );
        assert!((e.center_distance_m - 0.1).abs() < 1e-12);
        assert_eq!(e.mean_angle_error_deg(), 0.0);
    }

    #[test]
    fn single_joint_rotation_is_localised() {
        let dims = BodyDims::default();
        let p = Pose::standing(&dims);
        let rotated = p.angle(StickKind::Forearm).degrees() + 30.0;
        let q = p.with_angle(StickKind::Forearm, Angle::from_degrees(rotated));
        let e = frame_pose_error(0, &q, &p, &dims);
        let idx = StickKind::Forearm.index();
        assert!((e.angle_errors_deg[idx] - 30.0).abs() < 1e-9);
        for (i, a) in e.angle_errors_deg.iter().enumerate() {
            if i != idx {
                assert_eq!(*a, 0.0, "stick {i}");
            }
        }
        // Only the forearm's distal endpoint moved: RMSE is positive but
        // far below the moved endpoint's own displacement.
        assert!(e.endpoint_rmse_m > 0.0);
        let chord = 2.0 * dims.length(StickKind::Forearm) * (15.0f64.to_radians()).sin();
        assert!(e.endpoint_rmse_m < chord);
    }

    #[test]
    fn seq_errors_align_frames() {
        let cfg = JumpConfig::default();
        let poses = synthesize_jump(&cfg);
        let truth = poses.poses();
        let errors = pose_seq_errors(truth, truth, &cfg.dims);
        assert_eq!(errors.len(), truth.len());
        assert!(errors.iter().all(|e| e.endpoint_rmse_m == 0.0));
        assert_eq!(errors[3].frame, 3);
    }

    #[test]
    fn iou_of_rendered_truth_is_one() {
        let cfg = JumpConfig::default();
        let camera = Camera::compact();
        let poses = synthesize_jump(&cfg);
        let truth = &poses.poses()[..3];
        let rendered: Vec<Mask> = truth
            .iter()
            .map(|p| render_silhouette(p, &cfg.dims, &camera))
            .collect();
        let refs: Vec<&Mask> = rendered.iter().collect();
        let ious = segmentation_iou(&refs, truth, &cfg.dims, &camera);
        assert_eq!(ious, vec![1.0; 3]);
        // A blank estimate scores 0 against a non-trivial truth.
        let blank = Mask::new(camera.width, camera.height);
        let ious = segmentation_iou(&[&blank], truth, &cfg.dims, &camera);
        assert_eq!(ious, vec![0.0]);
    }

    #[test]
    fn accuracy_aggregates() {
        let dims = BodyDims::default();
        let p = Pose::standing(&dims);
        let q = p.with_center(p.center + slj_imgproc::geometry::Vec2::new(0.2, 0.0));
        let errors = vec![
            frame_pose_error(0, &p, &p, &dims),
            frame_pose_error(1, &q, &p, &dims),
        ];
        let acc = PoseAccuracy::over(&errors).unwrap();
        assert_eq!(acc.frames, 2);
        assert!((acc.mean_endpoint_rmse_m - 0.1).abs() < 1e-12);
        assert!((acc.max_endpoint_rmse_m - 0.2).abs() < 1e-12);
        assert!(PoseAccuracy::over(&[]).is_none());
    }
}
