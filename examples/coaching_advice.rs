//! Coaching advice: the paper's introduction promises a system that
//! "will be able to detect improper movements and give advices to the
//! jumper". This example injects each of the seven technique faults of
//! Table 1 in turn, analyses the video end-to-end, and prints the advice
//! the jumper would receive — plus whether the end-to-end system caught
//! the same fault that the ground-truth poses reveal.
//!
//! ```sh
//! cargo run --release -p slj --example coaching_advice
//! ```

use slj::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::default()
    };

    let mut caught = 0;
    for (i, flaw) in JumpFlaw::ALL.iter().enumerate() {
        let jump_cfg = JumpConfig::with_flaw(*flaw);
        let jump = SyntheticJump::generate(&scene, &jump_cfg, 500 + i as u64);

        // Ground truth: which rule does this fault violate on the true
        // poses?
        let truth_card = score_jump(&jump.poses)?;
        let truth_violations = truth_card.violations();

        // End to end: segmentation + GA tracking + scoring.
        let report = JumpAnalyzer::new(AnalyzerConfig::fast()).analyze(
            &jump.video,
            &scene.camera,
            jump.poses.poses()[0],
        )?;
        let est_violations = report.score.violations();
        let detected = est_violations
            .iter()
            .any(|r| r.number() == flaw.rule_number());
        if detected {
            caught += 1;
        }

        println!("fault {:?} (violates R{})", flaw, flaw.rule_number());
        println!(
            "  truth says:     {:?}",
            truth_violations
                .iter()
                .map(|r| r.number())
                .collect::<Vec<_>>()
        );
        println!(
            "  system says:    {:?}  [{}]",
            est_violations
                .iter()
                .map(|r| r.number())
                .collect::<Vec<_>>(),
            if detected { "caught" } else { "MISSED" }
        );
        for (standard, advice) in report.score.advice() {
            println!("  advice ({standard}):");
            println!("    {advice}");
        }
        println!();
    }
    println!(
        "end-to-end detection: {caught}/{} injected faults caught",
        JumpFlaw::ALL.len()
    );
    Ok(())
}
