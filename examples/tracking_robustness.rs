//! Tracking robustness: the paper requires "a trained person" to draw
//! the first-frame stick figure. How carefully must they draw? This
//! example perturbs the first-frame pose with growing amounts of sloppiness
//! and measures how the GA tracker's accuracy degrades.
//!
//! ```sh
//! cargo run --release -p slj --example tracking_robustness
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use slj::prelude::*;
use slj_motion::synth::perturb_pose;
use slj_video::render::render_silhouette;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jump_cfg = JumpConfig::default();
    let poses = synthesize_jump(&jump_cfg);
    let camera = Camera::compact();

    // Ground-truth silhouettes isolate the tracker from segmentation
    // noise; `coaching_advice` exercises the full pipeline.
    let silhouettes: Vec<_> = poses
        .poses()
        .iter()
        .map(|p| render_silhouette(p, &jump_cfg.dims, &camera))
        .collect();

    println!(
        "{:>12} {:>12} {:>14} {:>14}",
        "centre-slop", "angle-slop", "mean-angle-err", "final-centre-err"
    );
    println!("{}", "-".repeat(56));

    let tracker = TemporalTracker::new(TrackerConfig::fast());
    for (center_amp, angle_amp) in [
        (0.00, 0.0),
        (0.02, 5.0),
        (0.04, 10.0),
        (0.06, 15.0),
        (0.08, 20.0),
        (0.12, 30.0),
    ] {
        // Average over a few draws of the sloppy annotator.
        let mut mean_angle = 0.0;
        let mut final_center = 0.0;
        const TRIALS: usize = 3;
        for trial in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(42 + trial as u64);
            let sloppy = perturb_pose(&poses.poses()[0], center_amp, angle_amp, &mut rng);
            let run = tracker.track(&silhouettes, sloppy, &jump_cfg.dims, &camera)?;
            let n = run.frames.len();
            mean_angle += run
                .frames
                .iter()
                .zip(poses.poses())
                .map(|(est, gt)| est.pose.error_against(gt).mean_angle_error())
                .sum::<f64>()
                / n as f64;
            final_center += run.frames[n - 1]
                .pose
                .error_against(&poses.poses()[n - 1])
                .center_distance;
        }
        mean_angle /= TRIALS as f64;
        final_center /= TRIALS as f64;
        println!(
            "{:>10.2} m {:>11.0}° {:>13.1}° {:>13.3} m",
            center_amp, angle_amp, mean_angle, final_center
        );
    }

    println!("\nThe tracker re-anchors on the silhouette every frame, so even a");
    println!("fairly sloppy first-frame drawing converges after a few frames.");
    Ok(())
}
