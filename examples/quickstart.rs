//! Quick start: film a synthetic standing long jump, run the full
//! analysis pipeline, and print the score card.
//!
//! ```sh
//! cargo run --release -p slj --example quickstart
//! ```

use slj::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Film" a jump. The paper records a child from the side with a
    //    fixed CCD camera; the synthetic camera reproduces that scene —
    //    textured background, cast shadow, sensor noise — and, unlike a
    //    real camera, also hands us ground truth to check against.
    let scene = SceneConfig::default();
    let jump_cfg = JumpConfig::default();
    let jump = SyntheticJump::generate(&scene, &jump_cfg, 2026);
    println!(
        "Filmed {} frames at {:.0} fps ({}x{} px)",
        jump.video.len(),
        jump.video.fps(),
        jump.video.dims().0,
        jump.video.dims().1
    );

    // 2. Analyse: background estimation -> silhouette extraction ->
    //    GA pose tracking -> scoring. The first-frame pose plays the
    //    role of the paper's hand-drawn stick figure.
    let analyzer = JumpAnalyzer::new(AnalyzerConfig::default());
    let first_pose = jump.poses.poses()[0];
    let report = analyzer.analyze(&jump.video, &scene.camera, first_pose)?;

    // 3. The verdicts of Table 2's rules R1-R7.
    println!("\n{}", report.score);

    // 4. Coaching advice for anything violated.
    for (standard, advice) in report.score.advice() {
        println!("{standard}\n  -> {advice}");
    }

    // 5. How hard did the GA have to work? (The paper: "the shown best
    //    estimated model was generated at the second generation".)
    let summary = report.summary();
    println!(
        "\nTracking: mean Eq.3 fitness {:.3}, near-best after {:.1} generations, {} evaluations",
        summary.mean_fitness.unwrap_or(f64::NAN),
        summary.mean_generations_to_near_best.unwrap_or(f64::NAN),
        summary.total_evaluations
    );

    // 6. Because the footage is synthetic we can also report the truth.
    let mut total_err = 0.0;
    for (est, truth) in report.poses.poses().iter().zip(jump.poses.poses()) {
        total_err += est.error_against(truth).mean_angle_error();
    }
    println!(
        "Ground truth: mean joint-angle error {:.1} deg over {} frames",
        total_err / report.poses.len() as f64,
        report.poses.len()
    );
    Ok(())
}
