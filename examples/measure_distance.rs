//! Jump-distance measurement: the school test scores *how far* as well
//! as *how well*. This example tracks jumps of different configured
//! distances end-to-end and compares the measured distance (takeoff toe
//! to landing heel, from the tracked poses) against the measurement on
//! the ground-truth poses.
//!
//! ```sh
//! cargo run --release -p slj --example measure_distance
//! ```

use slj::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::default()
    };
    let analyzer = JumpAnalyzer::new(AnalyzerConfig::fast());

    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>10}",
        "configured", "truth-meas.", "tracked-meas.", "flight", "peak"
    );
    println!("{}", "-".repeat(58));

    for (i, configured) in [0.8f64, 1.0, 1.2, 1.4].iter().enumerate() {
        let jump_cfg = JumpConfig {
            jump_distance: *configured,
            ..JumpConfig::default()
        };
        let jump = SyntheticJump::generate(&scene, &jump_cfg, 900 + i as u64);

        // Measurement on the true poses: the best any tracker can do.
        let truth_m = measure_jump(&jump.poses, &jump_cfg.dims)?;

        // Measurement on the tracked poses: the deployable number.
        let report = analyzer.analyze(&jump.video, &scene.camera, jump.poses.poses()[0])?;
        let tracked_m = measure_jump(&report.poses, &jump_cfg.dims)?;

        println!(
            "{:>9.2}m {:>11.2}m {:>12.2}m {:>7}f {:>9.2}m",
            configured,
            truth_m.distance_m,
            tracked_m.distance_m,
            tracked_m.flight_frames,
            tracked_m.peak_clearance_m
        );
    }

    println!(
        "\nNote: the official measurement (toe at takeoff to heel at landing)\n\
         is shorter than the configured centre-of-mass travel; what matters\n\
         is that the tracked measurement follows the truth measurement."
    );
    Ok(())
}
