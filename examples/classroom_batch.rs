//! Classroom batch: the paper's motivating scenario is the standing long
//! jump as "a standard test for primary school students". This example
//! evaluates a whole class — children of different heights, jump
//! distances and technique faults — and prints the teacher's summary
//! table.
//!
//! ```sh
//! cargo run --release -p slj --example classroom_batch
//! ```

use slj::prelude::*;

struct Student {
    name: &'static str,
    height_m: f64,
    distance_m: f64,
    flaws: Vec<JumpFlaw>,
}

fn class_roster() -> Vec<Student> {
    vec![
        Student {
            name: "An",
            height_m: 1.28,
            distance_m: 1.15,
            flaws: vec![],
        },
        Student {
            name: "Bo",
            height_m: 1.35,
            distance_m: 1.25,
            flaws: vec![JumpFlaw::ShallowCrouch],
        },
        Student {
            name: "Chi",
            height_m: 1.22,
            distance_m: 0.95,
            flaws: vec![JumpFlaw::NoArmSwingBack, JumpFlaw::ArmsStayBack],
        },
        Student {
            name: "Dee",
            height_m: 1.40,
            distance_m: 1.30,
            flaws: vec![JumpFlaw::StiffLanding],
        },
        Student {
            name: "Emi",
            height_m: 1.30,
            distance_m: 1.10,
            flaws: vec![JumpFlaw::UprightTrunk],
        },
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The compact camera keeps the batch quick; accuracy experiments use
    // the full-resolution one.
    let scene = SceneConfig {
        camera: Camera::compact(),
        ..SceneConfig::default()
    };
    let analyzer = JumpAnalyzer::new(AnalyzerConfig::fast());

    println!(
        "{:<6} {:>6} {:>8} {:>7} {:>9}  violations",
        "name", "height", "distance", "score", "mean-fit"
    );
    println!("{}", "-".repeat(60));

    for (i, student) in class_roster().iter().enumerate() {
        let dims = BodyDims::for_height(student.height_m);
        let jump_cfg = JumpConfig {
            dims: dims.clone(),
            jump_distance: student.distance_m,
            flaws: student.flaws.clone(),
            ..JumpConfig::default()
        };
        let jump = SyntheticJump::generate(&scene, &jump_cfg, 100 + i as u64);

        let config = AnalyzerConfig {
            dims,
            ..AnalyzerConfig::fast()
        };
        let report =
            JumpAnalyzer::new(config).analyze(&jump.video, &scene.camera, jump.poses.poses()[0])?;
        let summary = report.summary();
        let violations: Vec<String> = summary.violations.iter().map(|n| format!("R{n}")).collect();
        println!(
            "{:<6} {:>5.2}m {:>7.2}m {:>5}/7 {:>9.3}  {}",
            student.name,
            student.height_m,
            student.distance_m,
            summary.score,
            summary.mean_fitness.unwrap_or(f64::NAN),
            if violations.is_empty() {
                "-".to_owned()
            } else {
                violations.join(", ")
            }
        );
    }

    let _ = analyzer;
    println!("\nEach violated rule maps to one coaching cue (see `coaching_advice`).");
    Ok(())
}
