//! Offline drop-in subset of `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the surface the workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits and their derive macros (re-exported from the
//! sibling `serde_derive` proc-macro crate).
//!
//! Instead of the real serde's visitor-based data model, values pass
//! through a simple tree ([`Value`]) that `serde_json` renders and
//! parses. Behavioural compatibility notes:
//!
//! * Non-finite floats serialise to `null` and fail to deserialise into
//!   `f64` — exactly like real `serde_json`, which several tests and one
//!   known summary-round-trip bug depend on.
//! * Missing fields error unless the field type accepts `null`
//!   (`Option<T>` deserialises from `null`/absent as `None`).
//! * Enums use the externally-tagged representation (serde's default):
//!   unit variants as strings, data variants as one-key objects.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The serialisation tree (the stub's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (and unsigned values that fit).
    I64(i64),
    /// Unsigned values above `i64::MAX`.
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialisation error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An arbitrary error message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// "expected X, found Y" for a mismatched value.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// A missing struct field.
    pub fn missing(field: &str) -> DeError {
        DeError::custom(format!("missing field `{field}`"))
    }

    /// An unrecognised enum variant.
    pub fn unknown_variant(enum_name: &str, variant: &str) -> DeError {
        DeError::custom(format!("unknown variant `{variant}` for enum {enum_name}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A value serialisable into the stub data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A value reconstructible from the stub data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-internal helper: look up and deserialise one struct field.
/// Absent fields deserialise from `null` (so `Option` fields default to
/// `None`, like real serde) and report a missing-field error otherwise.
#[doc(hidden)]
pub fn __field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
        }
        None => T::from_value(&Value::Null).map_err(|_| DeError::missing(name)),
    }
}

/// Derive-internal helper: a one-entry object (externally-tagged enum
/// data variant).
#[doc(hidden)]
pub fn __variant(name: &str, value: Value) -> Value {
    Value::Object(vec![(name.to_owned(), value)])
}

// ---------------------------------------------------------------- impls

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide: i128 = match v {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    Value::F64(f) if f.fract() == 0.0 && f.is_finite() => *f as i128,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u128;
                if wide <= i64::MAX as u128 {
                    Value::I64(wide as i64)
                } else {
                    Value::U64(wide as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide: i128 = match v {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    Value::F64(f) if f.fract() == 0.0 && f.is_finite() => *f as i128,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        // serde_json represents non-finite floats as null.
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// `&'static str` deserialisation leaks the parsed string. Real serde
/// rejects this at compile time; the workspace derives `Deserialize` on
/// a config struct holding `&'static str` labels, and the leak (a few
/// bytes per parse, in CLI/test contexts) is the pragmatic stub answer.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<&'static str, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if arr.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, found {}",
                arr.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(arr.iter()) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        // BTreeMap iteration is key-sorted, so the object's entry order
        // is deterministic for a given map.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Deserialize> Deserialize for std::collections::BTreeMap<String, T> {
    fn from_value(v: &Value) -> Result<std::collections::BTreeMap<String, T>, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, item)| Ok((k.clone(), T::from_value(item)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::expected("tuple", v))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, found {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_serialises_to_null_and_fails_f64_round_trip() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).is_err());
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn option_round_trips() {
        assert_eq!(Some(3usize).to_value(), Value::I64(3));
        assert_eq!(Option::<usize>::from_value(&Value::I64(3)), Ok(Some(3)));
        assert_eq!(None::<usize>.to_value(), Value::Null);
    }

    #[test]
    fn arrays_enforce_length() {
        let v = [1.0f64, 2.0].to_value();
        assert!(<[f64; 2]>::from_value(&v).is_ok());
        assert!(<[f64; 3]>::from_value(&v).is_err());
    }

    #[test]
    fn missing_field_defaults_options_only() {
        let obj: Vec<(String, Value)> = vec![];
        assert_eq!(__field::<Option<f64>>(&obj, "x"), Ok(None));
        assert!(__field::<f64>(&obj, "x").is_err());
    }
}
