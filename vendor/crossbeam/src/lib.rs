//! Offline drop-in subset of `crossbeam`: [`scope`] with the crossbeam
//! 0.8 signature, implemented over `std::thread::scope`.
//!
//! The workspace only fans fitness evaluation out over scoped threads;
//! `std::thread::scope` (stable since Rust 1.63) provides the same
//! guarantee that borrowed data outlives every worker. The one
//! behavioural difference from std is preserved from crossbeam: a
//! panicking worker surfaces as `Err` from [`scope`], not a propagated
//! panic.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope handle; `spawn` launches workers that may borrow from the
/// enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker. The closure receives the scope again (crossbeam
    /// allows nested spawns); the join handle is managed by the scope.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs `f` with a thread scope; blocks until every spawned worker
/// finishes. Returns `Err` with the panic payload if any worker
/// panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::scope;

    #[test]
    fn workers_can_borrow_and_mutate_disjoint_chunks() {
        let mut data = vec![0u64; 64];
        scope(|s| {
            for chunk in data.chunks_mut(16) {
                s.spawn(move |_| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = i as u64;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data[0..16], data[16..32]);
        assert_eq!(data[15], 15);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn scope_returns_the_closure_value() {
        assert_eq!(scope(|_| 41 + 1).unwrap(), 42);
    }
}
