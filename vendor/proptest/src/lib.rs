//! Offline drop-in subset of `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! supplies the surface the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`Strategy`]
//! with `prop_map`/`prop_flat_map`, `any::<T>()`, range and tuple
//! strategies, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from the real crate: sampling is purely random with a
//! fixed per-test seed (deterministic across runs), there is **no
//! shrinking**, and the default case count is 64 (override with the
//! `PROPTEST_CASES` environment variable).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// How a single test case ended early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the message explains it.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

/// Runner configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Macro-internal driver: runs `body` until `config.cases` cases are
/// accepted, panicking on the first failure with the reproducing seed.
#[doc(hidden)]
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // FNV-1a over the test name decorrelates the streams of different
    // tests while keeping every run of the same test identical.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x100_0000_01b3);
    }

    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (config.cases as u64).saturating_mul(16).max(64);
    while accepted < config.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest `{name}`: too many rejects \
                 ({accepted}/{} cases accepted after {attempts} attempts)",
                config.cases
            );
        }
        let seed = base.wrapping_add(attempts);
        attempts += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed (case seed {seed:#x}): {msg}")
            }
        }
    }
}

// ------------------------------------------------------------ strategies

pub mod strategy {
    use super::TestRng;
    use std::marker::PhantomData;

    /// A recipe for random values (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` applied to this strategy's values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// A strategy that draws a value, builds a second strategy from
        /// it, and draws from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    <$t as rand::Standard>::sample(rng)
                }
            }
        )*};
    }
    impl_arbitrary_via_standard!(
        bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64
    );

    /// The strategy returned by [`any`](super::any).
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Any<T> {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    // Ranges sample uniformly via the rand stub.
    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rand::SampleRange::sample_uniform(self.clone(), rng)
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            rand::SampleRange::sample_uniform(self.clone(), rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }

            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Accepted size arguments for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

// --------------------------------------------------------------- macros

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items (with outer
/// attributes such as `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects the current case (it is re-drawn and does not count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_collections_compose(v in crate::collection::vec(any::<(u8, u8)>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn flat_map_threads_outer_value(
            pair in (1usize..5).prop_flat_map(|n| {
                crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v))
            })
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        let mut seen = Vec::new();
        crate::run_proptest(&ProptestConfig::with_cases(5), "determinism-probe", |rng| {
            seen.push((0u64..u64::MAX).sample(rng));
            Ok(())
        });
        let mut again = Vec::new();
        crate::run_proptest(&ProptestConfig::with_cases(5), "determinism-probe", |rng| {
            again.push((0u64..u64::MAX).sample(rng));
            Ok(())
        });
        assert_eq!(seen, again);
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_seed() {
        crate::run_proptest(&ProptestConfig::with_cases(3), "always-fails", |_| {
            Err(crate::TestCaseError::fail("boom"))
        });
    }
}
