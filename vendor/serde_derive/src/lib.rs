//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde subset.
//!
//! The build environment has no crates.io access, so this macro is
//! written against `proc_macro` alone — no `syn`/`quote`. It parses the
//! item token stream by hand, which is tractable because the generated
//! code only needs field *names*; all typing is left to inference
//! against the `serde::Serialize`/`serde::Deserialize` traits.
//!
//! Supported shapes (everything the workspace derives on):
//! - structs with named fields, tuple structs, unit structs
//! - enums with unit, newtype, tuple, and struct variants, including
//!   explicit discriminants (`Variant = 3`), which are skipped
//! - simple type generics (`struct ImageBuffer<P> { .. }`) — each
//!   parameter gets a `serde::Serialize`/`serde::Deserialize` bound

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

struct Input {
    name: String,
    /// Type parameter identifiers, bounds stripped.
    generics: Vec<String>,
    data: Data,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let mut it: Iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    let generics = parse_generics(&mut it);
    let data = match kw.as_str() {
        "struct" => Data::Struct(parse_struct_body(&mut it)),
        "enum" => Data::Enum(parse_enum_body(&mut it)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Input {
        name,
        generics,
        data,
    }
}

fn skip_attrs_and_vis(it: &mut Iter) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // The attribute body: `[...]`.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                // `pub(crate)` and friends.
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `<A, B: Bound, C>` into `["A", "B", "C"]`; consumes nothing if
/// the next token is not `<`.
fn parse_generics(it: &mut Iter) -> Vec<String> {
    match it.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    it.next();
    let mut params = Vec::new();
    let mut depth = 1usize;
    // True at a position where a new parameter may start.
    let mut at_param = true;
    while depth > 0 {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => at_param = true,
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                panic!("serde_derive: lifetime parameters are not supported")
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "const" {
                    panic!("serde_derive: const generics are not supported");
                }
                if at_param {
                    params.push(s);
                    at_param = false;
                }
            }
            Some(_) => {}
            None => panic!("serde_derive: unclosed generic parameter list"),
        }
    }
    params
}

fn parse_struct_body(it: &mut Iter) -> Fields {
    // A struct may carry a where-clause between generics and body; the
    // workspace has none, so just look for the body directly.
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde_derive: unexpected struct body: {other:?}"),
    }
}

/// Extracts field names from the contents of a `{ .. }` fields group.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut it: Iter = body.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        names.push(name);
        consume_type(&mut it);
    }
    names
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut it: Iter = body.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        count += 1;
        consume_type(&mut it);
    }
    count
}

/// Consumes one type, stopping after the `,` that follows it (or at end
/// of stream). Tracks angle-bracket depth so `Vec<(A, B)>` works.
fn consume_type(it: &mut Iter) {
    let mut depth = 0usize;
    loop {
        match it.peek() {
            None => return,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                it.next();
                return;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                it.next();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth = depth.saturating_sub(1);
                it.next();
            }
            Some(_) => {
                it.next();
            }
        }
    }
}

fn parse_enum_body(it: &mut Iter) -> Vec<Variant> {
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected enum body, got {other:?}"),
    };
    let mut it: Iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                it.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing `,`.
        consume_type(&mut it);
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

/// `impl<P: serde::Serialize> Trait for Name<P>` header pieces.
fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let params = input
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ");
        let args = input.generics.join(", ");
        (format!("<{params}>"), format!("<{args}>"))
    }
}

fn gen_serialize(input: &Input) -> String {
    let (params, args) = impl_header(input, "::serde::Serialize");
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_owned(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Data::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Data::Struct(Fields::Tuple(n)) => {
            let entries = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{entries}])")
        }
        Data::Struct(Fields::Unit) => "::serde::Value::Null".to_owned(),
        Data::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_owned()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::__variant(\"{vname}\", \
                             ::serde::Serialize::to_value(__f0)),"
                        ),
                        Fields::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|i| format!("__f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vname}({binds}) => ::serde::__variant(\"{vname}\", \
                                 ::serde::Value::Array(::std::vec![{entries}])),"
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_owned(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::__variant(\"{vname}\", \
                                 ::serde::Value::Object(::std::vec![{entries}])),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{params} ::serde::Serialize for {name}{args} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (params, args) = impl_header(input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            let entries = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__obj, \"{f}\")?,"))
                .collect::<Vec<_>>()
                .join("\n            ");
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"struct {name}\", __v))?;\n        \
                 ::std::result::Result::Ok({name} {{\n            {entries}\n        }})"
            )
        }
        Data::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Data::Struct(Fields::Tuple(n)) => {
            let entries = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?,"))
                .collect::<Vec<_>>()
                .join("\n            ");
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"tuple struct {name}\", __v))?;\n        \
                 if __arr.len() != {n} {{\n            \
                 return ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"expected {n} elements for {name}, got {{}}\", __arr.len())));\n        \
                 }}\n        \
                 ::std::result::Result::Ok({name}(\n            {entries}\n        ))"
            )
        }
        Data::Struct(Fields::Unit) => format!(
            "match __v {{\n            \
             ::serde::Value::Null => ::std::result::Result::Ok({name}),\n            \
             _ => ::std::result::Result::Err(::serde::DeError::expected(\"null for unit struct {name}\", __v)),\n        \
             }}"
        ),
        Data::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            let data_arms = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let entries = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__arr[{i}])?,")
                                })
                                .collect::<Vec<_>>()
                                .join(" ");
                            format!(
                                "\"{vname}\" => {{\n                        \
                                 let __arr = __inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::expected(\"array for {name}::{vname}\", __inner))?;\n                        \
                                 if __arr.len() != {n} {{\n                            \
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"expected {n} elements for {name}::{vname}, got {{}}\", __arr.len())));\n                        \
                                 }}\n                        \
                                 ::std::result::Result::Ok({name}::{vname}({entries}))\n                    \
                                 }}"
                            )
                        }
                        Fields::Named(fields) => {
                            let entries = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__field(__obj, \"{f}\")?,"))
                                .collect::<Vec<_>>()
                                .join(" ");
                            format!(
                                "\"{vname}\" => {{\n                        \
                                 let __obj = __inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::expected(\"object for {name}::{vname}\", __inner))?;\n                        \
                                 ::std::result::Result::Ok({name}::{vname} {{ {entries} }})\n                    \
                                 }}"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n                    ");
            format!(
                "match __v {{\n            \
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n                \
                 {unit_arms}\n                \
                 __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n            \
                 }},\n            \
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n                \
                 let (__tag, __inner) = &__o[0];\n                \
                 match __tag.as_str() {{\n                    \
                 {data_arms}\n                    \
                 __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n                \
                 }}\n            \
                 }}\n            \
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", __v)),\n        \
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{params} ::serde::Deserialize for {name}{args} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
