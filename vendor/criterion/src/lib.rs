//! Offline drop-in subset of `criterion`.
//!
//! The build environment has no crates.io access, so this vendored
//! harness provides the API the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!` — with a
//! deliberately simple measurement loop (a short calibrated run, mean
//! per-iteration time printed to stdout; no statistics, plots or saved
//! baselines).
//!
//! `cargo bench` passes `--bench` to each harness; only then do the
//! benchmarks actually run. Under any other invocation (notably
//! `cargo test --benches`, which executes harness-less bench binaries
//! with no arguments) the main function exits immediately so test runs
//! stay fast.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness state (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnOnce(&mut Bencher),
    {
        run_benchmark(&id.to_string(), Duration::from_secs(1), f);
    }
}

/// A group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness does a fixed short
    /// warm-up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps how long each benchmark in the group measures.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.measurement_time, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl fmt::Display, input: &I, f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnOnce(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (statistics-free here, so a no-op).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measurement_time: Duration,
    /// `(total_elapsed, iterations)` recorded by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, choosing an iteration count that fits the group's
    /// measurement budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed call to warm caches and estimate cost.
        let probe_start = Instant::now();
        std::hint::black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        let budget = self.measurement_time.max(Duration::from_millis(10));
        let iters = (budget.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn run_benchmark<F>(label: &str, measurement_time: Duration, f: F)
where
    F: FnOnce(&mut Bencher),
{
    let mut b = Bencher {
        measurement_time,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("{label:<50} {:>12.1} ns/iter ({iters} iters)", per_iter);
        }
        None => println!("{label:<50} (no measurement)"),
    }
}

/// Should the harness actually run? `cargo bench` passes `--bench`;
/// anything else (plain execution, `cargo test --benches`) skips.
#[doc(hidden)]
pub fn should_run_benchmarks() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::should_run_benchmarks() {
                return;
            }
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_and_parameterised_benchmarks_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut ran = 0;
        g.bench_function("plain", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let input = 21u64;
        g.bench_with_input(BenchmarkId::new("with_input", input), &input, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("evaluate", 4).to_string(), "evaluate/4");
    }
}
