//! Offline drop-in subset of `serde_json`: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`Error`], built on the
//! vendored serde [`Value`] tree.
//!
//! Matches real serde_json where the workspace depends on it: non-finite
//! floats emit `null` (via the serde stub), objects keep insertion
//! order, and parse errors carry a message implementing
//! `std::error::Error`.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialisation or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders a value as JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// --------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Object(entries) => {
            write_seq(out, indent, depth, entries.len(), '{', '}', |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    debug_assert!(f.is_finite(), "serde stub maps non-finite floats to null");
    // Rust's shortest round-trip formatting, with `.0` appended to
    // integral values so the token is unambiguously a float.
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {} at byte {}",
                match other {
                    Some(b) => format!("`{}`", b as char),
                    None => "end of input".to_owned(),
                },
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&3usize).unwrap(), "3");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<usize>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("-1.5e2").unwrap(), -150.0);
        assert_eq!(from_str::<String>("\"a\\u0041\"").unwrap(), "aA");
    }

    #[test]
    fn nan_becomes_null_and_fails_f64_parse() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").is_err());
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn vectors_and_tuples_round_trip() {
        let v = vec![1.0f64, 2.5, -3.0];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.0,2.5,-3.0]");
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);

        let t = (1usize, -2i64);
        assert_eq!(
            from_str::<(usize, i64)>(&to_string(&t).unwrap()).unwrap(),
            t
        );
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1usize], vec![2, 3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains("\n  "));
        assert_eq!(from_str::<Vec<Vec<usize>>>(&json).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
        assert!(from_str::<f64>("1.0 junk").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
