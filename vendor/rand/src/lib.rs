//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the exact surface the workspace uses: [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_bool`, `gen_range`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 generator of the real crate, so absolute streams differ, but
//! every guarantee the workspace relies on holds: seeding is
//! deterministic, distinct seeds decorrelate, and `gen_range` draws
//! uniformly over the requested range.

use std::ops::{Range, RangeInclusive};

/// The raw bit source (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator seedable from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`), blanket-
/// implemented for every [`RngCore`] like the real crate.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f64`/`f32` in `[0, 1)`, full
    /// range for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires p in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }

    /// A uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_uniform(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types `Rng::gen` can produce (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random bits into the mantissa: uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types `Rng::gen_range` accepts for element type `T`.
pub trait SampleRange<T> {
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire; the
/// ~2^-64 bias is irrelevant here).
#[inline]
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: usize = rng.gen_range(0..10);
            assert!(y < 10);
            let z: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
